"""Declarative, picklable specifications for chaos injections.

The cluster layer already owns every fault *mechanism* a chaos run needs --
:meth:`~repro.cluster.builder.SimulatedCluster.crash`/``recover``, the
:class:`~repro.net.partition.PartitionManager` behind the network, and
``set_fault`` for swapping the network fault injector.  This module provides
the matching *descriptions*: a chaos event is a frozen dataclass that captures
one timed injection independently of any concrete cluster -- "crash whoever is
leader 12 s in", "split the membership in two", "recover the longest-crashed
server" -- and ``apply(driver)`` performs it through the
:class:`~repro.chaos.driver.ChaosDriver` when its scheduled time arrives.

The same two properties that make :mod:`repro.net.specs` the unit the
scenario layer ships around hold here:

* **Picklable.**  Every event is a frozen module-level dataclass with only
  plain values (floats, ints, nested net specs), so a
  :class:`~repro.chaos.plans.ChaosPlan` carrying events round-trips through
  the :mod:`multiprocessing` pool used by
  :func:`repro.experiments.runner.run_sweep` bit-for-bit.
* **Cluster-size independent.**  Events name servers by *index into the
  membership* (resolved modulo the cluster size) or by *role* ("the current
  leader"), never by concrete server id, so one plan drives a 5-server and a
  50-server cluster alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import ConfigurationError
from repro.common.types import Milliseconds
from repro.common.validation import require_non_negative, require_positive
from repro.net.specs import FaultSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (driver -> specs)
    from repro.chaos.driver import ChaosDriver

__all__ = [
    "ChaosEvent",
    "CrashLeader",
    "CrashServer",
    "Recover",
    "PartitionGroups",
    "Heal",
    "SwapFault",
]


@dataclass(frozen=True)
class ChaosEvent:
    """Base class for timed chaos injections.

    Attributes:
        at_ms: when the event fires, in milliseconds *relative to the start of
            the chaos plan* (the driver adds the absolute start time).
    """

    at_ms: Milliseconds = 0.0

    def __post_init__(self) -> None:
        require_non_negative(self.at_ms, "at_ms")

    def apply(self, driver: "ChaosDriver") -> None:  # pragma: no cover - abstract
        """Perform the injection through *driver* (resolved at fire time)."""
        raise NotImplementedError


@dataclass(frozen=True)
class CrashLeader(ChaosEvent):
    """Crash whoever is leader when the event fires.

    Resolution happens at fire time, not plan-build time: repeated
    ``CrashLeader`` events in one plan chase the leadership as it moves.  The
    event is skipped (and recorded as skipped) when no leader is running or
    when crashing one more server would destroy the quorum.
    """

    def apply(self, driver: "ChaosDriver") -> None:
        driver.crash_leader()


@dataclass(frozen=True)
class CrashServer(ChaosEvent):
    """Crash the server at *server_index* into the membership.

    The index is resolved modulo the cluster size, so a rolling-restart plan
    written as indexes ``0, 1, 2, ...`` cycles through any membership.
    Crashing an already-crashed server, or one whose loss would destroy the
    quorum, is skipped and recorded.
    """

    server_index: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        require_non_negative(self.server_index, "server_index")

    def apply(self, driver: "ChaosDriver") -> None:
        driver.crash_server(self.server_index)


@dataclass(frozen=True)
class Recover(ChaosEvent):
    """Recover the longest-crashed server (or every crashed one).

    Recovery order is FIFO over the driver's crash log, so a
    crash/recover/crash/recover plan heals servers in the order it hurt them.
    A no-op when nothing is crashed.
    """

    all_servers: bool = False

    def apply(self, driver: "ChaosDriver") -> None:
        driver.recover(all_servers=self.all_servers)


@dataclass(frozen=True)
class PartitionGroups(ChaosEvent):
    """Split the membership into disjoint cells (messages stay inside a cell).

    With ``isolate_leader`` the current leader is cut off alone -- the classic
    "old leader keeps believing" scenario -- and the rest of the membership
    forms one healthy cell; when no leader is running the event falls back to
    the contiguous split.  Otherwise the membership is split into
    ``group_count`` contiguous, balanced cells (the first ``n % group_count``
    cells get one extra server), mirroring
    :func:`repro.net.specs.assign_regions`.
    """

    group_count: int = 2
    isolate_leader: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        require_positive(self.group_count, "group_count")

    def apply(self, driver: "ChaosDriver") -> None:
        driver.partition(
            group_count=self.group_count, isolate_leader=self.isolate_leader
        )


@dataclass(frozen=True)
class Heal(ChaosEvent):
    """Remove the current partition; every server can communicate again."""

    def apply(self, driver: "ChaosDriver") -> None:
        driver.heal()


@dataclass(frozen=True)
class SwapFault(ChaosEvent):
    """Replace the network fault injector with the one *fault* describes.

    The :class:`~repro.net.specs.FaultSpec` is resolved against the cluster
    membership at fire time, so the same event works for any cluster size.
    ``fault=None`` ends a degraded phase by restoring the *baseline* injector
    the cluster started the chaos run with -- which matters when a scenario
    layers a chaos plan over a lossy catalog condition: swapping in
    :class:`~repro.net.specs.NoFaultSpec` would silently upgrade the network
    to a healthier one than the condition describes.
    """

    fault: FaultSpec | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.fault is not None and not isinstance(self.fault, FaultSpec):
            raise ConfigurationError(
                f"SwapFault needs a FaultSpec (or None to restore the "
                f"baseline), got {self.fault!r}"
            )

    def apply(self, driver: "ChaosDriver") -> None:
        driver.swap_fault(self.fault)

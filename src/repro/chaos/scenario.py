"""The chaos scenario: one steady-state availability episode from a seed.

:class:`ChaosScenario` is to the ``avail`` experiment what
:class:`~repro.cluster.scenarios.ElectionScenario` is to the figure sweeps:
one frozen, picklable experimental condition (protocol, cluster size, network
specs, chaos plan, client workload) that knows how to run one measured
episode.  An episode stabilises a first leader, opens the availability
window, lets the :class:`~repro.chaos.driver.ChaosDriver` inject the plan
while a legacy-interval :class:`~repro.workload.driver.WorkloadDriver` keeps
proposing, and closes the window into an
:class:`~repro.metrics.records.AvailabilityMeasurement`.

Because the scenario reuses :class:`ElectionScenario` for cluster
construction, every network condition from :mod:`repro.cluster.catalog`
(latency and fault specs) composes with every chaos plan -- "partition flaps
over a two-region WAN" is one scenario value, and it rides the parallel
sweep engine's process pool bit-for-bit deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.chaos.availability import AvailabilityObserver, quorum_leader
from repro.chaos.driver import ChaosDriver
from repro.chaos.plans import ChaosPlan
from repro.cluster.scenarios import ElectionScenario
from repro.common.config import ScaParameters
from repro.common.types import Milliseconds
from repro.metrics.records import AvailabilityMeasurement
from repro.net.specs import FaultSpec, LatencySpec
from repro.workload import legacy_interval
from repro.workload.driver import WorkloadDriver

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.cluster.builder import SimulatedCluster

__all__ = ["ChaosScenario"]


@dataclass(frozen=True)
class ChaosScenario:
    """One experimental condition for a steady-state availability episode.

    Attributes:
        protocol: any liveness-guaranteeing protocol name registered in
            :mod:`repro.protocols` (validated at construction time through
            the underlying :class:`ElectionScenario`).
        cluster_size: number of servers.
        plan: the chaos plan injected over the measured window; its
            ``horizon_ms`` is the window length.
        raft_timeout_range / sca / heartbeat_interval_ms: timing knobs,
            exactly as on :class:`ElectionScenario`.
        latency / latency_range: declarative latency condition or the uniform
            shorthand.
        fault / loss_rate: declarative *baseline* fault condition or the
            broadcast-omission shorthand (a :class:`~repro.chaos.specs.SwapFault`
            event replaces it mid-run).
        workload_interval_ms: client proposal period throughout the window
            (on by default -- unavailability is measured at the client, not
            just the leader flag; 0 disables the workload).
        stabilize_ms: budget for electing the initial leader before the
            window opens.
        preserve_quorum: skip crash injections that would destroy the voting
            quorum (see :class:`~repro.chaos.driver.ChaosDriver`).
        trace: keep the world trace (disable for large sweeps).
        engine: simulation engine name (see
            :attr:`~repro.cluster.scenarios.ElectionScenario.engine`); the
            empty string defers to the process default.
    """

    protocol: str
    cluster_size: int
    plan: ChaosPlan
    raft_timeout_range: tuple[Milliseconds, Milliseconds] = (1500.0, 3000.0)
    sca: ScaParameters = field(default_factory=lambda: ScaParameters(1500.0, 500.0))
    heartbeat_interval_ms: Milliseconds = 150.0
    latency_range: tuple[Milliseconds, Milliseconds] = (100.0, 200.0)
    loss_rate: float = 0.0
    latency: LatencySpec | None = None
    fault: FaultSpec | None = None
    workload_interval_ms: Milliseconds = 250.0
    stabilize_ms: Milliseconds = 120_000.0
    preserve_quorum: bool = True
    trace: bool = False
    engine: str = ""

    def __post_init__(self) -> None:
        # Protocol and network validation live in ElectionScenario; building
        # the election view here fails fast at construction time.
        self.election_scenario()

    def election_scenario(self) -> ElectionScenario:
        """The election-layer view of this condition (shared build path)."""
        return ElectionScenario(
            protocol=self.protocol,
            cluster_size=self.cluster_size,
            raft_timeout_range=self.raft_timeout_range,
            sca=self.sca,
            heartbeat_interval_ms=self.heartbeat_interval_ms,
            latency_range=self.latency_range,
            loss_rate=self.loss_rate,
            latency=self.latency,
            fault=self.fault,
            stabilize_ms=self.stabilize_ms,
            trace=self.trace,
            engine=self.engine,
        )

    def with_protocol(self, protocol: str) -> "ChaosScenario":
        """The same condition for a different protocol (paired comparison)."""
        return replace(self, protocol=protocol)

    def with_engine(self, engine: str) -> "ChaosScenario":
        """The same condition on a different simulation engine."""
        return replace(self, engine=engine)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run(self, seed: int) -> AvailabilityMeasurement:
        """Run one measured availability episode.

        The window opens after the initial leader stabilises and spans
        exactly ``plan.horizon_ms`` of simulated time; the plan's event
        offsets are relative to the window start.
        """
        observer = AvailabilityObserver()
        cluster, harness = self.election_scenario().build(
            seed, extra_listeners=(observer,)
        )
        cluster.start_all()
        harness.stabilize(max_time_ms=self.stabilize_ms)

        start_ms = cluster.world.now()
        observer.begin(cluster, start_ms)
        commit_at_start = max(
            (node.commit_index for node in cluster.running_nodes()), default=0
        )

        # The legacy-interval workload replays the retired ClientWorkload
        # loop exactly (byte-identical reports); a quorum-aware leader
        # selector makes ticks that fall inside a partition outage (only a
        # stale, commit-incapable leader exists) count as dropped at the
        # client instead of landing on a leader that can never acknowledge
        # them.
        workload: WorkloadDriver | None = None
        if self.workload_interval_ms > 0:
            workload = WorkloadDriver(
                cluster,
                legacy_interval(self.workload_interval_ms),
                seed=seed,
                leader_selector=lambda: quorum_leader(cluster),
            )
            workload.start()

        driver = ChaosDriver(
            cluster,
            self.plan,
            observer=observer,
            preserve_quorum=self.preserve_quorum,
        )
        driver.start()
        harness.run_for(self.plan.horizon_ms)

        if workload is not None:
            workload.stop()
        end_ms = cluster.world.now()
        report = observer.finalize(end_ms)
        harness.assert_at_most_one_leader_per_term()

        dropped = (workload.dropped + workload.rejected) if workload else 0
        return AvailabilityMeasurement(
            protocol=cluster.protocol,
            cluster_size=self.cluster_size,
            seed=seed,
            plan=self.plan.name,
            start_ms=report.start_ms,
            end_ms=report.end_ms,
            available_ms=report.available_ms,
            leaderless_ms=report.leaderless_ms,
            unavailability=report.unavailability,
            disruption_count=driver.disruption_count,
            skipped_disruptions=driver.skipped_disruption_count,
            outage_count=len(report.leaderless_intervals),
            recovery_ms=report.recovery_latencies_ms(),
            proposals_proposed=workload.proposed if workload else 0,
            proposals_dropped=dropped,
            leaderless_intervals=report.leaderless_intervals,
            extra={
                "plan_events": self.plan.event_count,
                "applied_injections": len(driver.applied),
                "workload_interval_ms": self.workload_interval_ms,
                # Proposals accepted by a stale (quorum-less) leader are
                # counted as proposed but never commit; the committed-entry
                # delta is the client-side ground truth.
                "committed_entries": max(
                    (node.commit_index for node in cluster.running_nodes()),
                    default=0,
                )
                - commit_at_start,
            },
        )

    def run_many(
        self, runs: int, base_seed: int = 0, label: str = "run"
    ) -> list[AvailabilityMeasurement]:
        """Run *runs* independent episodes with sweep-identical seeds."""
        from repro.common.rng import paired_seeds

        return [self.run(seed) for seed in paired_seeds(runs, base_seed, label)]

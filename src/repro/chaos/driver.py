"""The deterministic chaos driver: resolve a plan and inject it on schedule.

The driver is the bridge between the declarative layer (a
:class:`~repro.chaos.plans.ChaosPlan` of frozen
:class:`~repro.chaos.specs.ChaosEvent`\\ s) and the mechanisms the cluster
already provides (``crash``/``recover``/``set_fault`` on
:class:`~repro.cluster.builder.SimulatedCluster` and the
:class:`~repro.net.partition.PartitionManager` behind its network).  Calling
:meth:`ChaosDriver.start` schedules every event on the simulation scheduler
at ``start + event.at_ms``; role references ("the leader") and membership
indexes resolve when the event *fires*, so a plan written once chases
leadership and membership as the run evolves.

Two policies keep arbitrary plans survivable and measurable:

* **Quorum preservation** (default on): a crash that would leave fewer
  running servers than the voting quorum is skipped and recorded -- without
  it a storm plan could kill a majority and the availability measurement
  would flat-line at zero for every protocol, comparing nothing.
* **Bookkeeping**: every applied injection lands in
  :attr:`ChaosDriver.applied` and every skipped one in
  :attr:`ChaosDriver.skipped` (both as :class:`DisruptionRecord`\\ s);
  :attr:`ChaosDriver.disruption_count` counts just the *disruptive* ones
  (crashes and partitions, not the recoveries and heals that undo them), so
  the availability report can state how many disruptions a window actually
  absorbed.

The driver itself draws no randomness: plans carry their jitter, and
everything else is resolved from deterministic cluster state, so chaos runs
stay pure functions of ``(scenario, seed)`` and sweep bit-identically at any
worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chaos.availability import AvailabilityObserver
from repro.chaos.plans import ChaosPlan
from repro.cluster.builder import SimulatedCluster
from repro.common.errors import SimulationError
from repro.common.types import Milliseconds, ServerId
from repro.net.specs import FaultSpec, assign_regions

__all__ = ["ChaosDriver", "DisruptionRecord"]


@dataclass(frozen=True)
class DisruptionRecord:
    """One injection the driver applied (or skipped), with its fire time."""

    time_ms: Milliseconds
    kind: str
    detail: str


class ChaosDriver:
    """Schedules a chaos plan's injections against one simulated cluster."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        plan: ChaosPlan,
        observer: AvailabilityObserver | None = None,
        preserve_quorum: bool = True,
        metrics=None,
    ) -> None:
        self._cluster = cluster
        self._plan = plan
        self._observer = observer
        self._preserve_quorum = preserve_quorum
        # Optional live repro.obs MetricsRegistry: when attached, applied and
        # skipped injections bump chaos.* counters as they fire.  Post-hoc
        # harvesting (repro.obs.harvest.harvest_chaos) reads the record lists
        # instead, so the default None costs nothing.
        self._metrics = metrics
        # The injector the cluster entered the chaos run with; SwapFault
        # events with fault=None restore it (NOT a healthy network -- the
        # scenario may layer the plan over a lossy baseline condition).
        self._baseline_fault = cluster.network.fault
        self._started = False
        self._crash_order: list[ServerId] = []
        self.applied: list[DisruptionRecord] = []
        self.skipped: list[DisruptionRecord] = []

    #: Injection kinds that take capacity away (their undo events are not
    #: disruptions, and neither is a fault swap back to a healthy network).
    DISRUPTIVE_KINDS = frozenset({"crash-leader", "crash-server", "partition"})

    @property
    def plan(self) -> ChaosPlan:
        """The plan being driven."""
        return self._plan

    @property
    def disruption_count(self) -> int:
        """How many applied injections were disruptive (crashes, partitions)."""
        return sum(
            1 for record in self.applied if record.kind in self.DISRUPTIVE_KINDS
        )

    @property
    def skipped_disruption_count(self) -> int:
        """How many *disruptive* injections were withheld (quorum guard,
        already-crashed target) -- benign no-op skips such as a recover with
        nothing crashed or a heal with no partition do not count."""
        return sum(
            1 for record in self.skipped if record.kind in self.DISRUPTIVE_KINDS
        )

    def start(self) -> None:
        """Schedule every plan event at ``now + event.at_ms``."""
        if self._started:
            raise SimulationError("chaos driver already started")
        self._started = True
        scheduler = self._cluster.world.scheduler
        base = scheduler.now()
        for event in self._plan.events:
            scheduler.call_at(
                base + event.at_ms,
                lambda event=event: self._fire(event),
                label=f"chaos:{type(event).__name__}",
            )

    def _fire(self, event) -> None:
        event.apply(self)
        if self._observer is not None:
            self._observer.reevaluate(self._cluster.world.now())

    # ------------------------------------------------------------------ #
    # Injection primitives (called by ChaosEvent.apply)
    # ------------------------------------------------------------------ #
    def crash_leader(self) -> None:
        """Crash the current leader, if one is running and quorum survives."""
        now = self._cluster.world.now()
        leader_id = self._cluster.leader_id()
        if leader_id is None:
            self._skip(now, "crash-leader", "no leader running")
            return
        if not self._crash_allowed():
            self._skip(now, "crash-leader", f"S{leader_id}: would lose quorum")
            return
        self._crash(leader_id)
        self._record(now, "crash-leader", f"S{leader_id}")

    def crash_server(self, server_index: int) -> None:
        """Crash the server at *server_index* (modulo the membership)."""
        now = self._cluster.world.now()
        members = self._cluster.config.server_ids
        target = members[server_index % len(members)]
        if target in self._cluster.crashed:
            self._skip(now, "crash-server", f"S{target}: already crashed")
            return
        if not self._crash_allowed():
            self._skip(now, "crash-server", f"S{target}: would lose quorum")
            return
        self._crash(target)
        self._record(now, "crash-server", f"S{target}")

    def recover(self, all_servers: bool = False) -> None:
        """Recover the longest-crashed server (or every crashed one)."""
        now = self._cluster.world.now()
        pending = [
            server_id
            for server_id in self._crash_order
            if server_id in self._cluster.crashed
        ]
        if not pending:
            self._skip(now, "recover", "nothing crashed")
            return
        targets = pending if all_servers else pending[:1]
        for server_id in targets:
            self._cluster.recover(server_id)
            self._crash_order.remove(server_id)
        self._record(
            now, "recover", ", ".join(f"S{server_id}" for server_id in targets)
        )

    def partition(
        self, group_count: int = 2, isolate_leader: bool = False
    ) -> None:
        """Install a partition (replacing any existing one)."""
        now = self._cluster.world.now()
        members = self._cluster.config.server_ids
        groups: list[tuple[ServerId, ...]]
        detail: str
        leader_id = self._cluster.leader_id() if isolate_leader else None
        if leader_id is not None:
            groups = [
                (leader_id,),
                tuple(member for member in members if member != leader_id),
            ]
            detail = f"isolated leader S{leader_id}"
        else:
            groups = self._contiguous_groups(members, group_count)
            detail = f"{len(groups)}-way contiguous split"
        self._cluster.network.partitions.partition(*groups)
        self._cluster.world.trace("chaos.partition", detail=detail)
        self._record(now, "partition", detail)

    def heal(self) -> None:
        """Remove the current partition."""
        now = self._cluster.world.now()
        partitions = self._cluster.network.partitions
        if not partitions.is_partitioned:
            self._skip(now, "heal", "no partition installed")
            return
        partitions.heal()
        self._cluster.world.trace("chaos.heal")
        self._record(now, "heal", "partition removed")

    def swap_fault(self, fault: FaultSpec | None) -> None:
        """Replace the network fault injector with the resolved *fault*.

        ``None`` restores the baseline injector the chaos run started with.
        """
        now = self._cluster.world.now()
        if fault is None:
            self._cluster.set_fault(self._baseline_fault)
            self._record(now, "swap-fault", "restored baseline fault")
            return
        self._cluster.set_fault(fault.resolve(self._cluster.config.server_ids))
        self._record(now, "swap-fault", repr(fault))

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _crash_allowed(self) -> bool:
        if not self._preserve_quorum:
            return True
        running = len(self._cluster.running_nodes())
        return running - 1 >= self._cluster.config.quorum_size

    def _crash(self, server_id: ServerId) -> None:
        self._cluster.crash(server_id)
        self._crash_order.append(server_id)

    def _record(self, time_ms: Milliseconds, kind: str, detail: str) -> None:
        self.applied.append(DisruptionRecord(time_ms, kind, detail))
        if self._metrics is not None:
            self._metrics.counter("chaos.applied").inc()
            self._metrics.counter(f"chaos.applied.{kind}").inc()

    def _skip(self, time_ms: Milliseconds, kind: str, detail: str) -> None:
        self._cluster.world.trace("chaos.skip", kind=kind, detail=detail)
        self.skipped.append(DisruptionRecord(time_ms, kind, detail))
        if self._metrics is not None:
            self._metrics.counter("chaos.skipped").inc()
            self._metrics.counter(f"chaos.skipped.{kind}").inc()

    @staticmethod
    def _contiguous_groups(
        members: tuple[ServerId, ...], group_count: int
    ) -> list[tuple[ServerId, ...]]:
        """Split *members* into contiguous, balanced groups (3/2 for 5-in-2).

        Delegates to :func:`repro.net.specs.assign_regions` -- the same
        balanced-split rule the geo latency specs use -- so partition cells
        and latency regions can never drift apart; the only difference is
        that an oversized ``group_count`` clamps instead of raising.
        """
        count = min(group_count, len(members))
        regions = assign_regions(members, count)
        cells: dict[str, list[ServerId]] = {}
        for member in members:
            cells.setdefault(regions[member], []).append(member)
        return [tuple(cell) for cell in cells.values()]

"""Chaos plans: timed fault timelines, seeded generators, and a named catalog.

A :class:`ChaosPlan` is a frozen, picklable timeline of
:class:`~repro.chaos.specs.ChaosEvent` injections over one measurement
horizon.  Plans are *data*: the :class:`~repro.chaos.driver.ChaosDriver`
schedules them on the simulation scheduler, the
:class:`~repro.chaos.scenario.ChaosScenario` carries them through the
parallel sweep engine's process pool, and the ``avail`` experiment compares
protocols under the *same* plan (paired fault timelines, different protocol
randomness).

The generators in this module build the recurring disruption patterns the
paper's availability argument implies but never measures: every leaderless
interval is downtime, so what matters over a long horizon is how a protocol
fares under *repeated* leader kills, rolling restarts and partition flaps --
not a single crash episode.  Each generator derives its jitter from a
:class:`~repro.common.rng.SeedSequence` stream named after the plan, so the
same ``(parameters, seed)`` always yields the same timeline.

The catalog names the generators (mirroring
:mod:`repro.cluster.catalog` for network conditions), so experiments, the CLI
(``avail --plan NAME``) and the benchmarks select fault timelines by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.chaos.specs import (
    ChaosEvent,
    CrashLeader,
    CrashServer,
    Heal,
    PartitionGroups,
    Recover,
    SwapFault,
)
from repro.common.errors import ConfigurationError
from repro.common.rng import SeedSequence
from repro.common.types import Milliseconds
from repro.common.validation import require_non_negative, require_positive
from repro.net.specs import PacketLossSpec

__all__ = [
    "CHAOS_CATALOG",
    "ChaosPlan",
    "ChaosPlanEntry",
    "DEFAULT_HORIZON_MS",
    "build_plan",
    "chaos_storm",
    "get_plan_entry",
    "partition_flap",
    "plan_names",
    "registered_specs",
    "repeated_leader_kill",
    "rolling_restart",
]

#: Default measurement horizon of the generated plans (two minutes of
#: simulated time, enough for several full disruption cycles).
DEFAULT_HORIZON_MS: Milliseconds = 120_000.0


@dataclass(frozen=True)
class ChaosPlan:
    """One deterministic fault timeline over a fixed measurement horizon.

    Attributes:
        name: the plan's catalog (or ad-hoc) name, carried into measurements.
        horizon_ms: length of the measured window; every event fires inside
            ``[0, horizon_ms]`` relative to the chaos start.
        events: the injections, sorted by ``at_ms`` (ties keep their order).
    """

    name: str
    horizon_ms: Milliseconds
    events: tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a chaos plan needs a non-empty name")
        require_positive(self.horizon_ms, "horizon_ms")
        for event in self.events:
            if not isinstance(event, ChaosEvent):
                raise ConfigurationError(
                    f"ChaosPlan events must be ChaosEvent instances, got {event!r}"
                )
            if event.at_ms > self.horizon_ms:
                raise ConfigurationError(
                    f"event {event!r} fires at {event.at_ms} ms, beyond the "
                    f"{self.horizon_ms} ms horizon"
                )
        times = [event.at_ms for event in self.events]
        if times != sorted(times):
            raise ConfigurationError(
                "ChaosPlan events must be sorted by at_ms; "
                "use _sorted_plan()/sorted() when composing plans"
            )

    @property
    def event_count(self) -> int:
        """Number of scheduled injections."""
        return len(self.events)

    def describe(self) -> str:
        """One-line summary (used by reports and the examples)."""
        kinds: dict[str, int] = {}
        for event in self.events:
            name = type(event).__name__
            kinds[name] = kinds.get(name, 0) + 1
        inventory = ", ".join(f"{count}x {name}" for name, count in kinds.items())
        return (
            f"plan {self.name!r}: {len(self.events)} events over "
            f"{self.horizon_ms / 1000.0:.0f} s ({inventory or 'no events'})"
        )


def _sorted_plan(
    name: str, horizon_ms: Milliseconds, events: Iterable[ChaosEvent]
) -> ChaosPlan:
    """Build a plan from unsorted events (stable sort by fire time)."""
    ordered = tuple(sorted(events, key=lambda event: event.at_ms))
    return ChaosPlan(name=name, horizon_ms=horizon_ms, events=ordered)


def _clamp(time_ms: Milliseconds, horizon_ms: Milliseconds) -> Milliseconds:
    return min(time_ms, horizon_ms)


# --------------------------------------------------------------------------- #
# Seeded plan generators
# --------------------------------------------------------------------------- #
def repeated_leader_kill(
    horizon_ms: Milliseconds = DEFAULT_HORIZON_MS,
    period_ms: Milliseconds = 15_000.0,
    downtime_ms: Milliseconds = 5_000.0,
    jitter_ms: Milliseconds = 2_000.0,
    seed: int = 0,
) -> ChaosPlan:
    """Kill whoever is leader once per period; recover it *downtime_ms* later.

    The steady-state stress the paper's availability argument implies: every
    kill forces one full detection + election cycle, so the unavailable
    fraction directly compares election speed across protocols.
    """
    require_positive(period_ms, "period_ms")
    require_positive(downtime_ms, "downtime_ms")
    require_non_negative(jitter_ms, "jitter_ms")
    rng = SeedSequence(seed).stream("chaos", "repeated-leader-kill")
    events: list[ChaosEvent] = []
    cycle = 1
    while True:
        crash_at = cycle * period_ms + rng.uniform(0.0, jitter_ms)
        if crash_at >= horizon_ms:
            break
        events.append(CrashLeader(at_ms=crash_at))
        events.append(Recover(at_ms=_clamp(crash_at + downtime_ms, horizon_ms)))
        cycle += 1
    return _sorted_plan("repeated-leader-kill", horizon_ms, events)


def rolling_restart(
    horizon_ms: Milliseconds = DEFAULT_HORIZON_MS,
    interval_ms: Milliseconds = 12_000.0,
    downtime_ms: Milliseconds = 4_000.0,
    jitter_ms: Milliseconds = 1_000.0,
    seed: int = 0,
) -> ChaosPlan:
    """Restart the membership one server at a time, cycling by index.

    Models a maintenance wave: most restarts hit followers (cheap), but the
    wave periodically takes the leader down, and the measurement shows how
    much of the horizon each protocol loses to those hits.
    """
    require_positive(interval_ms, "interval_ms")
    require_positive(downtime_ms, "downtime_ms")
    require_non_negative(jitter_ms, "jitter_ms")
    rng = SeedSequence(seed).stream("chaos", "rolling-restart")
    events: list[ChaosEvent] = []
    index = 0
    while True:
        crash_at = (index + 1) * interval_ms + rng.uniform(0.0, jitter_ms)
        if crash_at >= horizon_ms:
            break
        events.append(CrashServer(at_ms=crash_at, server_index=index))
        events.append(Recover(at_ms=_clamp(crash_at + downtime_ms, horizon_ms)))
        index += 1
    return _sorted_plan("rolling-restart", horizon_ms, events)


def partition_flap(
    horizon_ms: Milliseconds = DEFAULT_HORIZON_MS,
    period_ms: Milliseconds = 20_000.0,
    outage_ms: Milliseconds = 8_000.0,
    jitter_ms: Milliseconds = 2_000.0,
    group_count: int = 2,
    isolate_leader: bool = True,
    seed: int = 0,
) -> ChaosPlan:
    """Repeatedly partition the cluster, then heal it *outage_ms* later.

    With ``isolate_leader`` (the default) each flap cuts the current leader
    off alone -- the Section II-B setting where the majority side must detect
    the silence and elect anew while the old leader keeps believing.
    """
    require_positive(period_ms, "period_ms")
    require_positive(outage_ms, "outage_ms")
    require_non_negative(jitter_ms, "jitter_ms")
    rng = SeedSequence(seed).stream("chaos", "partition-flap")
    events: list[ChaosEvent] = []
    cycle = 1
    while True:
        split_at = cycle * period_ms + rng.uniform(0.0, jitter_ms)
        if split_at >= horizon_ms:
            break
        events.append(
            PartitionGroups(
                at_ms=split_at,
                group_count=group_count,
                isolate_leader=isolate_leader,
            )
        )
        events.append(Heal(at_ms=_clamp(split_at + outage_ms, horizon_ms)))
        cycle += 1
    return _sorted_plan("partition-flap", horizon_ms, events)


def chaos_storm(
    horizon_ms: Milliseconds = DEFAULT_HORIZON_MS,
    seed: int = 0,
) -> ChaosPlan:
    """Everything at once: leader kills, restarts, flaps and a lossy phase.

    Composes scaled-down instances of the other generators (each drawing
    jitter from its own stream of the same seed) and adds a degraded-network
    phase in the middle third of the horizon via
    :class:`~repro.chaos.specs.SwapFault` (``fault=None`` afterwards restores
    whatever baseline injector the scenario's network condition installed, so
    layering the storm over a lossy catalog condition keeps that condition's
    loss for the rest of the run).  Injections that would destroy the quorum
    are skipped by the driver at fire time, so the storm stays survivable for
    any cluster size.
    """
    kills = repeated_leader_kill(
        horizon_ms, period_ms=23_000.0, downtime_ms=6_000.0, seed=seed
    )
    restarts = rolling_restart(
        horizon_ms, interval_ms=17_000.0, downtime_ms=5_000.0, seed=seed
    )
    flaps = partition_flap(
        horizon_ms, period_ms=31_000.0, outage_ms=7_000.0, seed=seed
    )
    lossy_phase: list[ChaosEvent] = [
        SwapFault(at_ms=horizon_ms / 3.0, fault=PacketLossSpec(0.05)),
        SwapFault(at_ms=2.0 * horizon_ms / 3.0, fault=None),
    ]
    return _sorted_plan(
        "chaos-storm",
        horizon_ms,
        [*kills.events, *restarts.events, *flaps.events, *lossy_phase],
    )


# --------------------------------------------------------------------------- #
# The named catalog
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChaosPlanEntry:
    """One named plan generator: a description plus its seeded builder."""

    name: str
    description: str
    build: Callable[..., ChaosPlan] = field(repr=False)


def _entries(*entries: ChaosPlanEntry) -> dict[str, ChaosPlanEntry]:
    return {entry.name: entry for entry in entries}


#: Every named chaos plan, in presentation order.
CHAOS_CATALOG: dict[str, ChaosPlanEntry] = _entries(
    ChaosPlanEntry(
        name="repeated-leader-kill",
        description=(
            "Crash whoever is leader every ~15 s, recover it 5 s later: the "
            "steady-state cost of elections themselves."
        ),
        build=repeated_leader_kill,
    ),
    ChaosPlanEntry(
        name="rolling-restart",
        description=(
            "Restart one server at a time every ~12 s (4 s down), cycling "
            "through the membership: a maintenance wave that periodically "
            "hits the leader."
        ),
        build=rolling_restart,
    ),
    ChaosPlanEntry(
        name="partition-flap",
        description=(
            "Isolate the leader behind a partition every ~20 s, heal 8 s "
            "later: the Section II-B split-brain setting, repeated."
        ),
        build=partition_flap,
    ),
    ChaosPlanEntry(
        name="chaos-storm",
        description=(
            "Composite: leader kills + rolling restarts + partition flaps, "
            "with 5 % packet loss through the middle third of the horizon."
        ),
        build=chaos_storm,
    ),
)


def plan_names() -> tuple[str, ...]:
    """Every catalog plan name, in presentation order."""
    return tuple(CHAOS_CATALOG)


def registered_specs() -> tuple[tuple[str, ChaosPlanEntry], ...]:
    """``(name, entry)`` pairs for introspection tooling (``repro.lint`` S1)."""
    return tuple(CHAOS_CATALOG.items())


def get_plan_entry(name: str) -> ChaosPlanEntry:
    """Look a plan entry up by name.

    Raises:
        ConfigurationError: naming the available plans when *name* is unknown.
    """
    try:
        return CHAOS_CATALOG[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown chaos plan {name!r}; available: {', '.join(CHAOS_CATALOG)}"
        ) from exc


def build_plan(
    name: str,
    horizon_ms: Milliseconds = DEFAULT_HORIZON_MS,
    seed: int = 0,
) -> ChaosPlan:
    """Build the named plan for one horizon and seed.

    The returned plan is a plain frozen value: embed it in a
    :class:`~repro.chaos.scenario.ChaosScenario` and it pickles into sweep
    workers unchanged, so ``--workers N`` stays bit-for-bit deterministic.
    """
    return get_plan_entry(name).build(horizon_ms=horizon_ms, seed=seed)

"""Steady-state availability measurement for chaos runs.

The paper's argument is that faster leader election matters because every
leaderless interval is downtime; this module measures exactly that over a
long, repeatedly-disrupted horizon.  The cluster counts as *available* at an
instant when some running leader can still reach a voting quorum -- a
running node in the ``LEADER`` role whose partition cell contains at least a
quorum of running members.  A leader isolated behind a partition therefore
does **not** count (it can never commit), even though it still believes it is
leader, which is what makes partition plans measurable at all.

Availability only changes at discrete instants -- role changes, crashes,
recoveries, partitions, heals -- all of which the harness observes: the
:class:`AvailabilityObserver` is attached to every node as a listener (role
changes, elections) and poked by the :class:`~repro.chaos.driver.ChaosDriver`
after every injection.  Each poke re-evaluates :func:`cluster_available` and
records a transition into an :class:`AvailabilityTimeline`, a pure
piecewise-constant state track that finalises into ordered, non-overlapping
intervals tiling the measured window exactly (a hypothesis property test pins
this for arbitrary transition sequences).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import SimulationError
from repro.common.types import Milliseconds
from repro.raft.listeners import NodeListenerBase
from repro.raft.state import Role

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.cluster.builder import SimulatedCluster
    from repro.raft.node import RaftNode

__all__ = [
    "AvailabilityObserver",
    "AvailabilityReport",
    "AvailabilityTimeline",
    "cluster_available",
    "quorum_leader",
]

Interval = tuple[Milliseconds, Milliseconds]


def quorum_leader(cluster: "SimulatedCluster") -> "RaftNode | None":
    """The highest-term running leader that can currently reach a quorum.

    A crashed leader is not running; a partitioned leader only counts when
    its cell still contains a quorum of *running* members (votes and commits
    both need a majority of the full membership).  This is also the leader a
    well-behaved client would end up talking to -- requests to a stale
    isolated leader time out and the client fails over to the majority side.
    """
    quorum = cluster.config.quorum_size
    partitions = cluster.network.partitions
    capable = []
    for node in cluster.running_nodes():
        if node.role is not Role.LEADER:
            continue
        cell = partitions.cell_members(node.node_id)
        running_in_cell = sum(
            1 for member in cell if cluster.node(member).is_running
        )
        if running_in_cell >= quorum:
            capable.append(node)
    if not capable:
        return None
    return max(capable, key=lambda node: node.current_term)


def cluster_available(cluster: "SimulatedCluster") -> bool:
    """Whether some running leader can currently reach a voting quorum."""
    return quorum_leader(cluster) is not None


@dataclass(frozen=True)
class AvailabilityReport:
    """The finalized availability decomposition of one measured window.

    ``available_intervals`` and ``leaderless_intervals`` are each ordered and
    non-overlapping, and their union tiles ``[start_ms, end_ms]`` exactly:
    every boundary where availability flipped appears as the end of one
    interval and the start of the next.
    """

    start_ms: Milliseconds
    end_ms: Milliseconds
    available_intervals: tuple[Interval, ...]
    leaderless_intervals: tuple[Interval, ...]

    @property
    def duration_ms(self) -> Milliseconds:
        """Length of the measured window."""
        return self.end_ms - self.start_ms

    @property
    def available_ms(self) -> Milliseconds:
        """Total time with a quorum-capable leader."""
        return sum(end - start for start, end in self.available_intervals)

    @property
    def leaderless_ms(self) -> Milliseconds:
        """Total time without a quorum-capable leader."""
        return sum(end - start for start, end in self.leaderless_intervals)

    @property
    def unavailability(self) -> float:
        """Leaderless fraction of the window, clamped into ``[0, 1]``.

        The clamp only absorbs float summation noise; the interval lists
        themselves tile the window exactly.
        """
        if self.duration_ms <= 0.0:
            return 0.0
        return min(1.0, max(0.0, self.leaderless_ms / self.duration_ms))

    @property
    def availability(self) -> float:
        """Available fraction of the window (``1 - unavailability``)."""
        return 1.0 - self.unavailability

    def recovery_latencies_ms(self) -> tuple[Milliseconds, ...]:
        """Duration of each leaderless interval (one per outage, in order).

        An outage still open when the window closed is included at its
        censored length -- dropping it would make a protocol that never
        recovers look better.
        """
        return tuple(end - start for start, end in self.leaderless_intervals)


class AvailabilityTimeline:
    """A piecewise-constant available/leaderless track over simulated time.

    Transitions must arrive with non-decreasing timestamps (simulated time
    never runs backwards).  Recording the current state again is a no-op, and
    a flip at the exact same instant as the previous one collapses the
    zero-length segment instead of emitting it -- a leader elected and
    partitioned away in the same scheduler instant never existed,
    observationally.
    """

    def __init__(self, start_ms: Milliseconds, available: bool) -> None:
        self._transitions: list[tuple[Milliseconds, bool]] = [
            (float(start_ms), bool(available))
        ]

    @property
    def start_ms(self) -> Milliseconds:
        """When the measured window opened."""
        return self._transitions[0][0]

    @property
    def current_state(self) -> bool:
        """The availability state after the latest transition."""
        return self._transitions[-1][1]

    def record(self, time_ms: Milliseconds, available: bool) -> None:
        """Record the availability state observed at *time_ms*."""
        last_time, last_state = self._transitions[-1]
        if time_ms < last_time:
            raise SimulationError(
                f"availability transition at {time_ms} ms precedes the "
                f"previous one at {last_time} ms"
            )
        if available == last_state:
            return
        if time_ms == last_time:
            # Collapse the zero-length segment; merge with the predecessor
            # when the overwrite lands back on its state.
            self._transitions.pop()
            if self._transitions and self._transitions[-1][1] == available:
                return
        self._transitions.append((float(time_ms), bool(available)))

    def finalize(self, end_ms: Milliseconds) -> AvailabilityReport:
        """Close the window at *end_ms* and emit the interval decomposition."""
        last_time, _ = self._transitions[-1]
        if end_ms < last_time:
            raise SimulationError(
                f"window end {end_ms} ms precedes the last transition at "
                f"{last_time} ms"
            )
        available: list[Interval] = []
        leaderless: list[Interval] = []
        for index, (start, state) in enumerate(self._transitions):
            end = (
                self._transitions[index + 1][0]
                if index + 1 < len(self._transitions)
                else float(end_ms)
            )
            if end == start:
                continue
            (available if state else leaderless).append((start, end))
        return AvailabilityReport(
            start_ms=self.start_ms,
            end_ms=float(end_ms),
            available_intervals=tuple(available),
            leaderless_intervals=tuple(leaderless),
        )


class AvailabilityObserver(NodeListenerBase):
    """Tracks cluster availability through a chaos run.

    Attach to every node (as a listener) *before* the cluster starts, then
    call :meth:`begin` once the pre-measurement stabilisation is done; from
    that point every role change, election, and driver injection re-evaluates
    :func:`cluster_available` and feeds the timeline.  Events before
    :meth:`begin` are ignored, so stabilisation noise never pollutes the
    measurement.
    """

    def __init__(self) -> None:
        self._cluster: "SimulatedCluster" | None = None
        self._timeline: AvailabilityTimeline | None = None

    @property
    def is_measuring(self) -> bool:
        """Whether :meth:`begin` has been called."""
        return self._timeline is not None

    def begin(self, cluster: "SimulatedCluster", time_ms: Milliseconds) -> None:
        """Open the measured window at *time_ms* with the current state."""
        if self._timeline is not None:
            raise SimulationError("availability measurement already began")
        self._cluster = cluster
        self._timeline = AvailabilityTimeline(time_ms, cluster_available(cluster))

    def reevaluate(self, time_ms: Milliseconds) -> None:
        """Re-query the cluster and record the state observed at *time_ms*."""
        if self._timeline is None or self._cluster is None:
            return
        self._timeline.record(time_ms, cluster_available(self._cluster))

    def finalize(self, end_ms: Milliseconds) -> AvailabilityReport:
        """Close the window and return the interval decomposition."""
        if self._timeline is None:
            raise SimulationError(
                "availability measurement never began; call begin() first"
            )
        return self._timeline.finalize(end_ms)

    # ------------------------------------------------------------------ #
    # NodeListener callbacks (leadership can only change on these)
    # ------------------------------------------------------------------ #
    def on_role_change(
        self, node_id, old_role, new_role, term, time_ms
    ) -> None:
        self.reevaluate(time_ms)

    def on_leader_elected(self, leader_id, term, votes, time_ms) -> None:
        self.reevaluate(time_ms)

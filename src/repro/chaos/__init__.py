"""Deterministic fault-timeline orchestration (``repro.chaos``).

The paper's whole argument is that faster leader election matters because
every leaderless interval is downtime -- yet a single crash → re-election
episode (the :class:`~repro.cluster.harness.ElectionHarness` measurement)
never shows the *steady-state* cost.  This package adds the orchestration
layer above the existing crash/recover, partition and fault-injection
primitives:

* :mod:`repro.chaos.specs` -- frozen, picklable chaos-event specs
  (:class:`CrashLeader`, :class:`CrashServer`, :class:`Recover`,
  :class:`PartitionGroups`, :class:`Heal`, :class:`SwapFault`), resolved
  against the live cluster at fire time;
* :mod:`repro.chaos.plans` -- seeded plan generators
  (``repeated-leader-kill``, ``rolling-restart``, ``partition-flap``, the
  ``chaos-storm`` composite) collected in the named
  :data:`~repro.chaos.plans.CHAOS_CATALOG`;
* :mod:`repro.chaos.driver` -- the deterministic :class:`ChaosDriver` that
  schedules a plan's injections on the simulation scheduler;
* :mod:`repro.chaos.availability` -- the :class:`AvailabilityObserver` and
  interval timeline measuring leaderless time, per-disruption recovery
  latency and the client-side proposal counts;
* :mod:`repro.chaos.scenario` -- :class:`ChaosScenario`, the frozen
  per-episode condition the ``avail`` experiment sweeps (CLI:
  ``python -m repro.experiments avail --plan NAME``).

Everything is a pure function of ``(scenario, seed)``: plans carry their own
jitter, the driver draws no randomness, and scenarios pickle into the
parallel sweep engine's workers bit-for-bit.
"""

from repro.chaos.availability import (
    AvailabilityObserver,
    AvailabilityReport,
    AvailabilityTimeline,
    cluster_available,
    quorum_leader,
)
from repro.chaos.driver import ChaosDriver, DisruptionRecord
from repro.chaos.plans import (
    CHAOS_CATALOG,
    DEFAULT_HORIZON_MS,
    ChaosPlan,
    ChaosPlanEntry,
    build_plan,
    chaos_storm,
    get_plan_entry,
    partition_flap,
    plan_names,
    repeated_leader_kill,
    rolling_restart,
)
from repro.chaos.scenario import ChaosScenario
from repro.chaos.specs import (
    ChaosEvent,
    CrashLeader,
    CrashServer,
    Heal,
    PartitionGroups,
    Recover,
    SwapFault,
)

__all__ = [
    "AvailabilityObserver",
    "AvailabilityReport",
    "AvailabilityTimeline",
    "CHAOS_CATALOG",
    "ChaosDriver",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosPlanEntry",
    "ChaosScenario",
    "CrashLeader",
    "CrashServer",
    "DEFAULT_HORIZON_MS",
    "DisruptionRecord",
    "Heal",
    "PartitionGroups",
    "Recover",
    "SwapFault",
    "build_plan",
    "chaos_storm",
    "cluster_available",
    "get_plan_entry",
    "partition_flap",
    "plan_names",
    "quorum_leader",
    "repeated_leader_kill",
    "rolling_restart",
]

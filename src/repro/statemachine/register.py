"""Minimal state machines used by tests and micro-benchmarks."""

from __future__ import annotations

from typing import Any

from repro.common.errors import ProtocolError


class AppendRegister:
    """Records every applied command in order.

    Tests use this to assert the fundamental state-machine-replication
    property: every server applies the same command sequence in the same
    order.
    """

    def __init__(self) -> None:
        self.history: list[Any] = []

    def apply(self, command: Any) -> Any:
        self.history.append(command)
        return len(self.history)

    def snapshot(self) -> list[Any]:
        return list(self.history)

    def restore(self, snapshot: list[Any]) -> None:
        self.history = list(snapshot)


class CounterMachine:
    """An integer counter supporting ``"incr"``/``"decr"``/``("add", n)``."""

    def __init__(self) -> None:
        self.value = 0

    def apply(self, command: Any) -> int:
        if command == "incr":
            self.value += 1
        elif command == "decr":
            self.value -= 1
        elif (
            isinstance(command, (tuple, list))
            and len(command) == 2
            and command[0] == "add"
        ):
            self.value += int(command[1])
        else:
            raise ProtocolError(f"CounterMachine cannot apply {command!r}")
        return self.value

    def snapshot(self) -> int:
        return self.value

    def restore(self, snapshot: int) -> None:
        self.value = int(snapshot)

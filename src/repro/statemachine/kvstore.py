"""A replicated key-value store state machine.

The key-value store is the workload used by the examples: clients propose
``PUT``/``DELETE``/``CAS`` commands through the leader, and every server ends
up with the same map.  ``GET`` is included as a command so linearisable reads
can be driven through the log as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import ProtocolError


@dataclass(frozen=True)
class PutCommand:
    """Set *key* to *value*; returns the previous value (or ``None``)."""

    key: str
    value: Any

    def to_dict(self) -> dict[str, Any]:
        return {"op": "put", "key": self.key, "value": self.value}


@dataclass(frozen=True)
class GetCommand:
    """Read *key* through the log (linearisable read); returns the value."""

    key: str

    def to_dict(self) -> dict[str, Any]:
        return {"op": "get", "key": self.key}


@dataclass(frozen=True)
class DeleteCommand:
    """Remove *key*; returns ``True`` when the key existed."""

    key: str

    def to_dict(self) -> dict[str, Any]:
        return {"op": "delete", "key": self.key}


@dataclass(frozen=True)
class CompareAndSwapCommand:
    """Set *key* to *new_value* only when it currently equals *expected*.

    Returns ``True`` when the swap happened.
    """

    key: str
    expected: Any
    new_value: Any

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": "cas",
            "key": self.key,
            "expected": self.expected,
            "new_value": self.new_value,
        }


def command_from_dict(payload: dict[str, Any]) -> Any:
    """Rebuild a key-value command from its JSON representation."""
    op = payload.get("op")
    if op == "put":
        return PutCommand(payload["key"], payload["value"])
    if op == "get":
        return GetCommand(payload["key"])
    if op == "delete":
        return DeleteCommand(payload["key"])
    if op == "cas":
        return CompareAndSwapCommand(
            payload["key"], payload["expected"], payload["new_value"]
        )
    raise ProtocolError(f"unknown key-value command {payload!r}")


class KeyValueStore:
    """Deterministic in-memory key-value map."""

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self.applied_count = 0

    # ------------------------------------------------------------------ #
    # StateMachine interface
    # ------------------------------------------------------------------ #
    def apply(self, command: Any) -> Any:
        """Apply a committed command and return its result."""
        if isinstance(command, dict):
            command = command_from_dict(command)
        self.applied_count += 1
        if isinstance(command, PutCommand):
            previous = self._data.get(command.key)
            self._data[command.key] = command.value
            return previous
        if isinstance(command, GetCommand):
            return self._data.get(command.key)
        if isinstance(command, DeleteCommand):
            return self._data.pop(command.key, None) is not None
        if isinstance(command, CompareAndSwapCommand):
            if self._data.get(command.key) == command.expected:
                self._data[command.key] = command.new_value
                return True
            return False
        raise ProtocolError(f"KeyValueStore cannot apply {command!r}")

    def snapshot(self) -> dict[str, Any]:
        """A copy of the current map, suitable for JSON serialisation."""
        return dict(self._data)

    def restore(self, snapshot: dict[str, Any]) -> None:
        """Replace the current contents with *snapshot*."""
        self._data = dict(snapshot)

    # ------------------------------------------------------------------ #
    # Convenience accessors (read-only, not linearisable)
    # ------------------------------------------------------------------ #
    def get(self, key: str, default: Any = None) -> Any:
        """Local (non-linearisable) read of *key*."""
        return self._data.get(key, default)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

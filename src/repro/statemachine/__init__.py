"""Replicated state machines applied on top of the consensus log.

Leader election itself does not need a state machine, but log replication
(which ESCAPE leaves untouched and which the correctness arguments in
Section V rely on) does.  The examples replicate a key-value store; tests use
both the key-value store and the simpler append-only register to check that
every node applies the same command sequence.
"""

from repro.statemachine.base import Command, StateMachine
from repro.statemachine.kvstore import (
    DeleteCommand,
    GetCommand,
    KeyValueStore,
    PutCommand,
    CompareAndSwapCommand,
)
from repro.statemachine.register import AppendRegister, CounterMachine

__all__ = [
    "AppendRegister",
    "Command",
    "CompareAndSwapCommand",
    "CounterMachine",
    "DeleteCommand",
    "GetCommand",
    "KeyValueStore",
    "PutCommand",
    "StateMachine",
]

"""State-machine interface.

A state machine consumes committed log commands in order and produces a result
per command.  Implementations must be deterministic: the same command sequence
must yield the same state and the same results on every server, which is what
makes state-machine replication meaningful.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

# A command is any value a client proposes; it ends up in a log entry.  For the
# asyncio runtime, commands must be JSON-serialisable; dataclass commands in
# this package provide ``to_dict``/``from_dict`` for that purpose.
Command = Any


@runtime_checkable
class StateMachine(Protocol):
    """Deterministic state machine replicated by the consensus protocol."""

    def apply(self, command: Command) -> Any:  # pragma: no cover - protocol
        """Apply one committed command and return its result."""
        ...

    def snapshot(self) -> Any:  # pragma: no cover - protocol
        """Return a serialisable snapshot of the current state."""
        ...

    def restore(self, snapshot: Any) -> None:  # pragma: no cover - protocol
        """Replace the current state with a previously taken snapshot."""
        ...

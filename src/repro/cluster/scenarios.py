"""Reusable fault scenarios: the paper's evaluation conditions in one place.

:class:`ElectionScenario` captures one experimental condition (protocol,
cluster size, timeout configuration, latency, message loss, forced contention,
client workload) and knows how to run one measured leader-failure episode from
a seed.  Every experiment module in :mod:`repro.experiments` is a thin sweep
over these scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro import protocols as protocol_registry
from repro.sim import engines as engine_registry
from repro.cluster.builder import SimulatedCluster, build_cluster
from repro.cluster.harness import ElectionHarness
from repro.cluster.observers import ElectionObserver
from repro.common.config import ClusterConfig, ProtocolConfig, RaftTimeoutConfig, ScaParameters
from repro.common.errors import ConfigurationError
from repro.common.rng import SeedSequence, paired_seeds
from repro.common.types import Milliseconds, ServerId
from repro.metrics.records import ElectionMeasurement
from repro.net.faults import BroadcastOmissionFault, FaultInjector, NoFault
from repro.obs.harvest import TelemetryListener, harvest_cluster, harvest_workload
from repro.obs.telemetry import MetricsRegistry
from repro.workload import legacy_interval
from repro.workload.driver import WorkloadDriver
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.specs import FaultSpec, LatencySpec
from repro.raft.timers import (
    ElectionTimeoutPolicy,
    RandomizedTimeoutPolicy,
    ScriptOnlyPolicy,
    ScriptedTimeoutPolicy,
)


@dataclass(frozen=True)
class ElectionScenario:
    """One experimental condition for a leader-failure episode.

    Attributes:
        protocol: any protocol name registered in :mod:`repro.protocols`
            (e.g. ``"raft"``, ``"escape"``, ``"zraft"``, ``"escape-noppf"``);
            validated against the registry at construction time.
        cluster_size: number of servers.
        raft_timeout_range: Raft's randomized election-timeout range
            ``(min_ms, max_ms)``; Figure 3 sweeps it, Figures 9-11 fix it at
            (1500, 3000).
        sca: ESCAPE/Z-Raft SCA parameters (baseTime/k of Eq. 1).
        heartbeat_interval_ms: leader heartbeat period.
        latency_range: one-way message latency ``(low_ms, high_ms)``.
            Shorthand for ``latency=UniformLatencySpec(low_ms, high_ms)``;
            ignored when an explicit ``latency`` spec is given.
        loss_rate: broadcast message-loss rate Δ (Section VI-D); 0 disables
            fault injection.  Shorthand for
            ``fault=BroadcastOmissionSpec(loss_rate)``; may not be combined
            with an explicit ``fault`` spec.
        latency: declarative latency condition (any
            :class:`~repro.net.specs.LatencySpec`), resolved against the
            cluster membership at build time.  Takes precedence over
            ``latency_range``.
        fault: declarative fault condition (any
            :class:`~repro.net.specs.FaultSpec`).  Mutually exclusive with
            the ``loss_rate`` shorthand.
        contention_phases: number of competing-candidate phases to force
            (Figure 10); 0 leaves timeouts entirely protocol-driven.
        workload_interval_ms: client proposal period during the pre-crash
            window (0 disables the workload).
        pre_crash_ms: how long to run after stabilisation before crashing the
            leader (lets the workload build up log divergence under loss).
        stabilize_ms: budget for electing the initial leader.
        max_election_ms: budget for the measured election.
        trace: keep the world trace (disable for large sweeps).
        telemetry: record per-episode observability counters (scheduler,
            network, protocol events) and attach the snapshot state to
            ``measurement.extra["telemetry"]``.  Off by default: sweeps pay
            nothing for the instrumentation unless they opt in.
        engine: simulation engine name from :mod:`repro.sim.engines`
            (e.g. ``"classic"``, ``"flat"``); the empty string defers to the
            process default (:func:`repro.sim.engines.default_engine_name`),
            so sweeps inherit the runner's ``--engine`` selection.  Engines
            are bit-identical by contract, so this never changes results --
            only how fast they arrive.
    """

    protocol: str
    cluster_size: int
    raft_timeout_range: tuple[Milliseconds, Milliseconds] = (1500.0, 3000.0)
    sca: ScaParameters = field(default_factory=lambda: ScaParameters(1500.0, 500.0))
    heartbeat_interval_ms: Milliseconds = 150.0
    latency_range: tuple[Milliseconds, Milliseconds] = (100.0, 200.0)
    loss_rate: float = 0.0
    latency: LatencySpec | None = None
    fault: FaultSpec | None = None
    contention_phases: int = 0
    workload_interval_ms: Milliseconds = 0.0
    pre_crash_ms: Milliseconds = 2_000.0
    stabilize_ms: Milliseconds = 120_000.0
    max_election_ms: Milliseconds = 120_000.0
    trace: bool = False
    telemetry: bool = False
    engine: str = ""

    def __post_init__(self) -> None:
        # Fail fast with the registry's own error (it lists every registered
        # name) instead of deep inside build(); unpickling skips this, so a
        # sweep worker never re-validates what the parent already accepted.
        protocol_registry.get(self.protocol)
        if self.engine:
            engine_registry.get(self.engine)

    # ------------------------------------------------------------------ #
    # Derived pieces
    # ------------------------------------------------------------------ #
    def protocol_config(self) -> ProtocolConfig:
        """The :class:`ProtocolConfig` this scenario implies."""
        return ProtocolConfig(
            heartbeat_interval_ms=self.heartbeat_interval_ms,
            raft_timeouts=RaftTimeoutConfig(*self.raft_timeout_range),
            sca=self.sca,
        )

    def server_ids(self) -> tuple[ServerId, ...]:
        """The membership the scenario's network specs resolve against."""
        return ClusterConfig.of_size(self.cluster_size).server_ids

    def latency_model(self) -> LatencyModel:
        """The latency model this scenario implies.

        An explicit :class:`~repro.net.specs.LatencySpec` wins; otherwise the
        ``latency_range`` shorthand resolves to the paper's uniform model.
        """
        if self.latency is not None:
            return self.latency.resolve(self.server_ids())
        return UniformLatency(*self.latency_range)

    def fault_injector(self) -> FaultInjector:
        """The fault injector this scenario implies."""
        if self.fault is not None:
            if self.loss_rate > 0.0:
                raise ConfigurationError(
                    "give either an explicit fault spec or the loss_rate "
                    "shorthand, not both"
                )
            return self.fault.resolve(self.server_ids())
        if self.loss_rate <= 0.0:
            return NoFault()
        return BroadcastOmissionFault(self.loss_rate)

    def with_protocol(self, protocol: str) -> "ElectionScenario":
        """The same condition for a different protocol (paired comparison)."""
        return replace(self, protocol=protocol)

    def with_engine(self, engine: str) -> "ElectionScenario":
        """The same condition on a different simulation engine (differential
        testing and benchmarking; results are engine-invariant by contract)."""
        return replace(self, engine=engine)

    def with_telemetry(self, enabled: bool = True) -> "ElectionScenario":
        """The same condition with per-episode telemetry recording toggled."""
        return replace(self, telemetry=enabled)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def build(
        self, seed: int, extra_listeners: tuple = ()
    ) -> tuple[SimulatedCluster, ElectionHarness]:
        """Build (but do not run) the cluster and harness for one episode.

        Args:
            seed: root seed of the episode.
            extra_listeners: additional node listeners attached to every node
                alongside the harness's :class:`ElectionObserver` (the chaos
                layer attaches its :class:`~repro.chaos.AvailabilityObserver`
                this way).
        """
        if self.contention_phases < 0:
            raise ConfigurationError("contention_phases must be >= 0")
        observer = ElectionObserver()
        seeds = SeedSequence(seed)
        timeout_policy_factory, override_factory = self._contention_factories(seeds)
        cluster = build_cluster(
            protocol=self.protocol,
            size=self.cluster_size,
            seed=seed,
            latency=self.latency_model(),
            fault=self.fault_injector(),
            protocol_config=self.protocol_config(),
            listeners=(observer, *extra_listeners),
            timeout_policy_factory=timeout_policy_factory,
            timeout_override_factory=override_factory,
            trace=self.trace,
            engine=self.engine or None,
        )
        return cluster, ElectionHarness(cluster, observer)

    def run(self, seed: int) -> ElectionMeasurement:
        """Run one measured leader-failure episode.

        The measurement's ``extra`` mapping records the scenario parameters so
        downstream reports can re-group measurements without carrying the
        scenario object around.  With ``telemetry=True`` it additionally
        carries the episode's observability snapshot under ``"telemetry"``
        (as plain JSON state, so measurements keep pickling and exporting
        unchanged).
        """
        measurement, _ = self._run_measured(seed)
        return measurement

    def run_traced(self, seed: int) -> tuple[ElectionMeasurement, tuple]:
        """Run one episode with tracing forced on; returns the trace too.

        The measurement is identical to :meth:`run`'s for the same seed
        (tracing never perturbs results); the second element is the world's
        :class:`~repro.sim.tracing.TraceRecord` tuple, ready for
        :mod:`repro.obs.trace` sinks.
        """
        traced = self if self.trace else replace(self, trace=True)
        measurement, cluster = traced._run_measured(seed)
        return measurement, cluster.world.tracer.records

    def _run_measured(
        self, seed: int
    ) -> tuple[ElectionMeasurement, SimulatedCluster]:
        """Run one episode, attaching telemetry when the scenario opts in."""
        if not self.telemetry:
            return self._run_episode(seed)
        registry = MetricsRegistry()
        listener = TelemetryListener(registry)
        measurement, cluster = self._run_episode(
            seed, extra_listeners=(listener,), metrics=registry
        )
        harvest_cluster(cluster, registry)
        measurement.extra["telemetry"] = registry.snapshot().to_state()
        return measurement, cluster

    def _run_episode(
        self,
        seed: int,
        extra_listeners: tuple = (),
        metrics: MetricsRegistry | None = None,
    ) -> tuple[ElectionMeasurement, SimulatedCluster]:
        cluster, harness = self.build(seed, extra_listeners=extra_listeners)
        cluster.start_all()
        harness.stabilize(max_time_ms=self.stabilize_ms)

        # The legacy-interval workload replays the retired ClientWorkload
        # loop exactly, so pre-subsystem reports stay byte-identical.
        workload: WorkloadDriver | None = None
        if self.workload_interval_ms > 0:
            workload = WorkloadDriver(
                cluster, legacy_interval(self.workload_interval_ms), seed=seed
            )
            workload.start()
        if self.pre_crash_ms > 0:
            harness.run_for(self.pre_crash_ms)

        # Crash at a random point inside a heartbeat interval so the measured
        # detection time is not synchronised with the heartbeat phase.
        crash_jitter = SeedSequence(seed).stream("scenario", "crash").uniform(
            0.0, self.heartbeat_interval_ms
        )
        harness.run_for(crash_jitter)

        measurement = harness.crash_leader_and_measure(
            max_election_ms=self.max_election_ms, seed=seed
        )
        if workload is not None:
            workload.stop()
            if metrics is not None:
                harvest_workload(workload, metrics)
        harness.assert_at_most_one_leader_per_term()
        measurement.extra.update(
            {
                "loss_rate": self.loss_rate,
                "contention_phases": self.contention_phases,
                "raft_timeout_range": self.raft_timeout_range,
                "workload_proposed": workload.proposed if workload else 0,
            }
        )
        # Spec-driven network conditions would otherwise be invisible here
        # (loss_rate stays 0.0 for them); record the specs' reprs so
        # downstream reports can still re-group by condition.
        if self.latency is not None:
            measurement.extra["latency_spec"] = repr(self.latency)
        if self.fault is not None:
            measurement.extra["fault_spec"] = repr(self.fault)
        return measurement, cluster

    def run_many(
        self, runs: int, base_seed: int = 0, label: str = "run"
    ) -> list[ElectionMeasurement]:
        """Run *runs* independent episodes with derived seeds.

        Seeds delegate to :func:`repro.common.rng.paired_seeds` -- the same
        single source of truth the sweep engine uses -- so
        ``run_many(runs, seed, label)`` observes exactly the seeds a
        ``run_sweep({label: scenario}, runs, seed)`` sweep would.
        """
        return [self.run(seed) for seed in paired_seeds(runs, base_seed, label)]

    # ------------------------------------------------------------------ #
    # Forced contention (Figure 10)
    # ------------------------------------------------------------------ #
    def _contention_factories(
        self, seeds: SeedSequence
    ) -> tuple[
        Callable[[ServerId], ElectionTimeoutPolicy | None] | None,
        Callable[[ServerId], ElectionTimeoutPolicy | None] | None,
    ]:
        """Build the per-node timeout policies that force competing candidates.

        Every follower of the (future) crashed leader receives the *same*
        scripted timeout for its first ``contention_phases`` waits, so those
        waits expire (nearly) simultaneously: in Raft each collision produces
        one phase of competing candidates, while ESCAPE's priority-driven term
        growth resolves the very first collision in a single campaign -- which
        is precisely the comparison Figure 10 draws.
        """
        if self.contention_phases <= 0:
            return None, None
        low, high = self.raft_timeout_range
        collision_timeout = seeds.stream("scenario", "contention").uniform(low, high)
        script = tuple([collision_timeout] * self.contention_phases)

        def policy_factory(server_id: ServerId) -> ElectionTimeoutPolicy:
            return ScriptedTimeoutPolicy(
                script=script, fallback=RandomizedTimeoutPolicy(low, high)
            )

        def override_factory(server_id: ServerId) -> ElectionTimeoutPolicy:
            return ScriptOnlyPolicy(script=script)

        return policy_factory, override_factory

"""A catalog of named network conditions for the experiment harness.

The paper evaluates under exactly one network: uniform 100-200 ms NetEm
latency, optionally with broadcast omission (Section VI-D).  Its *motivation*,
however, is much broader -- Section II-B argues that geo-distributed
deployments with low in-group and high between-group latency breed split
votes.  This catalog names that whole space: each
:class:`NetworkCondition` bundles a declarative latency spec and fault spec
(see :mod:`repro.net.specs`) under a stable name, so experiments, the CLI
(``--scenario NAME``) and the benchmarks can all select conditions by name.

Every condition is cluster-size independent and picklable, so a scenario
built from one round-trips through the parallel sweep engine's process pool
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.scenarios import ElectionScenario
from repro.common.errors import ConfigurationError
from repro.net.specs import (
    BroadcastOmissionSpec,
    CompositeFaultSpec,
    DuplicationSpec,
    FaultSpec,
    GeoLatencySpec,
    LatencySpec,
    LogNormalLatencySpec,
    NoFaultSpec,
    PacketLossSpec,
    UniformLatencySpec,
)

__all__ = [
    "CATALOG",
    "NetworkCondition",
    "condition_names",
    "get_condition",
    "registered_specs",
    "scenario_for",
    "catalog_scenarios",
]


@dataclass(frozen=True)
class NetworkCondition:
    """One named network condition: a latency spec plus a fault spec."""

    name: str
    description: str
    latency: LatencySpec
    fault: FaultSpec

    def apply(self, scenario: ElectionScenario) -> ElectionScenario:
        """The same scenario, running under this network condition.

        The shorthand fields (``latency_range``/``loss_rate``) are cleared so
        the condition's specs are authoritative.
        """
        return replace(
            scenario, latency=self.latency, fault=self.fault, loss_rate=0.0
        )


def _conditions(*conditions: NetworkCondition) -> dict[str, NetworkCondition]:
    return {condition.name: condition for condition in conditions}


#: Every named condition, in presentation order.
CATALOG: dict[str, NetworkCondition] = _conditions(
    NetworkCondition(
        name="paper-default",
        description=(
            "The paper's testbed (Section VI-A): uniform 100-200 ms NetEm "
            "latency, healthy network."
        ),
        latency=UniformLatencySpec(100.0, 200.0),
        fault=NoFaultSpec(),
    ),
    NetworkCondition(
        name="geo-two-region",
        description=(
            "Two-region WAN (Section II-B): 5-15 ms inside a region, "
            "150-250 ms across the split."
        ),
        latency=GeoLatencySpec(
            region_count=2, intra_ms=(5.0, 15.0), inter_ms=(150.0, 250.0)
        ),
        fault=NoFaultSpec(),
    ),
    NetworkCondition(
        name="geo-three-region",
        description=(
            "Three-region WAN: 5-15 ms inside a region, 120-220 ms across "
            "regions (the example deployment of Section II-B)."
        ),
        latency=GeoLatencySpec(
            region_count=3, intra_ms=(5.0, 15.0), inter_ms=(120.0, 220.0)
        ),
        fault=NoFaultSpec(),
    ),
    NetworkCondition(
        name="heavy-tail",
        description=(
            "Heavy-tailed wide-area latency: log-normal with a 150 ms median "
            "and occasional multi-second stragglers."
        ),
        latency=LogNormalLatencySpec(median_ms=150.0, sigma=0.8, max_ms=5_000.0),
        fault=NoFaultSpec(),
    ),
    NetworkCondition(
        name="lossy-unicast",
        description=(
            "NetEm-style i.i.d. loss: 10 % of every message (unicast and "
            "broadcast alike) is dropped, unlike the paper's broadcast-only "
            "omission model."
        ),
        latency=UniformLatencySpec(100.0, 200.0),
        fault=PacketLossSpec(0.1),
    ),
    NetworkCondition(
        name="dup-heavy-udp",
        description=(
            "UDP-style duplication: a fast LAN where 30 % of messages arrive "
            "twice, stressing RPC idempotence."
        ),
        latency=UniformLatencySpec(20.0, 60.0),
        fault=DuplicationSpec(0.3),
    ),
    NetworkCondition(
        name="chaos-composite",
        description=(
            "Everything at once: heavy-tailed latency with broadcast "
            "omission (20 %), i.i.d. loss (5 %) and duplication (10 %)."
        ),
        latency=LogNormalLatencySpec(median_ms=150.0, sigma=0.5, max_ms=5_000.0),
        fault=CompositeFaultSpec(
            parts=(
                BroadcastOmissionSpec(0.2),
                PacketLossSpec(0.05),
                DuplicationSpec(0.1),
            )
        ),
    ),
)


def condition_names() -> tuple[str, ...]:
    """Every catalog condition name, in presentation order."""
    return tuple(CATALOG)


def registered_specs() -> tuple[tuple[str, NetworkCondition], ...]:
    """``(name, condition)`` pairs for introspection tooling (``repro.lint`` S1)."""
    return tuple(CATALOG.items())


def get_condition(name: str) -> NetworkCondition:
    """Look a condition up by name.

    Raises:
        ConfigurationError: naming the available conditions when *name* is
            unknown.
    """
    try:
        return CATALOG[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown scenario condition {name!r}; "
            f"available: {', '.join(CATALOG)}"
        ) from exc


def scenario_for(
    condition: NetworkCondition | str,
    protocol: str,
    cluster_size: int,
    **overrides: object,
) -> ElectionScenario:
    """An :class:`ElectionScenario` running under a catalog condition.

    Args:
        condition: a condition or its catalog name.
        protocol: any protocol name registered in :mod:`repro.protocols`
            (an unknown name fails fast with the list of registered ones).
        cluster_size: number of servers.
        **overrides: any other :class:`ElectionScenario` field (e.g.
            ``workload_interval_ms=50.0``).  Overrides are applied *after*
            the condition, so an explicit ``latency``/``fault`` override
            replaces the condition's spec.  The ``latency_range`` and
            ``loss_rate`` shorthands are rejected here: the condition's
            specs would shadow them, and a silently ignored override is
            worse than an error.
    """
    if isinstance(condition, str):
        condition = get_condition(condition)
    shadowed = sorted({"latency_range", "loss_rate"} & overrides.keys())
    if shadowed:
        raise ConfigurationError(
            f"override(s) {', '.join(shadowed)} would be shadowed by condition "
            f"{condition.name!r}'s specs; override 'latency'/'fault' with an "
            "explicit spec instead"
        )
    scenario = condition.apply(
        ElectionScenario(protocol=protocol, cluster_size=cluster_size)
    )
    if overrides:
        scenario = replace(scenario, **overrides)  # type: ignore[arg-type]
    return scenario


def catalog_scenarios(
    protocol: str, cluster_size: int, **overrides: object
) -> dict[str, ElectionScenario]:
    """One scenario per catalog condition (for whole-catalog sweeps)."""
    return {
        name: scenario_for(condition, protocol, cluster_size, **overrides)
        for name, condition in CATALOG.items()
    }

"""Election harness: drive a cluster through a leader failure and measure it.

The harness packages the measurement procedure used for every evaluation
figure of the paper:

1. start the cluster and wait for the first leader (*stabilisation*);
2. optionally run a client workload so logs keep growing;
3. crash the leader at a randomly chosen point inside a heartbeat interval;
4. run the simulation until a new leader emerges (or the time budget runs
   out) and extract the detection/election breakdown from the
   :class:`~repro.cluster.observers.ElectionObserver`.
"""

from __future__ import annotations

from repro.cluster.builder import SimulatedCluster
from repro.cluster.observers import ElectionObserver
from repro.common.errors import ClusterError
from repro.common.types import Milliseconds, ServerId
from repro.metrics.records import ElectionMeasurement
from repro.raft.state import Role


class ElectionHarness:
    """Runs leader-failure episodes on a simulated cluster."""

    def __init__(self, cluster: SimulatedCluster, observer: ElectionObserver) -> None:
        self._cluster = cluster
        self._observer = observer

    @property
    def cluster(self) -> SimulatedCluster:
        """The cluster under test."""
        return self._cluster

    @property
    def observer(self) -> ElectionObserver:
        """The observer collecting election events."""
        return self._observer

    # ------------------------------------------------------------------ #
    # Stabilisation
    # ------------------------------------------------------------------ #
    def stabilize(self, max_time_ms: Milliseconds = 60_000.0) -> ServerId:
        """Run until the cluster has elected its first leader.

        Returns:
            The leader's identifier.

        Raises:
            ClusterError: if no leader emerges within *max_time_ms*.
        """
        scheduler = self._cluster.world.scheduler
        elected = scheduler.run_until_condition(
            self._cluster.has_leader, max_time_ms=scheduler.now() + max_time_ms
        )
        if not elected:
            raise ClusterError(
                f"no leader elected within {max_time_ms} ms of simulated time"
            )
        leader_id = self._cluster.leader_id()
        assert leader_id is not None
        return leader_id

    def run_for(self, duration_ms: Milliseconds) -> None:
        """Advance the simulation by *duration_ms* of simulated time."""
        self._cluster.world.run_for(duration_ms)

    # ------------------------------------------------------------------ #
    # Leader failure measurement
    # ------------------------------------------------------------------ #
    def crash_leader_and_measure(
        self,
        max_election_ms: Milliseconds = 120_000.0,
        seed: int = 0,
    ) -> ElectionMeasurement:
        """Crash the current leader and measure the ensuing election.

        The measurement decomposes the out-of-service period into the
        *detection* period (crash to first election timeout) and the
        *election* period (first timeout to the new leader's quorum), matching
        the definitions used in Figures 9 and 10.
        """
        crashed_leader = self._cluster.crash_leader()
        crash_time = self._cluster.world.now()
        scheduler = self._cluster.world.scheduler

        has_leader_other_than = self._cluster.has_leader_other_than

        def new_leader_running() -> bool:
            return has_leader_other_than(crashed_leader)

        converged = scheduler.run_until_condition(
            new_leader_running, max_time_ms=crash_time + max_election_ms
        )

        first_timeout = self._observer.first_timeout_after(crash_time)
        elected = self._observer.leader_elected_after(
            crash_time, exclude=(crashed_leader,)
        )
        campaigns = self._observer.campaigns_after(crash_time)
        split_vote = self._observer.split_vote_occurred_after(crash_time)

        if converged and elected is not None:
            detection_ms = (
                first_timeout.time_ms - crash_time if first_timeout else 0.0
            )
            total_ms = elected.time_ms - crash_time
            election_ms = max(0.0, total_ms - detection_ms)
            winner_id: ServerId | None = elected.leader_id
            winner_term = elected.term
        else:
            converged = False
            detection_ms = (
                first_timeout.time_ms - crash_time if first_timeout else max_election_ms
            )
            total_ms = max_election_ms
            election_ms = max(0.0, total_ms - detection_ms)
            winner_id = None
            winner_term = None

        return ElectionMeasurement(
            protocol=self._cluster.protocol,
            cluster_size=self._cluster.config.size,
            seed=seed,
            converged=converged,
            crash_time_ms=crash_time,
            detection_ms=detection_ms,
            election_ms=election_ms,
            total_ms=total_ms,
            campaign_count=len(campaigns),
            split_vote=split_vote,
            winner_id=winner_id,
            winner_term=winner_term,
            extra={"crashed_leader": crashed_leader},
        )

    # ------------------------------------------------------------------ #
    # Invariant checks used by integration and property tests
    # ------------------------------------------------------------------ #
    def assert_at_most_one_leader_per_term(self) -> None:
        """Election safety: at most one leader is ever elected in one term."""
        leaders_by_term: dict[int, set[ServerId]] = {}
        for event in self._observer.leaders:
            leaders_by_term.setdefault(event.term, set()).add(event.leader_id)
        for term, leaders in leaders_by_term.items():
            if len(leaders) > 1:
                raise ClusterError(
                    f"election safety violated: term {term} elected {sorted(leaders)}"
                )

    def committed_prefixes_consistent(self) -> bool:
        """Log matching on committed prefixes across all running nodes."""
        nodes = self._cluster.running_nodes()
        if not nodes:
            return True
        min_commit = min(node.commit_index for node in nodes)
        for index in range(1, min_commit + 1):
            terms = {
                node.log.term_at(index)
                for node in nodes
                if node.log.has_entry(index)
            }
            if len(terms) > 1:
                return False
        return True

    def current_roles(self) -> dict[ServerId, Role]:
        """Role of every running node (crashed nodes are omitted)."""
        return {node.node_id: node.role for node in self._cluster.running_nodes()}

"""Cluster-wide election observer.

One :class:`ElectionObserver` instance is attached (as a node listener) to
every node in a cluster.  It records, with simulated timestamps, the events
the paper's figures decompose: election timeouts (failure *detection*),
campaign starts, votes, and leader elections.  The harness then derives
detection/election periods and split-vote occurrence from these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.types import Milliseconds, ServerId, Term
from repro.raft.listeners import NodeListenerBase
from repro.raft.state import Role


@dataclass(frozen=True)
class TimeoutEvent:
    """A follower's election timer expired (it detected a missing leader)."""

    time_ms: Milliseconds
    node_id: ServerId
    term: Term
    attempt: int


@dataclass(frozen=True)
class CampaignEvent:
    """A candidate started an election campaign."""

    time_ms: Milliseconds
    node_id: ServerId
    term: Term


@dataclass(frozen=True)
class VoteEvent:
    """A voter granted its vote to a candidate."""

    time_ms: Milliseconds
    voter_id: ServerId
    candidate_id: ServerId
    term: Term


@dataclass(frozen=True)
class LeaderElectedEvent:
    """A candidate collected a quorum and became leader."""

    time_ms: Milliseconds
    leader_id: ServerId
    term: Term
    votes: int


@dataclass(frozen=True)
class RoleChangeEvent:
    """A server changed its role."""

    time_ms: Milliseconds
    node_id: ServerId
    old_role: Role
    new_role: Role
    term: Term


@dataclass
class ElectionObserver(NodeListenerBase):
    """Accumulates protocol events from every node in one cluster."""

    timeouts: list[TimeoutEvent] = field(default_factory=list)
    campaigns: list[CampaignEvent] = field(default_factory=list)
    votes: list[VoteEvent] = field(default_factory=list)
    leaders: list[LeaderElectedEvent] = field(default_factory=list)
    role_changes: list[RoleChangeEvent] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # NodeListener callbacks
    # ------------------------------------------------------------------ #
    def on_election_timeout(
        self, node_id: ServerId, term: Term, attempt: int, time_ms: Milliseconds
    ) -> None:
        self.timeouts.append(TimeoutEvent(time_ms, node_id, term, attempt))

    def on_election_started(
        self, node_id: ServerId, term: Term, time_ms: Milliseconds
    ) -> None:
        self.campaigns.append(CampaignEvent(time_ms, node_id, term))

    def on_vote_granted(
        self,
        voter_id: ServerId,
        candidate_id: ServerId,
        term: Term,
        time_ms: Milliseconds,
    ) -> None:
        self.votes.append(VoteEvent(time_ms, voter_id, candidate_id, term))

    def on_leader_elected(
        self, leader_id: ServerId, term: Term, votes: int, time_ms: Milliseconds
    ) -> None:
        self.leaders.append(LeaderElectedEvent(time_ms, leader_id, term, votes))

    def on_role_change(
        self,
        node_id: ServerId,
        old_role: Role,
        new_role: Role,
        term: Term,
        time_ms: Milliseconds,
    ) -> None:
        self.role_changes.append(
            RoleChangeEvent(time_ms, node_id, old_role, new_role, term)
        )

    # ------------------------------------------------------------------ #
    # Queries used by the harness
    # ------------------------------------------------------------------ #
    def first_timeout_after(self, time_ms: Milliseconds) -> TimeoutEvent | None:
        """The earliest election timeout strictly after *time_ms*."""
        candidates = [event for event in self.timeouts if event.time_ms > time_ms]
        return min(candidates, key=lambda event: event.time_ms, default=None)

    def leader_elected_after(
        self, time_ms: Milliseconds, exclude: Iterable[ServerId] = ()
    ) -> LeaderElectedEvent | None:
        """The earliest leader election strictly after *time_ms*.

        Args:
            exclude: server ids that do not count (e.g. the crashed leader).
        """
        excluded = set(exclude)
        candidates = [
            event
            for event in self.leaders
            if event.time_ms > time_ms and event.leader_id not in excluded
        ]
        return min(candidates, key=lambda event: event.time_ms, default=None)

    def campaigns_after(self, time_ms: Milliseconds) -> list[CampaignEvent]:
        """Every campaign started strictly after *time_ms*."""
        return [event for event in self.campaigns if event.time_ms > time_ms]

    def campaign_terms_after(self, time_ms: Milliseconds) -> dict[Term, list[ServerId]]:
        """Campaigns after *time_ms*, grouped by campaign term."""
        grouped: dict[Term, list[ServerId]] = {}
        for event in self.campaigns_after(time_ms):
            grouped.setdefault(event.term, []).append(event.node_id)
        return grouped

    def split_vote_occurred_after(self, time_ms: Milliseconds) -> bool:
        """Whether votes were split in any term after *time_ms*.

        A split vote, per Section II-B of the paper, is a term in which two or
        more candidates campaigned and no leader emerged.
        """
        elected_terms = {
            event.term for event in self.leaders if event.time_ms > time_ms
        }
        for term, candidates in self.campaign_terms_after(time_ms).items():
            if len(candidates) >= 2 and term not in elected_terms:
                return True
        return False

    def clear(self) -> None:
        """Forget everything recorded so far."""
        self.timeouts.clear()
        self.campaigns.clear()
        self.votes.clear()
        self.leaders.clear()
        self.role_changes.clear()

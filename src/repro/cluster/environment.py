"""Adapter between protocol nodes and the discrete-event simulator."""

from __future__ import annotations

import random
from functools import partial
from typing import Any, Callable, Sequence

from repro.common.types import Milliseconds, ServerId
from repro.net.network import SimulatedNetwork
from repro.sim.events import EventHandle
from repro.sim.world import SimulationWorld


class SimNodeEnvironment:
    """The :class:`~repro.raft.environment.Environment` backed by the simulator.

    Each node gets its own environment instance with a private random stream
    (``seeds.stream("node", node_id)``) so adding or removing one node never
    perturbs another node's timeout draws.
    """

    def __init__(
        self,
        world: SimulationWorld,
        network: SimulatedNetwork,
        node_id: ServerId,
    ) -> None:
        self._world = world
        self._network = network
        self._node_id = node_id
        self._clock = world.clock
        self._rng = world.seeds.stream("node", node_id)
        # A Tracer's enabled flag is fixed at construction, so nodes may skip
        # building trace kwargs entirely when the world does not record them.
        self.trace_enabled = world.tracer.enabled

    @property
    def node_id(self) -> ServerId:
        """The server this environment belongs to."""
        return self._node_id

    @property
    def rng(self) -> random.Random:
        """This node's private random stream."""
        return self._rng

    def now(self) -> Milliseconds:
        return self._clock.now()

    def send(self, dst: ServerId, message: Any) -> None:
        self._network.send(self._node_id, dst, message)

    def broadcast(
        self,
        targets: Sequence[ServerId],
        payload_factory: Callable[[ServerId], Any],
    ) -> None:
        self._network.broadcast(self._node_id, targets, payload_factory)

    def set_timer(
        self,
        delay_ms: Milliseconds,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        return self._world.scheduler.call_after(
            delay_ms, callback, label=f"S{self._node_id}:{label}"
        )

    def cancel_timer(self, handle: EventHandle) -> None:
        handle.cancel()

    def trace(self, category: str, **detail: Any) -> None:
        self._world.tracer.record(
            self._world.now(), category, node=self._node_id, **detail
        )


def _noop_trace(category: str, **detail: Any) -> None:
    return None


class FlatSimNodeEnvironment(SimNodeEnvironment):
    """The ``flat`` engine's node environment: zero adapter frames.

    Nodes treat timer handles as opaque tokens -- they only ever pass them
    back to ``cancel_timer`` -- so this adapter hands out the flat
    scheduler's raw heap records directly instead of wrapping each one in an
    :class:`~repro.sim.events.EventHandle`, and skips the per-timer label
    f-string (labels are classic-engine observability).

    Every hot entry point is bound in ``__init__`` as an instance attribute
    that shadows the inherited method: ``set_timer``/``cancel_timer`` go
    straight to the scheduler, ``send``/``broadcast`` to the network (via
    :func:`functools.partial`, which dispatches in C), ``now`` to the clock,
    and ``trace`` becomes a no-op when the tracer is disabled (a Tracer's
    enabled flag is fixed at construction).  The environment contract is
    unchanged -- only the call overhead per timer/message goes away.
    """

    def __init__(
        self,
        world: SimulationWorld,
        network: SimulatedNetwork,
        node_id: ServerId,
    ) -> None:
        super().__init__(world, network, node_id)
        scheduler = world.scheduler
        self._scheduler = scheduler
        self.set_timer = scheduler.schedule_timer_entry
        self.cancel_timer = scheduler.cancel_entry
        self.send = partial(network.send, node_id)
        self.broadcast = partial(network.broadcast, node_id)
        self.now = world.clock.now
        if not world.tracer.enabled:
            self.trace = _noop_trace

"""Adapter between protocol nodes and the discrete-event simulator."""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence

from repro.common.types import Milliseconds, ServerId
from repro.net.network import SimulatedNetwork
from repro.sim.events import EventHandle
from repro.sim.world import SimulationWorld


class SimNodeEnvironment:
    """The :class:`~repro.raft.environment.Environment` backed by the simulator.

    Each node gets its own environment instance with a private random stream
    (``seeds.stream("node", node_id)``) so adding or removing one node never
    perturbs another node's timeout draws.
    """

    def __init__(
        self,
        world: SimulationWorld,
        network: SimulatedNetwork,
        node_id: ServerId,
    ) -> None:
        self._world = world
        self._network = network
        self._node_id = node_id
        self._rng = world.seeds.stream("node", node_id)

    @property
    def node_id(self) -> ServerId:
        """The server this environment belongs to."""
        return self._node_id

    @property
    def rng(self) -> random.Random:
        """This node's private random stream."""
        return self._rng

    def now(self) -> Milliseconds:
        return self._world.now()

    def send(self, dst: ServerId, message: Any) -> None:
        self._network.send(self._node_id, dst, message)

    def broadcast(
        self,
        targets: Sequence[ServerId],
        payload_factory: Callable[[ServerId], Any],
    ) -> None:
        self._network.broadcast(self._node_id, targets, payload_factory)

    def set_timer(
        self,
        delay_ms: Milliseconds,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        return self._world.scheduler.call_after(
            delay_ms, callback, label=f"S{self._node_id}:{label}"
        )

    def cancel_timer(self, handle: EventHandle) -> None:
        handle.cancel()

    def trace(self, category: str, **detail: Any) -> None:
        self._world.tracer.record(
            self._world.now(), category, node=self._node_id, **detail
        )

"""Build a simulated cluster for a chosen protocol.

The builder wires together a :class:`~repro.sim.world.SimulationWorld`, a
:class:`~repro.net.network.SimulatedNetwork`, and one protocol node (plus its
environment and durable store) per member, and returns a
:class:`SimulatedCluster` facade the harness and examples drive.

Which protocols exist -- and how each one constructs its nodes -- is entirely
the business of the protocol registry (:mod:`repro.protocols`): the builder
looks the requested name up and delegates node construction to
:meth:`~repro.protocols.ProtocolSpec.build_node`, so registering a new
protocol spec makes it buildable here with no code change.
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterable, Mapping

from repro import protocols
from repro.common.config import ClusterConfig, ProtocolConfig
from repro.common.errors import ClusterError, ConfigurationError
from repro.common.types import ServerId
from repro.cluster.environment import SimNodeEnvironment
from repro.net.faults import FaultInjector
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.network import SimulatedNetwork
from repro.raft.listeners import NodeListener
from repro.raft.node import RaftNode
from repro.raft.state import Role
from repro.raft.timers import ElectionTimeoutPolicy
from repro.sim.world import SimulationWorld
from repro.statemachine.base import StateMachine
from repro.statemachine.kvstore import KeyValueStore
from repro.storage.persistent import InMemoryStore

TimeoutPolicyFactory = Callable[[ServerId], ElectionTimeoutPolicy | None]
StateMachineFactory = Callable[[ServerId], StateMachine]


class _LeaderTracker:
    """Maintains the set of running nodes whose role is currently LEADER.

    Every role transition funnels through ``RaftNode._change_role`` (which
    notifies listeners), so this set is exactly the nodes a full scan for
    ``is_running and role is LEADER`` would find -- the harness polls
    :meth:`SimulatedCluster.has_leader` after every executed event, and the
    scan was the single hottest line of an election sweep.  Crash/recover
    bypass ``_change_role`` (a stopped leader keeps its role), so
    :meth:`SimulatedCluster.crash` evicts the crashed server explicitly.
    """

    __slots__ = ("leader_ids",)

    def __init__(self) -> None:
        self.leader_ids: set[ServerId] = set()

    def on_role_change(self, node_id, old_role, new_role, term, time_ms) -> None:
        if new_role is Role.LEADER:
            self.leader_ids.add(node_id)
        elif old_role is Role.LEADER:
            self.leader_ids.discard(node_id)

    # No-op remainder of the NodeListener protocol.
    def on_election_timeout(self, node_id, term, attempt, time_ms) -> None:
        return None

    def on_election_started(self, node_id, term, time_ms) -> None:
        return None

    def on_vote_granted(self, voter_id, candidate_id, term, time_ms) -> None:
        return None

    def on_leader_elected(self, leader_id, term, votes, time_ms) -> None:
        return None

    def on_entry_committed(self, node_id, index, term, time_ms) -> None:
        return None


class SimulatedCluster:
    """A set of protocol nodes connected by one simulated network."""

    def __init__(
        self,
        protocol: str,
        config: ClusterConfig,
        world: SimulationWorld,
        network: SimulatedNetwork,
        nodes: Mapping[ServerId, RaftNode],
    ) -> None:
        self.protocol = protocol
        self.config = config
        self.world = world
        self.network = network
        self.nodes: dict[ServerId, RaftNode] = dict(nodes)
        self._crashed: set[ServerId] = set()
        self._leader_tracker = _LeaderTracker()
        for node in self.nodes.values():
            node.add_listener(self._leader_tracker)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start_all(self) -> None:
        """Start every node (each joins as a follower and arms its timer)."""
        for node in self.nodes.values():
            node.start()

    def node(self, server_id: ServerId) -> RaftNode:
        """The node object for *server_id*."""
        try:
            return self.nodes[server_id]
        except KeyError as exc:
            raise ClusterError(f"S{server_id} is not part of this cluster") from exc

    def running_nodes(self) -> list[RaftNode]:
        """Nodes that are currently running (not crashed)."""
        return [node for node in self.nodes.values() if node.is_running]

    def harvest_telemetry(self, metrics) -> None:
        """Fold this cluster's scheduler/network counters into a
        :class:`repro.obs.telemetry.MetricsRegistry`.

        Imported lazily: the cluster layer must stay importable without the
        observability layer (repro.obs depends on sim/net, not vice versa).
        """
        from repro.obs.harvest import harvest_cluster

        harvest_cluster(self, metrics)

    @property
    def crashed(self) -> frozenset[ServerId]:
        """Servers currently crashed."""
        return frozenset(self._crashed)

    # ------------------------------------------------------------------ #
    # Leadership
    # ------------------------------------------------------------------ #
    def leader(self) -> RaftNode | None:
        """The running leader with the highest term, if any."""
        leader_ids = self._leader_tracker.leader_ids
        if not leader_ids:
            return None
        # sorted() keeps the answer deterministic if two leaders ever tie on
        # term (the old full scan iterated nodes in server-id order).
        leaders = [self.nodes[server_id] for server_id in sorted(leader_ids)]
        return max(leaders, key=lambda node: node.current_term)

    def leader_id(self) -> ServerId | None:
        """Identifier of the current leader, if any."""
        leader = self.leader()
        return leader.node_id if leader else None

    def has_leader(self) -> bool:
        """Whether a running node currently considers itself leader.  O(1)."""
        return bool(self._leader_tracker.leader_ids)

    def has_leader_other_than(self, exclude: ServerId) -> bool:
        """Whether :meth:`leader` would return a node other than *exclude*.

        The harness polls this after every executed event while waiting for
        failover convergence, so the common cases (no leader yet; a leader
        that is not *exclude*) stay O(1) on the tracker set.  Only the
        ambiguous case -- *exclude* still among the tracked leaders -- falls
        back to the full highest-term comparison.
        """
        leader_ids = self._leader_tracker.leader_ids
        if not leader_ids:
            return False
        if exclude not in leader_ids:
            return True
        leader = self.leader()
        return leader is not None and leader.node_id != exclude

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #
    def crash(self, server_id: ServerId) -> None:
        """Crash a server: stop its timers and detach it from the network."""
        if server_id in self._crashed:
            raise ClusterError(f"S{server_id} is already crashed")
        node = self.node(server_id)
        node.stop()
        # stop() keeps the node's role (a crashed leader stays LEADER on
        # disk), so evict it from the live-leader set explicitly; recover()
        # rejoins as follower, which needs no tracker update.
        self._leader_tracker.leader_ids.discard(server_id)
        self.network.disconnect(server_id)
        self._crashed.add(server_id)
        self.world.trace("cluster.crash", node=server_id)

    def recover(self, server_id: ServerId) -> None:
        """Recover a crashed server: reattach it and restart it as a follower."""
        if server_id not in self._crashed:
            raise ClusterError(f"S{server_id} is not crashed")
        self.network.reconnect(server_id)
        self.node(server_id).recover()
        self._crashed.discard(server_id)
        self.world.trace("cluster.recover", node=server_id)

    def crash_leader(self) -> ServerId:
        """Crash the current leader and return its identifier."""
        leader = self.leader()
        if leader is None:
            raise ClusterError("cannot crash the leader: no leader is running")
        self.crash(leader.node_id)
        return leader.node_id

    def set_fault(self, fault: FaultInjector) -> None:
        """Install (or replace) the network fault injector."""
        self.network.set_fault(fault)

    # ------------------------------------------------------------------ #
    # Client access
    # ------------------------------------------------------------------ #
    def propose_via_leader(self, command: object) -> int:
        """Propose *command* on the current leader.

        Returns:
            The log index assigned to the command.

        Raises:
            ClusterError: when no leader is currently running.
        """
        leader = self.leader()
        if leader is None:
            raise ClusterError("no leader available to accept the proposal")
        return leader.propose(command)

    def describe(self) -> str:
        """Multi-line summary of every node (used by the examples)."""
        lines = [f"cluster protocol={self.protocol} size={self.config.size}"]
        for server_id in self.config.server_ids:
            node = self.nodes[server_id]
            status = "CRASHED" if server_id in self._crashed else node.describe()
            lines.append(f"  {status}")
        return "\n".join(lines)


def build_cluster(
    protocol: str,
    size: int,
    seed: int = 0,
    latency: LatencyModel | None = None,
    fault: FaultInjector | None = None,
    protocol_config: ProtocolConfig | None = None,
    listeners: Iterable[NodeListener] = (),
    timeout_policy_factory: TimeoutPolicyFactory | None = None,
    timeout_override_factory: TimeoutPolicyFactory | None = None,
    state_machine_factory: StateMachineFactory | None = None,
    trace: bool = True,
    escape_override_factory: TimeoutPolicyFactory | None = None,
    engine: str | None = None,
) -> SimulatedCluster:
    """Build a ready-to-start simulated cluster.

    Args:
        protocol: any name registered in :mod:`repro.protocols` (e.g.
            ``"raft"``, ``"escape"``, ``"zraft"``, ``"escape-noppf"``).
        size: number of servers (``S1 .. Sn``).
        seed: root seed of the run (drives every random decision).
        latency: latency model (defaults to the paper's 100-200 ms uniform).
        fault: fault injector (defaults to a healthy network).
        protocol_config: timing knobs (defaults to the paper's values).
        listeners: listeners attached to every node (e.g. an
            :class:`~repro.cluster.observers.ElectionObserver`).
        timeout_policy_factory: per-node election timeout policy for
            policy-driven protocols (the Raft family; used by the contention
            scenarios); return ``None`` to keep the spec's default policy.
        timeout_override_factory: per-node timeout override for
            override-driven protocols (the ESCAPE family, including Z-Raft;
            used by the contention scenarios).
        state_machine_factory: per-node state machine (defaults to a
            :class:`~repro.statemachine.kvstore.KeyValueStore`).
        trace: whether to record the world trace (disable in large sweeps).
        escape_override_factory: deprecated alias for
            ``timeout_override_factory`` (the override never applied only to
            ESCAPE -- Z-Raft consumed it too).
        engine: simulation engine name registered in
            :mod:`repro.sim.engines` (``"classic"`` or ``"flat"``); ``None``
            uses the session default.  Engines are bit-identical -- same
            measurements, stats and traces for the same seed -- and differ
            only in speed and in-run observability.
    """
    if escape_override_factory is not None:
        warnings.warn(
            "escape_override_factory is deprecated; use "
            "timeout_override_factory (it applies to every override-driven "
            "protocol, not just ESCAPE)",
            DeprecationWarning,
            stacklevel=2,
        )
        if timeout_override_factory is not None:
            raise ConfigurationError(
                "give timeout_override_factory or the deprecated "
                "escape_override_factory alias, not both"
            )
        timeout_override_factory = escape_override_factory
    spec = protocols.get(protocol)
    cluster_config = ClusterConfig.of_size(size)
    config = protocol_config or ProtocolConfig.paper_defaults()
    world = SimulationWorld(seed=seed, trace=trace, engine=engine)
    network_class = world.engine.network_class()
    environment_class = world.engine.environment_class()
    network = network_class(
        world,
        cluster_config.server_ids,
        latency=latency if latency is not None else UniformLatency(100.0, 200.0),
        fault=fault,
    )

    nodes: dict[ServerId, RaftNode] = {}
    shared_listeners = list(listeners)
    for server_id in cluster_config.server_ids:
        env = environment_class(world, network, server_id)
        node = spec.build_node(
            node_id=server_id,
            cluster=cluster_config,
            env=env,
            store=InMemoryStore(),
            state_machine=(
                state_machine_factory(server_id)
                if state_machine_factory is not None
                else KeyValueStore()
            ),
            protocol_config=config,
            listeners=shared_listeners,
            timeout_policy=(
                timeout_policy_factory(server_id)
                if timeout_policy_factory is not None
                else None
            ),
            timeout_override=(
                timeout_override_factory(server_id)
                if timeout_override_factory is not None
                else None
            ),
        )
        network.register(server_id, node.on_message)
        nodes[server_id] = node

    return SimulatedCluster(spec.name, cluster_config, world, network, nodes)

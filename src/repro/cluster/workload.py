"""Client workload generator for simulated clusters.

The message-loss experiment (Figure 11) needs ongoing log replication so that
dropped heartbeats actually leave some followers behind -- that lag is what
turns statically privileged servers into "unqualified candidates".  The
workload proposes a command on the current leader at a fixed interval for as
long as it is enabled.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.builder import SimulatedCluster
from repro.common.errors import NotLeaderError
from repro.common.types import Milliseconds
from repro.statemachine.kvstore import PutCommand


class ClientWorkload:
    """Proposes commands on the current leader at a fixed interval."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        interval_ms: Milliseconds = 50.0,
        command_factory: Callable[[int], object] | None = None,
    ) -> None:
        self._cluster = cluster
        self._interval_ms = interval_ms
        self._command_factory = command_factory or self._default_command
        self._sequence = 0
        self._active = False
        self.proposed = 0
        self.rejected = 0

    @staticmethod
    def _default_command(sequence: int) -> object:
        return PutCommand(key=f"key-{sequence % 16}", value=sequence)

    @property
    def is_active(self) -> bool:
        """Whether the workload is currently scheduling proposals."""
        return self._active

    def start(self) -> None:
        """Begin proposing commands every ``interval_ms``."""
        if self._active:
            return
        self._active = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop proposing new commands (already scheduled ticks do nothing)."""
        self._active = False

    def _schedule_next(self) -> None:
        self._cluster.world.scheduler.call_after(
            self._interval_ms, self._tick, label="workload"
        )

    def _tick(self) -> None:
        if not self._active:
            return
        leader = self._cluster.leader()
        if leader is not None:
            command = self._command_factory(self._sequence)
            self._sequence += 1
            try:
                leader.propose(command)
                self.proposed += 1
            except NotLeaderError:
                # The leader changed between the lookup and the proposal; the
                # command is simply dropped, exactly as a real client retry
                # loop would treat a NotLeader error.
                self.rejected += 1
        self._schedule_next()

"""Client workload generator for simulated clusters.

The message-loss experiment (Figure 11) needs ongoing log replication so that
dropped heartbeats actually leave some followers behind -- that lag is what
turns statically privileged servers into "unqualified candidates".  The
workload proposes a command on the current leader at a fixed interval for as
long as it is enabled.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.builder import SimulatedCluster
from repro.common.errors import NotLeaderError
from repro.common.types import Milliseconds
from repro.statemachine.kvstore import PutCommand


class ClientWorkload:
    """Proposes commands on the current leader at a fixed interval.

    Args:
        cluster: the cluster under test.
        interval_ms: proposal period.
        command_factory: builds the proposed command from a sequence number.
        leader_selector: how the client finds the leader each tick; defaults
            to the cluster's global leader view.  The chaos availability
            scenario passes a quorum-aware selector so that ticks during a
            partition (when only a stale, commit-incapable leader exists)
            count as dropped instead of landing on a leader that can never
            acknowledge them.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        interval_ms: Milliseconds = 50.0,
        command_factory: Callable[[int], object] | None = None,
        leader_selector: Callable[[], object] | None = None,
    ) -> None:
        self._cluster = cluster
        self._interval_ms = interval_ms
        self._command_factory = command_factory or self._default_command
        self._leader_selector = leader_selector or cluster.leader
        self._sequence = 0
        self._active = False
        self.proposed = 0
        self.rejected = 0
        self.dropped = 0

    @staticmethod
    def _default_command(sequence: int) -> object:
        return PutCommand(key=f"key-{sequence % 16}", value=sequence)

    @property
    def is_active(self) -> bool:
        """Whether the workload is currently scheduling proposals."""
        return self._active

    def start(self) -> None:
        """Begin proposing commands every ``interval_ms``."""
        if self._active:
            return
        self._active = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop proposing new commands (already scheduled ticks do nothing)."""
        self._active = False

    def _schedule_next(self) -> None:
        self._cluster.world.scheduler.call_after(
            self._interval_ms, self._tick, label="workload"
        )

    def _tick(self) -> None:
        if not self._active:
            return
        leader = self._leader_selector()
        if leader is None:
            # No leader to talk to: the request is lost at the client.  The
            # availability experiment reads this counter as the client-side
            # view of every leaderless interval.
            self.dropped += 1
        else:
            command = self._command_factory(self._sequence)
            self._sequence += 1
            try:
                leader.propose(command)
                self.proposed += 1
            except NotLeaderError:
                # The leader changed between the lookup and the proposal; the
                # command is simply dropped, exactly as a real client retry
                # loop would treat a NotLeader error.
                self.rejected += 1
        self._schedule_next()

"""Cluster harness: build simulated clusters, inject faults, measure elections.

The harness is what the experiment modules (and the examples) drive:

* :mod:`repro.cluster.environment` adapts the discrete-event simulator to the
  node's :class:`~repro.raft.environment.Environment` protocol;
* :mod:`repro.cluster.builder` wires nodes, network and world together for
  any protocol registered in :mod:`repro.protocols`;
* :mod:`repro.cluster.observers` records election events cluster-wide;
* :mod:`repro.cluster.harness` runs elections and produces
  :class:`~repro.metrics.records.ElectionMeasurement` records;
* :mod:`repro.cluster.scenarios` packages the paper's fault scenarios (leader
  crash, forced contention, broadcast message loss) into one reusable
  :class:`~repro.cluster.scenarios.ElectionScenario`;
* :mod:`repro.cluster.catalog` names ready-made network conditions (WAN
  splits, heavy tails, loss, duplication, chaos) as declarative specs any
  scenario can run under.
"""

from repro.cluster.builder import SimulatedCluster, build_cluster
from repro.cluster.catalog import (
    CATALOG,
    NetworkCondition,
    catalog_scenarios,
    condition_names,
    get_condition,
    scenario_for,
)
from repro.cluster.environment import SimNodeEnvironment
from repro.cluster.harness import ElectionHarness
from repro.cluster.observers import ElectionObserver
from repro.cluster.scenarios import ElectionScenario
from repro.cluster.workload import ClientWorkload

__all__ = [
    "CATALOG",
    "ClientWorkload",
    "ElectionHarness",
    "ElectionObserver",
    "ElectionScenario",
    "NetworkCondition",
    "SimNodeEnvironment",
    "SimulatedCluster",
    "build_cluster",
    "catalog_scenarios",
    "condition_names",
    "get_condition",
    "scenario_for",
]

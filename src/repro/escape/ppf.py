"""The Probing Patrol Function (PPF, Section IV-B).

The PPF runs on the leader.  Each heartbeat round it

1. reads the latest log responsiveness every follower reported in its
   AppendEntries replies (the ``configStatus.log_index`` field),
2. decides which followers are currently *lagging* (silent, crashed, or
   missing log entries),
3. re-assigns the pool of prioritized configurations so that up-to-date
   followers hold the higher priorities (and therefore the shorter election
   timeouts), advancing the configuration clock whenever the assignment
   actually changes, and
4. hands the per-follower assignment back to the node, which piggybacks it on
   the next heartbeat broadcast.

Two engineering decisions deserve a note (both are documented in DESIGN.md):

* **Stability.**  The ranking is *stable*: followers keep their relative order
  unless their lagging status changes.  A full re-sort on every heartbeat
  would reshuffle priorities on transient, one-heartbeat lags, which under
  broadcast message loss makes half the cluster hold configurations one clock
  behind and reintroduces exactly the stale-candidate problem the clock is
  meant to solve.
* **Rearrangement clock.**  The configuration clock is the logical clock of
  *rearrangements* -- it advances only when the priority assignment changes,
  not on every heartbeat.  Rounds that re-issue the same assignment keep the
  same clock, so a follower that misses one heartbeat broadcast is not
  instantly considered stale by the voters.

Followers that have stopped responding (or whose logs trail the leader's by
more than ``lag_entries_threshold``) sink to the bottom of the ranking, so a
crashed or partitioned server can never hold the groomed "future leader"
configuration for long -- this is exactly the scenario of Figure 5b in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.common.config import ScaParameters
from repro.common.errors import ConfigurationError
from repro.common.types import LogIndex, Milliseconds, ServerId
from repro.escape.configuration import Configuration
from repro.escape.sca import follower_priority_ladder, validate_assignment


@dataclass
class FollowerResponsiveness:
    """What the leader currently knows about one follower."""

    follower_id: ServerId
    log_index: LogIndex = 0
    last_reply_ms: Milliseconds | None = None
    reported_conf_clock: int = -1

    @property
    def has_replied(self) -> bool:
        """Whether any reply has been received from this follower."""
        return self.last_reply_ms is not None


class ProbingPatrol:
    """Leader-side configuration pool manager.

    Args:
        leader_id: the leader this patrol runs on.
        followers: the leader's peers.
        cluster_size: total number of servers ``n`` (followers hold priorities
            ``[2, n]``; the leader holds no active configuration while it
            leads -- its row is ``NA/∞`` in Figure 5 of the paper).
        sca: the Eq. 1 parameters used to pair a timeout with each priority.
        initial_clock: the first configuration clock to hand out; the leader
            uses its own configuration's clock + 1 so newly issued
            configurations always dominate anything assigned by a previous
            leader.
        lag_entries_threshold: a follower whose last reported log index trails
            the leader's log by at least this many entries counts as lagging.
        stale_after_ms: a follower that has not replied for this long counts
            as lagging (covers crashed and partitioned servers).
    """

    def __init__(
        self,
        leader_id: ServerId,
        followers: Iterable[ServerId],
        cluster_size: int,
        sca: ScaParameters,
        initial_clock: int = 1,
        lag_entries_threshold: int = 2,
        stale_after_ms: Milliseconds = 600.0,
    ) -> None:
        self._leader_id = leader_id
        self._followers = tuple(followers)
        if len(self._followers) != cluster_size - 1:
            raise ConfigurationError(
                f"expected {cluster_size - 1} followers, got {len(self._followers)}"
            )
        if lag_entries_threshold < 1:
            raise ConfigurationError("lag_entries_threshold must be >= 1")
        if stale_after_ms <= 0:
            raise ConfigurationError("stale_after_ms must be positive")
        self._cluster_size = cluster_size
        self._sca = sca
        self._clock = max(0, initial_clock)
        self._lag_entries_threshold = lag_entries_threshold
        self._stale_after_ms = stale_after_ms
        self._responsiveness: dict[ServerId, FollowerResponsiveness] = {
            follower: FollowerResponsiveness(follower) for follower in self._followers
        }
        self._assignments: dict[ServerId, Configuration] = {}
        self.rearrangement_count = 0
        # The initial assignment simply follows server-id order; the first
        # few heartbeat replies will promote the actually-responsive servers.
        self._rebuild_from(sorted(self._followers))

    # ------------------------------------------------------------------ #
    # Observation (called from AppendEntries replies)
    # ------------------------------------------------------------------ #
    @property
    def conf_clock(self) -> int:
        """The configuration clock of the most recent rearrangement."""
        return self._clock

    @property
    def assignments(self) -> Mapping[ServerId, Configuration]:
        """The current follower → configuration assignment (read-only copy)."""
        return dict(self._assignments)

    def responsiveness_of(self, follower: ServerId) -> FollowerResponsiveness:
        """The leader's current knowledge about one follower."""
        try:
            return self._responsiveness[follower]
        except KeyError as exc:
            raise ConfigurationError(f"S{follower} is not a tracked follower") from exc

    def record_reply(
        self,
        follower: ServerId,
        log_index: LogIndex,
        now_ms: Milliseconds,
        reported_conf_clock: int | None = None,
    ) -> None:
        """Record a follower's AppendEntries reply (its responsiveness probe)."""
        record = self.responsiveness_of(follower)
        record.log_index = max(record.log_index, log_index)
        record.last_reply_ms = now_ms
        if reported_conf_clock is not None:
            record.reported_conf_clock = max(
                record.reported_conf_clock, reported_conf_clock
            )

    def is_lagging(
        self,
        follower: ServerId,
        now_ms: Milliseconds,
        leader_last_index: LogIndex,
    ) -> bool:
        """Whether the leader currently considers *follower* to be lagging."""
        record = self.responsiveness_of(follower)
        if not record.has_replied:
            return True
        assert record.last_reply_ms is not None
        if now_ms - record.last_reply_ms > self._stale_after_ms:
            return True
        return leader_last_index - record.log_index >= self._lag_entries_threshold

    # ------------------------------------------------------------------ #
    # Rearrangement (called right before each heartbeat broadcast)
    # ------------------------------------------------------------------ #
    def advance_round(
        self, now_ms: Milliseconds, leader_last_index: LogIndex
    ) -> Mapping[ServerId, Configuration]:
        """Run one PPF round: re-rank the followers and re-issue configurations.

        Returns:
            The follower → configuration assignment to piggyback on this
            round's heartbeats.
        """
        ranking = self.ranked_followers(now_ms, leader_last_index)
        ladder = follower_priority_ladder(self._cluster_size)
        proposed = dict(zip(ranking, ladder))
        current = {
            follower: configuration.priority
            for follower, configuration in self._assignments.items()
        }
        if proposed != current:
            self._clock += 1
            self._rebuild_from(ranking)
            self.rearrangement_count += 1
        return self.assignments

    def configuration_for(self, follower: ServerId) -> Configuration:
        """The configuration currently assigned to *follower*."""
        try:
            return self._assignments[follower]
        except KeyError as exc:
            raise ConfigurationError(f"S{follower} has no assigned configuration") from exc

    def ranked_followers(
        self, now_ms: Milliseconds, leader_last_index: LogIndex
    ) -> list[ServerId]:
        """Followers ordered best-first: up-to-date before lagging, stable otherwise.

        Within each group the order follows the currently held priority (so a
        healthy groomed future leader keeps its configuration), with server id
        as the final deterministic tie-break.
        """

        def sort_key(follower: ServerId) -> tuple[int, int, ServerId]:
            lagging = self.is_lagging(follower, now_ms, leader_last_index)
            current = self._assignments.get(follower)
            priority = current.priority if current is not None else 0
            return (1 if lagging else 0, -priority, follower)

        return sorted(self._followers, key=sort_key)

    def groomed_future_leader(self) -> ServerId:
        """The follower currently holding the highest-priority configuration."""
        return max(
            self._assignments, key=lambda follower: self._assignments[follower].priority
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _rebuild_from(self, ranking: list[ServerId]) -> None:
        ladder = follower_priority_ladder(self._cluster_size)
        assignments: dict[ServerId, Configuration] = {}
        for priority, follower in zip(ladder, ranking):
            assignments[follower] = Configuration(
                priority=priority,
                timer_period_ms=self._sca.election_timeout_ms(
                    priority, self._cluster_size
                ),
                conf_clock=self._clock,
            )
        validate_assignment(assignments)
        self._assignments = assignments

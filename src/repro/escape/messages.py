"""ESCAPE's extended RPC messages (Listing 1 of the paper).

ESCAPE adds exactly three pieces of information to Raft's RPCs:

* ``AppendEntries`` carries the follower's *newly assigned configuration*
  (``newConfig``), letting the PPF distribute configurations on the existing
  heartbeat without extra messages;
* the ``AppendEntries`` reply carries a ``configStatus`` describing the
  follower's log responsiveness and currently-held configuration;
* ``RequestVote`` carries the candidate's configuration clock (and priority,
  for observability), letting voters reject stale candidates.

Each extended message subclasses its Raft counterpart, so Raft-level handlers
treat them identically -- the mechanical expression of the paper's Lemma 2
(an ESCAPE campaign is indistinguishable from a Raft campaign to a receiver).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.escape.configuration import ConfigStatus, Configuration
from repro.raft.messages import (
    AppendEntriesRequest,
    AppendEntriesResponse,
    RequestVoteRequest,
)


@dataclass(frozen=True, slots=True)
class EscapeRequestVoteRequest(RequestVoteRequest):
    """RequestVote extended with the candidate's configuration metadata."""

    conf_clock: int = 0
    priority: int = 1


@dataclass(frozen=True, slots=True)
class EscapeAppendEntriesRequest(AppendEntriesRequest):
    """AppendEntries extended with the follower's newly assigned configuration.

    ``new_config`` is ``None`` when the leader has nothing new for this
    follower in this round (for example while it is still collecting the first
    round of responsiveness reports).
    """

    new_config: Configuration | None = None


@dataclass(frozen=True, slots=True)
class EscapeAppendEntriesResponse(AppendEntriesResponse):
    """AppendEntries reply extended with the follower's ``configStatus``."""

    config_status: ConfigStatus | None = None

"""ESCAPE: precaution against leader failures (the paper's contribution).

ESCAPE extends Raft's leader election with two components:

* **Stochastic Configuration Assignment (SCA)** -- every server holds a unique
  *configuration* pairing a priority with an election timeout (Eq. 1).  The
  priority drives the server's term growth when it campaigns (Eq. 2), so
  simultaneous campaigns land in *different* terms and never split votes.
* **Probing Patrol Function (PPF)** -- the leader tracks follower log
  responsiveness through heartbeat replies and atomically re-assigns the
  winning configurations to the most up-to-date followers, stamping every
  assignment with a monotonically increasing *configuration clock* so stale
  configurations can never disturb an election.

:class:`~repro.escape.node.EscapeNode` plugs these two components into the
Raft core through its extension hooks; log replication is untouched, which is
the basis of the paper's safety argument (Section V).
"""

from repro.escape.configuration import ConfigStatus, Configuration
from repro.escape.messages import (
    EscapeAppendEntriesRequest,
    EscapeAppendEntriesResponse,
    EscapeRequestVoteRequest,
)
from repro.escape.node import EscapeNode, EscapeNoPpfNode
from repro.escape.ppf import FollowerResponsiveness, ProbingPatrol
from repro.escape.sca import assign_initial_configurations

__all__ = [
    "ConfigStatus",
    "Configuration",
    "EscapeAppendEntriesRequest",
    "EscapeAppendEntriesResponse",
    "EscapeNoPpfNode",
    "EscapeNode",
    "EscapeRequestVoteRequest",
    "FollowerResponsiveness",
    "ProbingPatrol",
    "assign_initial_configurations",
]

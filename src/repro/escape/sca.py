"""Stochastic Configuration Assignment (SCA, Section IV-A).

When a server joins the system it adopts a unique priority -- ESCAPE simply
uses the server identifier, so ``P_i = i`` -- and derives its election timeout
from Eq. 1::

    period_i = baseTime + k * (n - P_i)

The highest-priority server therefore has the shortest timeout.  These initial
configurations carry configuration clock 0; the Probing Patrol Function
(:mod:`repro.escape.ppf`) re-stamps and re-distributes them once a leader is
running.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.common.config import ScaParameters
from repro.common.errors import ConfigurationError
from repro.common.types import ServerId
from repro.common.validation import require_non_empty, require_unique
from repro.escape.configuration import Configuration


def assign_initial_configurations(
    server_ids: Sequence[ServerId],
    params: ScaParameters,
) -> dict[ServerId, Configuration]:
    """Build every server's initial configuration per SCA.

    Args:
        server_ids: the cluster membership; each identifier doubles as the
            server's initial priority (``P_i = i``).
        params: the Eq. 1 parameters (``baseTime`` and ``k``).

    Returns:
        A mapping from server id to its initial :class:`Configuration`
        (configuration clock 0).

    Raises:
        ConfigurationError: if identifiers are duplicated or exceed the
            cluster size (priorities must lie in ``[1, n]``).
    """
    ids = require_non_empty(server_ids, "server_ids")
    require_unique(ids, "server_ids")
    n = len(ids)
    configurations: dict[ServerId, Configuration] = {}
    for server_id in ids:
        if not 1 <= server_id <= n:
            raise ConfigurationError(
                f"server id {server_id} is outside [1, {n}]; SCA uses ids as priorities"
            )
        configurations[server_id] = Configuration(
            priority=server_id,
            timer_period_ms=params.election_timeout_ms(server_id, n),
            conf_clock=0,
        )
    return configurations


def follower_priority_ladder(cluster_size: int) -> list[int]:
    """Priorities the PPF hands out to followers, best first.

    The pool managed by a leader contains ``n - 1`` configurations for its
    ``n - 1`` followers.  The most responsive follower receives priority ``n``
    (and therefore the ``baseTime`` timeout -- it is the groomed "future
    leader"), the next one ``n - 1``, and so on down to priority ``2``.  The
    leader itself holds no active configuration while leading (its row is
    ``NA/∞`` in Figure 5 of the paper).
    """
    if cluster_size < 2:
        raise ConfigurationError("a configuration pool needs at least 2 servers")
    return list(range(cluster_size, 1, -1))


def validate_assignment(
    assignment: Mapping[ServerId, Configuration],
) -> None:
    """Check Lemma 3: no two servers share a configuration at the same clock.

    Raises:
        ConfigurationError: if two servers hold the same priority with the
            same configuration clock.
    """
    seen: dict[tuple[int, int], ServerId] = {}
    for server_id, configuration in assignment.items():
        key = (configuration.priority, configuration.conf_clock)
        if key in seen:
            raise ConfigurationError(
                f"S{server_id} and S{seen[key]} share configuration "
                f"priority={configuration.priority} at clock={configuration.conf_clock}"
            )
        seen[key] = server_id

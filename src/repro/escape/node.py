"""The ESCAPE node: Raft plus SCA, PPF and the configuration clock.

:class:`EscapeNode` overrides only the extension hooks of
:class:`repro.raft.node.RaftNode`:

================================  ====================================================
Hook                              ESCAPE behaviour
================================  ====================================================
``_hook_next_election_term``      term grows by the node's priority (Eq. 2)
``_hook_election_timeout_ms``     the timeout paired with the current configuration
``_hook_may_grant_vote``          reject candidates with a stale configuration clock
``_hook_make_vote_request``       include configuration clock (and priority)
``_hook_decorate_append_request`` piggyback the follower's newly assigned configuration
``_hook_make_append_response``    include the follower's ``configStatus``
``_hook_on_leader_heartbeat``     adopt a newer configuration carried by a heartbeat
``_hook_on_append_response``      feed the PPF with follower responsiveness
``_hook_before_heartbeat_round``  run one PPF round (clock bump + re-ranking)
``_hook_on_become_leader``        instantiate the PPF for this leadership period
================================  ====================================================

Everything else -- log replication, commitment, vote counting -- is inherited
unchanged, which is the code-level expression of the paper's safety argument.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.common.config import ClusterConfig, ProtocolConfig
from repro.common.types import LogIndex, Milliseconds, ServerId, Term
from repro.escape.configuration import ConfigStatus, Configuration
from repro.escape.messages import (
    EscapeAppendEntriesRequest,
    EscapeAppendEntriesResponse,
    EscapeRequestVoteRequest,
)
from repro.escape.ppf import ProbingPatrol
from repro.escape.sca import assign_initial_configurations
from repro.raft.environment import Environment
from repro.raft.listeners import NodeListener
from repro.raft.messages import (
    AppendEntriesRequest,
    AppendEntriesResponse,
    RequestVoteRequest,
)
from repro.raft.node import RaftNode
from repro.raft.timers import ElectionTimeoutPolicy
from repro.statemachine.base import StateMachine
from repro.storage.persistent import PersistentState


class EscapeNode(RaftNode):
    """A server running the ESCAPE leader-election protocol.

    Args:
        node_id, cluster, env, store, state_machine, protocol_config,
        listeners: as for :class:`~repro.raft.node.RaftNode`.
        initial_configuration: the SCA configuration this server starts with.
            When omitted it is derived from the cluster membership and the
            SCA parameters in ``protocol_config`` (priority = server id).
        timeout_override: optional scripted policy consulted *before* the
            configuration's timer period.  The Figure 10 harness uses this to
            force simultaneous timeouts (stale-configuration contention); it
            returns to the configuration-driven timeout once the script is
            exhausted.
    """

    protocol_name = "escape"

    def __init__(
        self,
        node_id: ServerId,
        cluster: ClusterConfig,
        env: Environment,
        store: PersistentState | None = None,
        state_machine: StateMachine | None = None,
        protocol_config: ProtocolConfig | None = None,
        listeners: Iterable[NodeListener] = (),
        initial_configuration: Configuration | None = None,
        timeout_override: ElectionTimeoutPolicy | None = None,
    ) -> None:
        super().__init__(
            node_id=node_id,
            cluster=cluster,
            env=env,
            store=store,
            state_machine=state_machine,
            timeout_policy=None,
            protocol_config=protocol_config,
            listeners=listeners,
        )
        if initial_configuration is None:
            initial_configuration = assign_initial_configurations(
                list(cluster.server_ids), self.config.sca
            )[node_id]
        self.configuration: Configuration = initial_configuration
        self._timeout_override = timeout_override
        self.patrol: ProbingPatrol | None = None
        self.configuration_updates = 0

    # ------------------------------------------------------------------ #
    # SCA: term growth and election timeouts
    # ------------------------------------------------------------------ #
    def _hook_next_election_term(self) -> Term:
        """Eq. 2: the campaign term grows by this server's priority."""
        return self.current_term + self.configuration.priority

    def _hook_election_timeout_ms(self) -> Milliseconds:
        """The timeout paired with the current configuration (Eq. 1).

        A scripted override (contention scenarios) takes precedence while its
        script lasts; afterwards the configuration timeout applies again.
        """
        if self._timeout_override is not None:
            value = self._timeout_override.next_timeout_ms(
                self.env.rng, self._timeout_attempt
            )
            if value is not None and value > 0:
                return value
        return self.configuration.timer_period_ms

    # ------------------------------------------------------------------ #
    # Configuration-clock vote gating
    # ------------------------------------------------------------------ #
    def _hook_may_grant_vote(self, request: RequestVoteRequest) -> bool:
        """Reject candidates whose configuration clock is stale (Section IV-B)."""
        if isinstance(request, EscapeRequestVoteRequest):
            return request.conf_clock >= self.configuration.conf_clock
        return True

    def _hook_make_vote_request(self) -> RequestVoteRequest:
        return EscapeRequestVoteRequest(
            term=self.current_term,
            candidate_id=self.node_id,
            last_log_index=self.log.last_index,
            last_log_term=self.log.last_term,
            conf_clock=self.configuration.conf_clock,
            priority=self.configuration.priority,
        )

    # ------------------------------------------------------------------ #
    # PPF: leader side
    # ------------------------------------------------------------------ #
    def _hook_on_become_leader(self) -> None:
        """Start a fresh patrol whose clock dominates everything issued before."""
        if not self.peers:
            self.patrol = None
            return
        self.patrol = ProbingPatrol(
            leader_id=self.node_id,
            followers=self.peers,
            cluster_size=self.cluster.size,
            sca=self.config.sca,
            initial_clock=self.configuration.conf_clock + 1,
            stale_after_ms=4.0 * self.config.heartbeat_interval_ms,
        )
        self.env.trace(
            "ppf.start",
            conf_clock=self.patrol.conf_clock,
            leader_priority=self.configuration.priority,
        )

    def _hook_before_heartbeat_round(self) -> None:
        """Run one PPF round right before broadcasting heartbeats."""
        if self.patrol is None:
            return
        assignments = self.patrol.advance_round(self.env.now(), self.log.last_index)
        self.env.trace(
            "ppf.rearrange",
            conf_clock=self.patrol.conf_clock,
            future_leader=self.patrol.groomed_future_leader(),
            assignment={
                follower: configuration.priority
                for follower, configuration in assignments.items()
            },
        )

    def _hook_decorate_append_request(
        self, request: AppendEntriesRequest, follower: ServerId
    ) -> AppendEntriesRequest:
        """Piggyback the follower's newly assigned configuration on the heartbeat."""
        new_config = (
            self.patrol.configuration_for(follower) if self.patrol is not None else None
        )
        return EscapeAppendEntriesRequest(
            term=request.term,
            leader_id=request.leader_id,
            prev_log_index=request.prev_log_index,
            prev_log_term=request.prev_log_term,
            entries=request.entries,
            leader_commit=request.leader_commit,
            new_config=new_config,
        )

    def _hook_on_append_response(
        self, src: ServerId, response: AppendEntriesResponse
    ) -> None:
        """Feed follower responsiveness into the patrol."""
        if self.patrol is None:
            return
        if isinstance(response, EscapeAppendEntriesResponse) and response.config_status:
            status = response.config_status
            self.patrol.record_reply(
                src,
                log_index=status.log_index,
                now_ms=self.env.now(),
                reported_conf_clock=status.conf_clock,
            )
        else:
            # A plain Raft reply (mixed-version cluster) still proves liveness
            # and reports progress through match_index.
            self.patrol.record_reply(
                src, log_index=response.match_index, now_ms=self.env.now()
            )

    # ------------------------------------------------------------------ #
    # PPF: follower side
    # ------------------------------------------------------------------ #
    def _hook_on_leader_heartbeat(self, request: AppendEntriesRequest) -> None:
        """Adopt a newer configuration carried by the leader's heartbeat."""
        if not isinstance(request, EscapeAppendEntriesRequest):
            return
        new_config = request.new_config
        if new_config is None:
            return
        if new_config.conf_clock < self.configuration.conf_clock:
            # A delayed heartbeat carrying an older assignment must never roll
            # the configuration back (the clock exists precisely for this).
            return
        if new_config != self.configuration:
            self.env.trace(
                "config.update",
                old=self.configuration.describe(),
                new=new_config.describe(),
            )
            self.configuration = new_config
            self.configuration_updates += 1

    def _hook_make_append_response(
        self, request: AppendEntriesRequest, success: bool, match_index: LogIndex
    ) -> AppendEntriesResponse:
        """Attach this follower's ``configStatus`` to the reply."""
        return EscapeAppendEntriesResponse(
            term=self.current_term,
            follower_id=self.node_id,
            success=success,
            match_index=match_index,
            config_status=ConfigStatus(
                log_index=self.log.last_index,
                timer_period_ms=self.configuration.timer_period_ms,
                conf_clock=self.configuration.conf_clock,
            ),
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        base = super().describe()
        return f"{base} {self.configuration.describe()}"

    def snapshot_state(self) -> dict[str, Any]:
        """Structured summary used by examples and debugging tools."""
        return {
            "node_id": self.node_id,
            "role": str(self.role),
            "term": self.current_term,
            "priority": self.configuration.priority,
            "timer_period_ms": self.configuration.timer_period_ms,
            "conf_clock": self.configuration.conf_clock,
            "log_last_index": self.log.last_index,
            "commit_index": self.commit_index,
        }


class EscapeNoPpfNode(EscapeNode):
    """ESCAPE with the Probing Patrol disabled: the ablation as a protocol.

    Leaders never instantiate a patrol, so the initial SCA configurations
    (priority = server id, timeout from Eq. 1) are permanent and the
    configuration clock stays at its initial value cluster-wide.  Unlike
    :class:`~repro.zraft.node.ZRaftNode` -- which also strips the ESCAPE
    message extensions and the clock-based vote gate -- this variant keeps
    the full ESCAPE wire format and vote gating, so it isolates *exactly*
    the contribution of the PPF's dynamic rearrangement (Section IV-B).

    Every other hook inherits from :class:`EscapeNode` and degrades
    gracefully when ``patrol is None``: heartbeats carry no new
    configuration, follower replies still report their (static)
    ``configStatus``, and responsiveness records are dropped.
    """

    protocol_name = "escape-noppf"

    def _hook_on_become_leader(self) -> None:
        """Never start a patrol: configurations are frozen at assignment."""
        self.patrol = None

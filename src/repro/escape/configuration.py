"""ESCAPE configurations (Listing 1 of the paper).

A configuration pairs a *priority* with an *election timeout* and is stamped
with the *configuration clock* of the PPF round that assigned it.  The
priority drives term growth (Eq. 2); the timeout drives failure detection
(Eq. 1); the clock lets voters reject candidates holding stale configurations
(Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError
from repro.common.types import LogIndex, Milliseconds
from repro.common.validation import require_non_negative, require_positive


@dataclass(frozen=True, order=True)
class Configuration:
    """A prioritized configuration ``π(P, k)``.

    Attributes:
        priority: the integer priority ``P``; higher priorities win elections
            because they grow the term faster (Eq. 2).
        timer_period_ms: the election timeout paired with the priority
            (Eq. 1); higher priorities get shorter timeouts so the designated
            "future leader" detects the failure first.
        conf_clock: the PPF round that assigned this configuration; stale
            clocks disqualify a candidate from receiving votes.
    """

    priority: int
    timer_period_ms: Milliseconds
    conf_clock: int = 0

    def __post_init__(self) -> None:
        require_positive(self.priority, "priority")
        require_positive(self.timer_period_ms, "timer_period_ms")
        require_non_negative(self.conf_clock, "conf_clock")

    def with_clock(self, conf_clock: int) -> "Configuration":
        """The same priority/timeout re-stamped with a newer clock."""
        if conf_clock < self.conf_clock:
            raise ConfigurationError(
                f"configuration clock cannot move backwards: {conf_clock} < {self.conf_clock}"
            )
        return replace(self, conf_clock=conf_clock)

    def is_fresher_than(self, other: "Configuration") -> bool:
        """Whether this configuration was assigned in a later PPF round."""
        return self.conf_clock > other.conf_clock

    def describe(self) -> str:
        """Paper-style rendering ``π(P=3, k=17, timeout=2000ms)``."""
        return (
            f"π(P={self.priority}, k={self.conf_clock}, "
            f"timeout={self.timer_period_ms:.0f}ms)"
        )


@dataclass(frozen=True)
class ConfigStatus:
    """The follower-side status piggybacked on AppendEntries replies.

    Mirrors the paper's ``configStatus`` struct (Listing 1): the follower's
    current log index (its *log responsiveness*) plus the timer period and
    clock of the configuration it currently holds, which lets the leader's
    PPF confirm what each follower is operating with.
    """

    log_index: LogIndex
    timer_period_ms: Milliseconds
    conf_clock: int

    def __post_init__(self) -> None:
        require_non_negative(self.log_index, "log_index")
        require_positive(self.timer_period_ms, "timer_period_ms")
        require_non_negative(self.conf_clock, "conf_clock")

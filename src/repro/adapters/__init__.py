"""Adapters: applying ESCAPE's idea to other leader/failover elections.

Section IV-C of the paper argues that ESCAPE is not Raft-specific: any
leader-based protocol whose failover election can suffer same-epoch competition
(Redis Cluster's slave election and promotion, ZooKeeper's fast leader
election, Azure's leader-election pattern) can prepare prioritized "future
leaders" in advance.  This package demonstrates the claim on a self-contained
model of Redis Cluster's replica failover:

* :class:`~repro.adapters.redis_cluster.RedisFailoverModel` reproduces the
  stock mechanism -- rank-based delays, one failover epoch per attempt, voting
  masters that grant one vote per epoch -- including its failure mode, where
  replicas that rank themselves equally collide in the same epoch and must
  retry.
* :class:`~repro.adapters.redis_cluster.EscapeFailoverModel` applies ESCAPE:
  the master continuously assigns each replica a prioritized configuration
  (freshest replica gets the highest priority and the shortest delay); on
  failover, the epoch grows by the replica's priority and voting masters
  refuse stale configuration clocks, so concurrent attempts never share an
  epoch and the failover converges in one round.
"""

from repro.adapters.redis_cluster import (
    EscapeFailoverModel,
    FailoverMeasurement,
    RedisClusterParameters,
    RedisFailoverModel,
    compare_failover_models,
)

__all__ = [
    "EscapeFailoverModel",
    "FailoverMeasurement",
    "RedisClusterParameters",
    "RedisFailoverModel",
    "compare_failover_models",
]

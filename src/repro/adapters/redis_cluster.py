"""Redis-Cluster-style replica failover, with and without ESCAPE.

The model follows the failover mechanism of the Redis Cluster specification
(the paper's reference [13]) closely enough to exhibit the competition problem
the paper discusses, while staying small:

* a shard has one master and ``replicas`` replicas; the cluster also contains
  ``voting_masters`` other masters that vote on failover requests;
* when the master fails, each replica waits a *failover delay* and then asks
  the voting masters for votes in a new ``configEpoch``;
* a voting master grants at most one vote per epoch, so two replicas that land
  in the same epoch can split the vote and must retry after
  ``retry_timeout_ms`` -- this is the same-epoch competition of Section IV-C;
* the stock delay is ``base_delay + jitter + rank * rank_step`` where the rank
  orders replicas by replication offset (Redis's ``SLAVE_RANK``); ranks are
  computed from possibly *stale* offset information, so equal-looking replicas
  can pick the same rank.

The ESCAPE variant replaces the rank with a groomed configuration: the master
assigns each replica a unique priority derived from its replication
responsiveness before any failure happens, the failover epoch grows by the
priority (so concurrent attempts never collide in one epoch), and voting
masters reject attempts carrying a stale configuration clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.rng import SeedSequence
from repro.common.types import Milliseconds
from repro.common.validation import require_fraction, require_positive
from repro.metrics.stats import summarize


@dataclass(frozen=True)
class RedisClusterParameters:
    """Timing and topology parameters of the failover model.

    The defaults follow the Redis Cluster specification: a fixed 500 ms base
    delay, up to 500 ms of random jitter, 1000 ms per rank step, and a 10 s
    node timeout before a new attempt (scaled down here to keep simulated
    episodes short while preserving the ratios).
    """

    replicas: int = 5
    voting_masters: int = 5
    base_delay_ms: Milliseconds = 500.0
    jitter_ms: Milliseconds = 500.0
    rank_step_ms: Milliseconds = 1_000.0
    vote_rtt_ms: Milliseconds = 150.0
    retry_timeout_ms: Milliseconds = 2_000.0
    # Probability that a replica mis-estimates its own rank (stale replication
    # offset information), which is what makes two replicas pick the same rank.
    rank_confusion: float = 0.3
    # Fraction of vote requests lost on the way to a voting master.
    vote_loss_rate: float = 0.0
    max_attempts: int = 20

    def __post_init__(self) -> None:
        require_positive(self.replicas, "replicas")
        require_positive(self.voting_masters, "voting_masters")
        require_positive(self.rank_step_ms, "rank_step_ms")
        require_positive(self.retry_timeout_ms, "retry_timeout_ms")
        require_fraction(self.rank_confusion, "rank_confusion")
        require_fraction(self.vote_loss_rate, "vote_loss_rate")

    @property
    def quorum(self) -> int:
        """Votes needed to win a failover election (majority of voting masters)."""
        return self.voting_masters // 2 + 1


@dataclass(frozen=True)
class FailoverMeasurement:
    """Outcome of one simulated master failure."""

    variant: str
    promoted_replica: int | None
    failover_ms: Milliseconds
    attempts: int
    epoch_collisions: int
    converged: bool
    extra: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class _Attempt:
    """One replica's failover attempt."""

    time_ms: Milliseconds
    replica: int
    epoch: int
    conf_clock: int


class _FailoverModelBase:
    """Shared vote-counting machinery for both variants."""

    variant = "base"

    def __init__(self, params: RedisClusterParameters) -> None:
        self.params = params

    # Subclasses provide the per-replica schedule of attempts.
    def _attempt_schedule(self, rng: random.Random) -> list[_Attempt]:
        raise NotImplementedError

    def _clock_gate(self, attempt: _Attempt, master_clock: int) -> bool:
        """Whether voting masters accept the attempt's configuration clock."""
        return True

    def _master_clock(self) -> int:
        return 0

    def run(self, seed: int) -> FailoverMeasurement:
        """Simulate one master failure and measure the failover.

        Vote requests that reach the voting masters within one vote round-trip
        of each other *and in the same epoch* compete: each master grants its
        single per-epoch vote to one of the concurrent contenders uniformly at
        random (its choice in reality depends on which request arrives first
        over its own network path).  Requests separated by more than a
        round-trip are served strictly in order.
        """
        params = self.params
        rng = SeedSequence(seed).stream("redis", self.variant)
        attempts = sorted(self._attempt_schedule(rng), key=lambda a: (a.time_ms, a.replica))
        votes_used_in_epoch: dict[int, dict[int, int]] = {}
        granted_votes: dict[tuple[int, int], int] = {}
        master_clock = self._master_clock()
        collisions = 0
        for index, attempt in enumerate(attempts):
            if not self._clock_gate(attempt, master_clock):
                continue
            contenders = [
                other
                for other in attempts
                if other.epoch == attempt.epoch
                and abs(other.time_ms - attempt.time_ms) <= params.vote_rtt_ms
                and self._clock_gate(other, master_clock)
            ]
            if len({other.replica for other in contenders}) > 1:
                collisions += 1
            epoch_votes = votes_used_in_epoch.setdefault(attempt.epoch, {})
            for master in range(params.voting_masters):
                if master in epoch_votes:
                    continue  # this master already voted in this epoch
                if params.vote_loss_rate and rng.random() < params.vote_loss_rate:
                    continue
                chosen = rng.choice(contenders) if len(contenders) > 1 else attempt
                epoch_votes[master] = chosen.replica
                key = (attempt.epoch, chosen.replica)
                granted_votes[key] = granted_votes.get(key, 0) + 1
            if granted_votes.get((attempt.epoch, attempt.replica), 0) >= params.quorum:
                return FailoverMeasurement(
                    variant=self.variant,
                    promoted_replica=attempt.replica,
                    failover_ms=attempt.time_ms + params.vote_rtt_ms,
                    attempts=index + 1,
                    epoch_collisions=collisions,
                    converged=True,
                )
        last_time = attempts[-1].time_ms if attempts else 0.0
        return FailoverMeasurement(
            variant=self.variant,
            promoted_replica=None,
            failover_ms=last_time + params.retry_timeout_ms,
            attempts=len(attempts),
            epoch_collisions=collisions,
            converged=False,
        )

    def run_many(self, runs: int, base_seed: int = 0) -> list[FailoverMeasurement]:
        """Repeat :meth:`run` with derived seeds."""
        seeds = SeedSequence(base_seed)
        return [
            self.run(seeds.stream("redis-run", self.variant, index).getrandbits(32))
            for index in range(runs)
        ]


class RedisFailoverModel(_FailoverModelBase):
    """The stock Redis Cluster failover (rank-based delays, shared epochs)."""

    variant = "redis"

    def _attempt_schedule(self, rng: random.Random) -> list[_Attempt]:
        params = self.params
        # True freshness order of the replicas (0 = most up to date).  With
        # probability ``rank_confusion`` a replica mis-ranks itself by one,
        # which is how two replicas end up with the same delay bucket.
        true_ranks = list(range(params.replicas))
        rng.shuffle(true_ranks)
        attempts: list[_Attempt] = []
        epoch_base = 1
        for replica, true_rank in enumerate(true_ranks):
            perceived_rank = true_rank
            if rng.random() < params.rank_confusion and true_rank > 0:
                perceived_rank = true_rank - 1
            for retry in range(params.max_attempts):
                delay = (
                    params.base_delay_ms
                    + rng.uniform(0.0, params.jitter_ms)
                    + perceived_rank * params.rank_step_ms
                    + retry * params.retry_timeout_ms
                )
                # Every attempt bumps the shared failover epoch by one, so
                # concurrent attempts frequently share an epoch.
                attempts.append(
                    _Attempt(
                        time_ms=delay,
                        replica=replica,
                        epoch=epoch_base + retry,
                        conf_clock=0,
                    )
                )
        return attempts


class EscapeFailoverModel(_FailoverModelBase):
    """Redis failover with ESCAPE-style groomed configurations."""

    variant = "escape-redis"

    #: Configuration clock the master stamped on the current assignments.
    GROOMED_CLOCK = 1

    def __init__(
        self, params: RedisClusterParameters, stale_assignment_rate: float = 0.0
    ) -> None:
        super().__init__(params)
        require_fraction(stale_assignment_rate, "stale_assignment_rate")
        self.stale_assignment_rate = stale_assignment_rate

    def _master_clock(self) -> int:
        return self.GROOMED_CLOCK

    def _clock_gate(self, attempt: _Attempt, master_clock: int) -> bool:
        # Voting masters refuse attempts whose configuration clock is stale
        # (Section IV-B's rule transplanted to configEpoch voting).
        return attempt.conf_clock >= master_clock

    def _attempt_schedule(self, rng: random.Random) -> list[_Attempt]:
        params = self.params
        # The master groomed the replicas before failing: the freshest replica
        # holds priority ``replicas``, the next ``replicas - 1``, and so on,
        # each paired with a strictly increasing delay (Eq. 1 transplanted).
        priorities = list(range(params.replicas, 0, -1))
        attempts: list[_Attempt] = []
        for replica, priority in enumerate(priorities):
            stale = rng.random() < self.stale_assignment_rate
            clock = self.GROOMED_CLOCK - 1 if stale else self.GROOMED_CLOCK
            delay_rank = params.replicas - priority  # freshest replica waits least
            epoch = 0
            for retry in range(params.max_attempts):
                delay = (
                    params.base_delay_ms
                    + delay_rank * params.rank_step_ms / max(1, params.replicas)
                    + retry * params.retry_timeout_ms
                )
                # Eq. 2 transplanted: the epoch grows by the priority, so
                # concurrent attempts always land in different epochs.
                epoch += priority
                attempts.append(
                    _Attempt(time_ms=delay, replica=replica, epoch=epoch, conf_clock=clock)
                )
        return attempts


def compare_failover_models(
    runs: int = 100,
    seed: int = 0,
    params: RedisClusterParameters | None = None,
) -> dict[str, dict[str, float]]:
    """Run both variants and summarise the comparison.

    Returns:
        ``{variant: {"mean_ms", "p95_ms", "collision_rate", "mean_attempts",
        "convergence"}}`` -- the quantities Section IV-C argues ESCAPE improves.
    """
    if runs <= 0:
        raise ConfigurationError("runs must be positive")
    params = params if params is not None else RedisClusterParameters()
    results: dict[str, dict[str, float]] = {}
    for model in (RedisFailoverModel(params), EscapeFailoverModel(params)):
        measurements = model.run_many(runs, base_seed=seed)
        converged = [m for m in measurements if m.converged]
        times = [m.failover_ms for m in converged]
        summary = summarize(times) if times else None
        results[model.variant] = {
            "mean_ms": summary.mean if summary else float("inf"),
            "p95_ms": summary.p95 if summary else float("inf"),
            "collision_rate": sum(1 for m in measurements if m.epoch_collisions > 0)
            / len(measurements),
            "mean_attempts": sum(m.attempts for m in measurements) / len(measurements),
            "convergence": len(converged) / len(measurements),
        }
    return results

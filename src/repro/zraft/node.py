"""The Z-Raft node: static priorities, no probing patrol.

Z-Raft is implemented as :class:`~repro.escape.node.EscapeNode` with every PPF
hook disabled: the configuration each server receives at join time (priority =
server id, timeout from Eq. 1) is permanent, no configuration is ever
redistributed, and -- because assignments never change -- there is no
configuration clock to gate votes on.

This is the comparison the paper draws in Section VI-D: with a low message
loss rate Z-Raft tracks ESCAPE closely, but as loss grows the statically
privileged servers fall behind in log replication and their high-priority
configurations are wasted on losing candidates.
"""

from __future__ import annotations

from repro.common.types import LogIndex, ServerId, Term
from repro.escape.node import EscapeNode
from repro.raft.messages import (
    AppendEntriesRequest,
    AppendEntriesResponse,
    RequestVoteRequest,
)


class ZRaftNode(EscapeNode):
    """A server running Raft with ZooKeeper-style static priorities."""

    protocol_name = "zraft"

    # ------------------------------------------------------------------ #
    # Keep SCA (term growth + prioritized timeouts), drop everything PPF
    # ------------------------------------------------------------------ #
    def _hook_on_become_leader(self) -> None:
        """Z-Raft leaders do not manage a configuration pool."""
        self.patrol = None

    def _hook_before_heartbeat_round(self) -> None:
        """No rearrangement round: priorities are static."""
        return None

    def _hook_decorate_append_request(
        self, request: AppendEntriesRequest, follower: ServerId
    ) -> AppendEntriesRequest:
        """Heartbeats carry no configuration payload."""
        return request

    def _hook_on_append_response(
        self, src: ServerId, response: AppendEntriesResponse
    ) -> None:
        """No responsiveness tracking."""
        return None

    def _hook_on_leader_heartbeat(self, request: AppendEntriesRequest) -> None:
        """Followers never change their configuration."""
        return None

    def _hook_may_grant_vote(self, request: RequestVoteRequest) -> bool:
        """Without rearrangement there is no configuration clock to compare."""
        return True

    def _hook_make_append_response(
        self, request: AppendEntriesRequest, success: bool, match_index: LogIndex
    ) -> AppendEntriesResponse:
        """Plain Raft replies: there is no configStatus to report."""
        return AppendEntriesResponse(
            term=self.current_term,
            follower_id=self.node_id,
            success=success,
            match_index=match_index,
        )

    def _hook_next_election_term(self) -> Term:
        """Term growth still follows Eq. 2, with the *static* priority."""
        return self.current_term + self.configuration.priority

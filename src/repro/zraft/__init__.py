"""Z-Raft: the ZooKeeper-style static-priority baseline (Section VI-D).

ZooKeeper's fast leader election prioritizes servers by their identifiers.
The paper applies the same idea to Raft -- priorities and the matching
election timeouts are fixed at join time and never rearranged -- and calls the
result *Z-Raft*.  It is exactly ESCAPE's SCA component without the PPF, so
under message loss the statically privileged servers drift out of date and the
fixed priorities stop helping (Figure 11).
"""

from repro.zraft.node import ZRaftNode

__all__ = ["ZRaftNode"]

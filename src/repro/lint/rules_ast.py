"""The AST determinism rules (``D1``-``D4``).

Each rule is a function ``(path, rel_path, tree, config) -> list[Finding]``
driven by its own :class:`ast.NodeVisitor`.  The rules are deliberately
heuristic -- a linter cannot type-infer arbitrary Python -- but every
heuristic errs toward the failure modes this repo has actually shipped:
PR 1's scheduler relied on insertion order, PR 2's ``run_many`` derived
sweep seeds from a locally-constructed ``random.Random(seed)`` and drifted
from the paired design, and the asyncio transport defaulted to an
*unseeded* RNG.
"""

from __future__ import annotations

import ast

from repro.lint.model import Finding, LintConfig

__all__ = [
    "check_rng_construction",
    "check_set_iteration",
    "check_wall_clock",
    "check_wall_clock_waits",
]


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _tail(dotted: str, count: int = 2) -> str:
    """The last *count* components of a dotted name."""
    return ".".join(dotted.split(".")[-count:])


# --------------------------------------------------------------------------- #
# D1 -- wall-clock / entropy sources
# --------------------------------------------------------------------------- #
#: Forbidden calls, matched on the last two dotted components (so both
#: ``datetime.now(...)`` and ``datetime.datetime.now(...)`` hit).
_D1_FORBIDDEN_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
        "secrets.choice",
    }
)

#: ``from <module> import <name>`` pairs that smuggle the same sources in
#: under a bare name the call check cannot see.
_D1_FORBIDDEN_IMPORTS = {
    "time": frozenset(
        {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
         "perf_counter_ns", "process_time", "localtime", "gmtime", "ctime"}
    ),
    "os": frozenset({"urandom", "getrandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
    "secrets": frozenset(
        {"token_bytes", "token_hex", "token_urlsafe", "randbits",
         "randbelow", "choice"}
    ),
    "random": frozenset(
        {"random", "randint", "uniform", "choice", "choices", "shuffle",
         "sample", "seed", "getrandbits", "gauss", "expovariate",
         "randrange", "betavariate", "lognormvariate", "normalvariate"}
    ),
}


class _D1Visitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            tail = _tail(dotted)
            if tail in _D1_FORBIDDEN_CALLS:
                self.findings.append(
                    Finding(
                        self.path,
                        node.lineno,
                        "D1",
                        f"wall-clock/entropy source {dotted}() -- simulated "
                        "time comes from sim/clock.py and randomness from "
                        "common.rng seed derivation",
                    )
                )
            else:
                first, _, rest = dotted.partition(".")
                if first == "random" and rest and rest != "Random":
                    self.findings.append(
                        Finding(
                            self.path,
                            node.lineno,
                            "D1",
                            f"module-level {dotted}() draws from the global "
                            "unseeded RNG; build a stream via common.rng "
                            "instead",
                        )
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        forbidden = _D1_FORBIDDEN_IMPORTS.get(node.module or "", frozenset())
        for alias in node.names:
            if alias.name in forbidden:
                self.findings.append(
                    Finding(
                        self.path,
                        node.lineno,
                        "D1",
                        f"'from {node.module} import {alias.name}' smuggles a "
                        "wall-clock/entropy source in under a bare name",
                    )
                )
        self.generic_visit(node)


def check_wall_clock(
    path: str, rel_path: str | None, tree: ast.AST, config: LintConfig
) -> list[Finding]:
    """D1: no wall-clock or entropy sources outside the allowlist."""
    if config.is_allowed(rel_path, config.wall_clock_allowed):
        return []
    visitor = _D1Visitor(path)
    visitor.visit(tree)
    return visitor.findings


# --------------------------------------------------------------------------- #
# D2 -- RNG construction outside the derivation helpers
# --------------------------------------------------------------------------- #
class _D2Visitor(ast.NodeVisitor):
    def __init__(self, path: str, config: LintConfig) -> None:
        self.path = path
        self.config = config
        self.findings: list[Finding] = []

    def _is_derived(self, seed_expr: ast.AST) -> bool:
        """Whether the seed expression calls a recognised derivation helper."""
        for node in ast.walk(seed_expr):
            if isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is not None:
                    leaf = dotted.split(".")[-1]
                    if leaf in self.config.derivation_helpers:
                        return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None and dotted.split(".")[-1] == "Random":
            head = dotted.split(".")[0]
            if head in ("random", "Random"):
                if not node.args and not node.keywords:
                    self.findings.append(
                        Finding(
                            self.path,
                            node.lineno,
                            "D2",
                            "unseeded random.Random() -- every RNG must be "
                            "seeded through a common.rng derivation helper",
                        )
                    )
                elif not node.args or not self._is_derived(node.args[0]):
                    self.findings.append(
                        Finding(
                            self.path,
                            node.lineno,
                            "D2",
                            "random.Random(...) seeded outside the common.rng "
                            "derivation helpers (derive_seed/derive_run_seed "
                            "or a SeedSequence stream); ad-hoc seeds drift "
                            "from the paired sweep design",
                        )
                    )
        self.generic_visit(node)


def check_rng_construction(
    path: str, rel_path: str | None, tree: ast.AST, config: LintConfig
) -> list[Finding]:
    """D2: ``random.Random`` only via the ``common.rng`` derivation helpers."""
    if config.is_allowed(rel_path, config.rng_construction_allowed):
        return []
    visitor = _D2Visitor(path, config)
    visitor.visit(tree)
    return visitor.findings


# --------------------------------------------------------------------------- #
# D3 -- ordered consumption of unordered sets on the simulation path
# --------------------------------------------------------------------------- #
def _set_producing(node: ast.AST) -> bool:
    """Whether an expression evaluates to a ``set``/``frozenset``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = _dotted_name(node.func)
        return dotted in ("set", "frozenset")
    return False


def _set_annotation(node: ast.AST) -> bool:
    """Whether a type annotation names a set type (``set[ServerId]`` etc.)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    dotted = _dotted_name(node)
    if dotted is None:
        return False
    return dotted.split(".")[-1] in ("set", "frozenset", "Set", "FrozenSet")


def _target_key(node: ast.AST) -> str | None:
    """A stable textual key for a tracked name: ``members`` / ``self._ids``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self":
            return f"self.{node.attr}"
    return None


class _SetNameCollector(ast.NodeVisitor):
    """First pass: names assigned (or annotated as) set values in this file."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if _set_producing(node.value):
            for target in node.targets:
                key = _target_key(target)
                if key is not None:
                    self.set_names.add(key)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _set_annotation(node.annotation) or (
            node.value is not None and _set_producing(node.value)
        ):
            key = _target_key(node.target)
            if key is not None:
                self.set_names.add(key)
        self.generic_visit(node)


#: Builtins whose call forces an *ordered* traversal of their argument.
_ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})


class _D3Visitor(ast.NodeVisitor):
    def __init__(self, path: str, set_names: set[str]) -> None:
        self.path = path
        self.set_names = set_names
        self.findings: list[Finding] = []

    def _is_set_expr(self, node: ast.AST) -> bool:
        if _set_producing(node):
            return True
        key = _target_key(node)
        return key is not None and key in self.set_names

    def _flag(self, node: ast.AST, how: str) -> None:
        self.findings.append(
            Finding(
                self.path,
                node.lineno,
                "D3",
                f"{how} iterates a set in undefined order on the simulation "
                "path; wrap it in sorted(...) (unordered iteration feeding "
                "scheduling or RNG draws diverges between workers=1 and N)",
            )
        )

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag(node.iter, "for-loop")
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        for generator in node.generators:
            if self._is_set_expr(generator.iter):
                self._flag(generator.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension
    visit_DictComp = _check_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # A set built *from* a set stays unordered: no ordered traversal.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if (
            dotted in _ORDERED_CONSUMERS
            and len(node.args) == 1
            and self._is_set_expr(node.args[0])
        ):
            self._flag(node, f"{dotted}(...)")
        self.generic_visit(node)


def check_set_iteration(
    path: str, rel_path: str | None, tree: ast.AST, config: LintConfig
) -> list[Finding]:
    """D3: no bare iteration over set values in simulation-path modules.

    Tracks names assigned (or annotated as) ``set``/``frozenset`` values in
    the same file -- including ``self.x`` attributes -- and flags ordered
    traversals of them: ``for`` loops, comprehension generators, and
    ``list``/``tuple``/``enumerate``/``iter``/``reversed`` calls.  Membership
    tests, ``len``, set algebra, ``sorted(...)`` and conversions back into
    sets are all order-insensitive and stay legal.
    """
    if not config.in_set_iteration_scope(rel_path):
        return []
    collector = _SetNameCollector()
    collector.visit(tree)
    visitor = _D3Visitor(path, collector.set_names)
    visitor.visit(tree)
    return visitor.findings


# --------------------------------------------------------------------------- #
# D4 -- wall-clock waits in simulated code
# --------------------------------------------------------------------------- #
_D4_FORBIDDEN_CALLS = frozenset(
    {
        "time.sleep",
        "asyncio.sleep",
        "asyncio.wait",
        "asyncio.wait_for",
        "asyncio.as_completed",
    }
)


class _D4Visitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None and _tail(dotted) in _D4_FORBIDDEN_CALLS:
            self.findings.append(
                Finding(
                    self.path,
                    node.lineno,
                    "D4",
                    f"wall-clock wait {dotted}() in a simulation-path module; "
                    "simulated time advances only through sim/clock.py and "
                    "the scheduler",
                )
            )
        self.generic_visit(node)


def check_wall_clock_waits(
    path: str, rel_path: str | None, tree: ast.AST, config: LintConfig
) -> list[Finding]:
    """D4: no ``time.sleep``/wall-clock asyncio waits outside the runtime."""
    if config.is_allowed(rel_path, config.wall_clock_allowed):
        return []
    visitor = _D4Visitor(path)
    visitor.visit(tree)
    return visitor.findings

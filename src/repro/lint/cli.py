"""The lint CLI: ``python -m repro.lint [paths] [--json] [--rule ID]``.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage error.  ``--output``
writes the JSON report to a file regardless of the exit code, so CI can
upload it as an artifact from a failing gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.engine import ALL_RULE_IDS, RULES, lint_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static analyzer enforcing the repo's reproducibility contract "
            "(determinism hazards D1-D4, spec purity S1-S2)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src, else the cwd)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON on stdout instead of text",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        choices=ALL_RULE_IDS,
        help="restrict to one rule id (repeatable); default: every rule",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the JSON report to FILE (written even on findings)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _default_paths() -> list[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        width = max(len(rule.id) for rule in RULES)
        for rule in RULES:
            print(f"{rule.id:<{width}}  {rule.name:<22} {rule.description}")
        return 0

    paths = args.paths or _default_paths()
    try:
        report = lint_paths(paths, rule_ids=args.rule)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.output:
        Path(args.output).write_text(
            json.dumps(report.to_json(), indent=2) + "\n", encoding="utf-8"
        )
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (
            f"{len(report.findings)} finding(s)"
            if report.findings
            else "clean"
        )
        print(
            f"repro.lint: {summary} in {report.checked_files} file(s) "
            f"(rules: {', '.join(report.rule_ids)})"
        )
    return 1 if report.findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

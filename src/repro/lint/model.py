"""Core lint vocabulary: findings, rule descriptors, config, and pragmas.

A :class:`Finding` is one localised violation (file, line, rule id, message);
a :class:`Rule` is a frozen descriptor binding a stable id (``D1``, ``S2``,
...) to its checker; :class:`LintConfig` carries the explicit allowlists that
scope each rule to the parts of the tree where its hazard is real (the live
asyncio runtime is *supposed* to read the wall clock).  Suppression pragmas
(``repro: allow[rule-id]`` comments) are parsed here so the engine and the
tests share one definition of the syntax.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Mapping

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "Rule",
    "package_relative_path",
    "parse_pragmas",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation anchored to a source line."""

    path: str
    line: int
    rule_id: str
    message: str

    def to_json(self) -> dict[str, object]:
        """The finding as the JSON object the ``--json`` report emits."""
        return {
            "file": self.path,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }

    def render(self) -> str:
        """The finding as the one-line text report entry."""
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"


@dataclass(frozen=True)
class Rule:
    """Descriptor for one lint rule.

    Attributes:
        id: stable short id used in reports and suppression pragmas.
        name: short kebab-case label.
        description: one-line summary shown by ``--list-rules``.
        kind: ``"file"`` rules receive each parsed file; ``"registry"`` rules
            run once per invocation against the imported spec registries;
            ``"meta"`` rules (the pragma rule) are applied by the engine
            itself and cannot be invoked directly.
        check: the checker callable (signature depends on *kind*); excluded
            from equality so rules compare by identity metadata.
    """

    id: str
    name: str
    description: str
    kind: str = "file"
    check: Callable[..., list[Finding]] | None = field(
        default=None, compare=False, repr=False
    )


@dataclass(frozen=True)
class LintConfig:
    """Scoping allowlists for the rule set.

    Paths are matched against the *package-relative* path of each linted
    file (``repro/runtime/transport.py``); files that do not live under a
    ``repro`` package root (e.g. test fixtures in a temp directory) are never
    allowlisted and are in scope for every rule, so the strictest reading
    applies to unknown code.
    """

    #: D1/D4 -- module prefixes allowed to read the wall clock and wait on
    #: it: the asyncio runtime layer is wall-clock by design, the Redis
    #: adapter models a live deployment, and the observability layer's
    #: progress/profiling modules report wall-clock rates and phase timings
    #: by definition.  Deliberately *files*, not the whole ``repro/obs/``
    #: package: telemetry and trace modules measure simulated facts and stay
    #: under the full determinism rules.
    wall_clock_allowed: tuple[str, ...] = (
        "repro/runtime/",
        "repro/adapters/",
        "repro/obs/profiling.py",
        "repro/obs/progress.py",
    )
    #: D2 -- modules allowed to construct ``random.Random`` directly (the
    #: derivation helpers themselves live here).
    rng_construction_allowed: tuple[str, ...] = ("repro/common/rng.py",)
    #: D2 -- call names accepted as seed-derivation helpers.
    derivation_helpers: tuple[str, ...] = ("derive_seed", "derive_run_seed")
    #: D3 -- module prefixes on the simulation path, where unordered ``set``
    #: iteration feeding scheduling or RNG draws is the classic
    #: workers=1-vs-N divergence.  Files outside any ``repro`` package are
    #: always in scope.
    set_iteration_scope: tuple[str, ...] = (
        "repro/sim/",
        "repro/net/",
        "repro/raft/",
        "repro/escape/",
        "repro/chaos/",
        "repro/cluster/",
        "repro/zraft/",
    )
    #: S2 -- modules of :mod:`repro.experiments` that are harness
    #: infrastructure rather than experiment definitions.
    experiment_infra_modules: frozenset[str] = frozenset(
        {
            "__init__",
            "__main__",
            "base",
            "checkpoint",
            "export",
            "registry",
            "runner",
            "spec",
        }
    )

    def is_allowed(self, rel_path: str | None, prefixes: tuple[str, ...]) -> bool:
        """Whether a package-relative path falls under an allowlist."""
        if rel_path is None:
            return False
        return any(rel_path.startswith(prefix) for prefix in prefixes)

    def in_set_iteration_scope(self, rel_path: str | None) -> bool:
        """Whether D3 applies to this file (sim path, or outside the package)."""
        if rel_path is None:
            return True
        return any(
            rel_path.startswith(prefix) for prefix in self.set_iteration_scope
        )


DEFAULT_CONFIG = LintConfig()


def package_relative_path(path: str) -> str | None:
    """The path suffix from the last ``repro/`` component, or ``None``.

    ``/root/repo/src/repro/net/faults.py`` -> ``repro/net/faults.py``; a
    fixture file in a temp directory has no ``repro`` component and returns
    ``None`` (never allowlisted, always in scope).
    """
    parts = path.replace("\\", "/").split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return None


#: ``# repro: allow[D1]`` or ``# repro: allow[D1,S1]`` -- same-line
#: suppression; trailing prose after the bracket is the justification.
_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


def parse_pragmas(source: str) -> Mapping[int, frozenset[str]]:
    """Per-line suppression pragmas (1-indexed line -> allowed rule ids).

    Each pragma silences the named rule(s) on its own line only.  Ids are
    returned verbatim; the engine reports unknown ones as ``P1`` findings.
    """
    pragmas: dict[int, frozenset[str]] = {}
    for line_no, line in enumerate(source.splitlines(), start=1):
        ids: set[str] = set()
        for match in _PRAGMA_RE.finditer(line):
            ids.update(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
        if ids:
            pragmas[line_no] = frozenset(ids)
    return pragmas

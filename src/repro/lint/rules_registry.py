"""The registry rules (``S1`` spec purity, ``S2`` experiment completeness).

Unlike the AST rules these run once per lint invocation: they import the six
spec registries through their ``registered_specs()`` introspection hooks and
inspect the *registered values themselves*.  That is deliberate -- the
reproducibility contract is about what actually reaches the parallel sweep
engine's process pool, and the registries are the single dispatch layer, so
checking them covers every spec a plugin can ship without parsing its source.

Findings anchor to the spec class's (or offending callable's) definition
line, so the same ``repro: allow[rule-id]`` pragma mechanism applies.
"""

from __future__ import annotations

import dataclasses
import inspect
import pickle
import pkgutil
from pathlib import Path

from repro.lint.model import Finding, LintConfig

__all__ = [
    "check_experiment_registry",
    "check_registered_specs",
    "iter_spec_problems",
    "load_registries",
]

#: The six spec registries, each enumerated through its
#: ``registered_specs()`` hook.  Chaos additionally checks the plan each
#: catalog entry builds (a short horizon keeps it cheap), since the *plan*
#: is what actually crosses the process boundary.
def load_registries() -> dict[str, tuple[tuple[str, object], ...]]:
    """Import the registries and enumerate ``(name, spec)`` pairs per source."""
    from repro.chaos import plans as chaos_plans
    from repro.cluster import catalog as net_catalog
    from repro.experiments import registry as experiment_registry
    from repro.protocols import registry as protocol_registry
    from repro.sim import engines as engine_registry
    from repro.workload import specs as workload_registry

    chaos_specs: list[tuple[str, object]] = []
    for name, entry in chaos_plans.registered_specs():
        chaos_specs.append((name, entry))
        plan = entry.build(horizon_ms=30_000.0, seed=0)
        chaos_specs.append((f"{name}:plan", plan))
        chaos_specs.extend(
            (f"{name}:event[{index}]", event)
            for index, event in enumerate(plan.events)
        )
    return {
        "protocols": tuple(protocol_registry.registered_specs()),
        "experiments": tuple(experiment_registry.registered_specs()),
        "net-conditions": tuple(net_catalog.registered_specs()),
        "chaos-plans": tuple(chaos_specs),
        "engines": tuple(engine_registry.registered_specs()),
        "workloads": tuple(workload_registry.registered_specs()),
    }


def _anchor(obj: object) -> tuple[str, int]:
    """Best-effort (file, line) for a finding about *obj*."""
    if inspect.isfunction(obj):
        code = obj.__code__
        return code.co_filename, code.co_firstlineno
    cls = obj if inspect.isclass(obj) else type(obj)
    try:
        path = inspect.getsourcefile(cls) or "<unknown>"
        line = inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):
        path, line = "<unknown>", 1
    return path, line


def _is_local_callable(value: object) -> bool:
    """Whether a callable field cannot pickle by reference (lambda/closure)."""
    if inspect.isfunction(value):
        return value.__name__ == "<lambda>" or "<locals>" in value.__qualname__
    if inspect.ismethod(value):
        return True
    return False


def iter_spec_problems(registry: str, name: str, spec: object) -> list[Finding]:
    """Every S1 violation of one registered spec value.

    A pure spec is a frozen dataclass whose fields hold hashable plain values
    or nested specs, whose callables are module-level (picklable by
    reference), and whose defaults are immutable -- exactly the properties
    that let a spec cross the multiprocessing boundary bit-for-bit.
    """
    label = f"{registry}:{name}"
    path, line = _anchor(spec)
    findings: list[Finding] = []

    def problem(message: str, at: tuple[str, int] | None = None) -> None:
        where = at or (path, line)
        findings.append(Finding(where[0], where[1], "S1", message))

    if not dataclasses.is_dataclass(spec) or inspect.isclass(spec):
        problem(f"registered spec {label} is not a dataclass instance")
        return findings
    if not type(spec).__dataclass_params__.frozen:
        problem(f"registered spec {label} is not frozen (mutable after registration)")

    for field in dataclasses.fields(type(spec)):
        if field.default_factory is not dataclasses.MISSING and field.default_factory in (
            list,
            dict,
            set,
        ):
            problem(
                f"{label}.{field.name} defaults to a mutable "
                f"{field.default_factory.__name__}; use an immutable default"
            )
        value = getattr(spec, field.name, None)
        if callable(value) and _is_local_callable(value):
            problem(
                f"{label}.{field.name} holds a lambda/closure; spec callables "
                "must be module-level so they pickle by reference",
                at=_anchor(value),
            )
            continue
        try:
            hash(value)
        except TypeError:
            problem(
                f"{label}.{field.name} holds an unhashable "
                f"{type(value).__name__}; spec fields must be hashable plain "
                "values or nested specs"
            )

    try:
        hash(spec)
    except TypeError:
        problem(f"registered spec {label} is not hashable")
    try:
        clone = pickle.loads(pickle.dumps(spec))
    except Exception as exc:  # noqa: BLE001 - report any pickling failure
        problem(f"registered spec {label} does not pickle: {exc!r}")
    else:
        if clone != spec:
            problem(f"registered spec {label} changes value across pickling")
    return findings


def check_registered_specs(config: LintConfig) -> list[Finding]:
    """S1 over every spec in all six registries."""
    findings: list[Finding] = []
    for registry, pairs in load_registries().items():
        for name, spec in pairs:
            findings.extend(iter_spec_problems(registry, name, spec))
    return findings


# --------------------------------------------------------------------------- #
# S2 -- experiment registry completeness
# --------------------------------------------------------------------------- #
def _accepted_keywords(callable_obj) -> tuple[set[str], bool]:
    """(explicit keyword names, accepts **kwargs) for a run callable."""
    signature = inspect.signature(callable_obj)
    names = {
        parameter.name
        for parameter in signature.parameters.values()
        if parameter.kind
        in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    }
    var_kw = any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in signature.parameters.values()
    )
    return names, var_kw


def check_experiment_registry(
    config: LintConfig, specs_by_name=None
) -> list[Finding]:
    """S2: each experiments module registers exactly one spec, flags match.

    Checks three things against the live registry (or *specs_by_name*, for
    tests): every non-infrastructure module under :mod:`repro.experiments`
    registers exactly one :class:`ExperimentSpec`; every declared capability
    (``scenario``/``protocols``/``plan``, plus ``workers``) is a keyword its
    run callable actually accepts; and every declared default parameter is
    accepted as well, so a spec cannot advertise knobs its run would reject.
    """
    findings: list[Finding] = []
    if specs_by_name is None:
        import repro.experiments  # noqa: F401 - importing registers the specs
        from repro.experiments import registry as experiment_registry

        specs_by_name = dict(experiment_registry.registered_specs())

    by_module: dict[str, list[str]] = {}
    for name, spec in specs_by_name.items():
        module = getattr(spec.run, "__module__", "")
        by_module.setdefault(module, []).append(name)

        run_path, run_line = _anchor(spec.run)
        accepted, var_kw = _accepted_keywords(spec.run)

        required = {"runs", "seed"}
        required.update(spec.params)
        required.update(spec.capabilities)
        if spec.supports_workers:
            required.update({"workers", "progress"})
        if not var_kw:
            for keyword in sorted(required - accepted):
                findings.append(
                    Finding(
                        run_path,
                        run_line,
                        "S2",
                        f"experiment {name!r} declares {keyword!r} (capability "
                        "flag or default parameter) but its run callable "
                        "accepts no such keyword",
                    )
                )
        from repro.experiments.spec import CAPABILITIES

        for option in CAPABILITIES:
            if option in accepted and not getattr(spec, f"supports_{option}"):
                findings.append(
                    Finding(
                        run_path,
                        run_line,
                        "S2",
                        f"experiment {name!r}: run callable accepts {option!r} "
                        f"but the spec does not declare supports_{option} -- "
                        "the capability would be silently unreachable",
                    )
                )

    for module, names in sorted(by_module.items()):
        if len(names) > 1 and module.startswith("repro.experiments."):
            spec = specs_by_name[names[0]]
            run_path, run_line = _anchor(spec.run)
            findings.append(
                Finding(
                    run_path,
                    run_line,
                    "S2",
                    f"module {module} registers {len(names)} experiment specs "
                    f"({', '.join(sorted(names))}); each experiments module "
                    "must register exactly one",
                )
            )

    if specs_by_name and all(
        getattr(spec.run, "__module__", "").startswith("repro.experiments.")
        for spec in specs_by_name.values()
    ):
        import repro.experiments as experiments_package

        package_dir = Path(next(iter(experiments_package.__path__)))
        registered_modules = {
            getattr(spec.run, "__module__", "").rsplit(".", 1)[-1]
            for spec in specs_by_name.values()
        }
        for module_info in pkgutil.iter_modules(experiments_package.__path__):
            short = module_info.name
            if short in config.experiment_infra_modules:
                continue
            if short not in registered_modules:
                findings.append(
                    Finding(
                        str(package_dir / f"{short}.py"),
                        1,
                        "S2",
                        f"experiments module {short!r} registers no "
                        "ExperimentSpec; every non-infrastructure module must "
                        "register exactly one",
                    )
                )
    return findings

"""The lint driver: rule table, per-file AST pass, suppression, reports.

``lint_file`` parses one source file once and hands the tree to every
selected file rule; ``lint_paths`` walks directories, adds the
once-per-invocation registry rules, applies ``repro: allow[rule-id]``
suppressions uniformly (including to registry findings, which anchor to real
source lines), and reports unknown pragma ids as ``P1`` findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.lint.model import (
    DEFAULT_CONFIG,
    Finding,
    LintConfig,
    Rule,
    package_relative_path,
    parse_pragmas,
)
from repro.lint.rules_ast import (
    check_rng_construction,
    check_set_iteration,
    check_wall_clock,
    check_wall_clock_waits,
)
from repro.lint.rules_registry import (
    check_experiment_registry,
    check_registered_specs,
)

__all__ = [
    "ALL_RULE_IDS",
    "LintReport",
    "RULES",
    "get_rule",
    "lint_file",
    "lint_paths",
]

#: Every rule, in report order.  ``E1``/``P1`` are meta rules applied by the
#: engine itself (parse failures and pragma hygiene).
RULES: tuple[Rule, ...] = (
    Rule(
        id="D1",
        name="wall-clock",
        description=(
            "no wall-clock or entropy sources (time.time, datetime.now, "
            "module-level random.*, os.urandom, uuid.uuid4) outside the live "
            "runtime allowlist"
        ),
        kind="file",
        check=check_wall_clock,
    ),
    Rule(
        id="D2",
        name="rng-construction",
        description=(
            "no unseeded random.Random(); RNGs are built from common.rng "
            "derivation helpers (derive_seed / derive_run_seed / streams)"
        ),
        kind="file",
        check=check_rng_construction,
    ),
    Rule(
        id="D3",
        name="set-iteration",
        description=(
            "no bare iteration over set/frozenset values in simulation-path "
            "modules (sim/net/raft/escape/chaos/cluster/zraft); use sorted()"
        ),
        kind="file",
        check=check_set_iteration,
    ),
    Rule(
        id="D4",
        name="sim-sleep",
        description=(
            "no time.sleep or wall-clock asyncio waits in simulation-path "
            "modules; simulated time comes from sim/clock.py only"
        ),
        kind="file",
        check=check_wall_clock_waits,
    ),
    Rule(
        id="S1",
        name="spec-purity",
        description=(
            "every value registered with the protocols/experiments/"
            "net-conditions/chaos registries is a frozen, hashable, picklable "
            "dataclass with module-level callables and immutable defaults"
        ),
        kind="registry",
        check=check_registered_specs,
    ),
    Rule(
        id="S2",
        name="registry-completeness",
        description=(
            "each experiments module registers exactly one ExperimentSpec "
            "whose capability flags match the keywords its run callable "
            "accepts"
        ),
        kind="registry",
        check=check_experiment_registry,
    ),
    Rule(
        id="E1",
        name="parse-error",
        description="the file does not parse as Python",
        kind="meta",
    ),
    Rule(
        id="P1",
        name="pragma-hygiene",
        description=(
            "a suppression pragma names an unknown rule id (a typo cannot "
            "silently disable a rule)"
        ),
        kind="meta",
    ),
)

ALL_RULE_IDS: tuple[str, ...] = tuple(rule.id for rule in RULES)
_RULES_BY_ID: Mapping[str, Rule] = {rule.id: rule for rule in RULES}


def get_rule(rule_id: str) -> Rule:
    """The rule registered under *rule_id*.

    Raises:
        KeyError: listing every rule id when *rule_id* is unknown.
    """
    try:
        return _RULES_BY_ID[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {rule_id!r}; known: {', '.join(ALL_RULE_IDS)}"
        ) from None


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint invocation."""

    findings: tuple[Finding, ...]
    checked_files: int
    rule_ids: tuple[str, ...]

    @property
    def clean(self) -> bool:
        """Whether the linted tree has no findings."""
        return not self.findings

    def to_json(self) -> dict[str, object]:
        """The report as the JSON object the ``--json`` flag emits."""
        return {
            "clean": self.clean,
            "checked_files": self.checked_files,
            "rules": list(self.rule_ids),
            "findings": [finding.to_json() for finding in self.findings],
        }


def _apply_pragmas(
    findings: Iterable[Finding],
    pragmas: Mapping[int, frozenset[str]],
    path: str,
    check_pragmas: bool = True,
) -> list[Finding]:
    """Suppress findings the file's pragmas allow; flag unknown pragma ids."""
    kept = [
        finding
        for finding in findings
        if finding.rule_id not in pragmas.get(finding.line, frozenset())
    ]
    if not check_pragmas:
        return kept
    for line, ids in sorted(pragmas.items()):
        for rule_id in sorted(ids - set(ALL_RULE_IDS)):
            if "P1" not in ids:
                kept.append(
                    Finding(
                        path,
                        line,
                        "P1",
                        f"suppression pragma names unknown rule id {rule_id!r} "
                        f"(known: {', '.join(ALL_RULE_IDS)})",
                    )
                )
    return kept


def lint_file(
    path: str | Path,
    rule_ids: Sequence[str] | None = None,
    config: LintConfig = DEFAULT_CONFIG,
) -> list[Finding]:
    """Run the (selected) file rules over one source file.

    Registry rules are invocation-wide and are not run here; use
    :func:`lint_paths` for the full gate.
    """
    path = Path(path)
    selected = _select(rule_ids)
    source = path.read_text(encoding="utf-8")
    text_path = str(path)
    try:
        tree = ast.parse(source, filename=text_path)
    except SyntaxError as exc:
        return [
            Finding(
                text_path,
                exc.lineno or 1,
                "E1",
                f"file does not parse: {exc.msg}",
            )
        ]
    rel = package_relative_path(text_path)
    findings: list[Finding] = []
    for rule in selected:
        if rule.kind == "file" and rule.check is not None:
            findings.extend(rule.check(text_path, rel, tree, config))
    return sorted(
        _apply_pragmas(
            findings,
            parse_pragmas(source),
            text_path,
            check_pragmas=any(rule.id == "P1" for rule in selected),
        )
    )


def _select(rule_ids: Sequence[str] | None) -> tuple[Rule, ...]:
    if rule_ids is None:
        return RULES
    return tuple(get_rule(rule_id) for rule_id in rule_ids)


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under *paths* (files pass through), sorted."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise FileNotFoundError(f"{path} is neither a directory nor a .py file")
    return sorted(files)


def _registry_findings(
    selected: tuple[Rule, ...],
    roots: Sequence[Path],
    config: LintConfig,
) -> list[Finding]:
    """Run the registry rules; keep findings anchored inside the linted roots.

    Registry findings anchor to spec-definition lines wherever the spec's
    module lives; dropping anchors outside the linted tree keeps ``repro.lint
    some/fixture/dir`` focused on the caller's files while the default
    ``repro.lint src`` invocation sees everything.  Suppression pragmas apply
    through the anchored file like any other finding.
    """
    resolved_roots = [Path(root).resolve() for root in roots]
    findings: list[Finding] = []
    for rule in selected:
        if rule.kind == "registry" and rule.check is not None:
            findings.extend(rule.check(config))
    kept: list[Finding] = []
    pragma_cache: dict[str, Mapping[int, frozenset[str]]] = {}
    for finding in findings:
        anchor = Path(finding.path)
        try:
            resolved = anchor.resolve()
        except OSError:  # pragma: no cover - unresolvable anchor
            continue
        if not any(resolved.is_relative_to(root) for root in resolved_roots):
            continue
        if finding.path not in pragma_cache:
            try:
                pragma_cache[finding.path] = parse_pragmas(
                    anchor.read_text(encoding="utf-8")
                )
            except OSError:
                pragma_cache[finding.path] = {}
        pragmas = pragma_cache[finding.path]
        if finding.rule_id not in pragmas.get(finding.line, frozenset()):
            kept.append(finding)
    return kept


def lint_paths(
    paths: Sequence[str | Path],
    rule_ids: Sequence[str] | None = None,
    config: LintConfig = DEFAULT_CONFIG,
) -> LintReport:
    """Lint every Python file under *paths* with the selected rules."""
    selected = _select(rule_ids)
    files = iter_python_files(paths)
    findings: list[Finding] = []
    file_rule_ids = [rule.id for rule in selected if rule.kind != "registry"]
    for path in files:
        findings.extend(lint_file(path, file_rule_ids, config))
    findings.extend(_registry_findings(selected, [Path(p) for p in paths], config))
    return LintReport(
        findings=tuple(sorted(findings)),
        checked_files=len(files),
        rule_ids=tuple(rule.id for rule in selected),
    )

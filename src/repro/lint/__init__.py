"""``repro.lint``: the static analyzer enforcing the reproducibility contract.

Every claim this reproduction makes rests on one invariant: a sweep is
bit-for-bit identical at any ``--workers`` count, because all randomness flows
from :mod:`repro.common.rng` seed derivation and every registered spec is a
frozen, picklable value.  This package turns that convention into a mechanical
gate:

* **AST rules** (``D1``-``D4``) scan each source file for determinism hazards
  -- wall-clock and entropy sources, RNGs built outside the derivation
  helpers, ordered consumption of unordered ``set`` values on the simulation
  path, and wall-clock waits in simulated code.
* **Registry rules** (``S1``-``S2``) import the four spec registries
  (protocols, experiments, network conditions, chaos plans) through their
  ``registered_specs()`` introspection hooks and verify every registered
  value is a frozen, hashable, picklable dataclass whose declared
  capabilities match its callables.

Findings can be suppressed line-by-line with a justification pragma::

    started = time.perf_counter()  # repro: allow[D1] -- report metadata only

Unknown rule ids inside a pragma are themselves findings (``P1``), so a typo
cannot silently disable a rule.

Run it as a CLI (``python -m repro.lint src --json``) or programmatically::

    from repro.lint import lint_paths

    report = lint_paths(["src"])
    assert not report.findings
"""

from repro.lint.engine import (
    ALL_RULE_IDS,
    RULES,
    LintReport,
    get_rule,
    lint_file,
    lint_paths,
)
from repro.lint.model import DEFAULT_CONFIG, Finding, LintConfig, Rule

__all__ = [
    "ALL_RULE_IDS",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintReport",
    "RULES",
    "Rule",
    "get_rule",
    "lint_file",
    "lint_paths",
]

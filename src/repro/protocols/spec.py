"""The :class:`ProtocolSpec` descriptor: how one named protocol builds nodes.

A spec bundles everything the rest of the codebase needs to know about a
protocol: the node class to instantiate, how its election timeouts are chosen
(a randomized/fixed *policy* for the Raft family, a scripted *override* on top
of configuration-driven timeouts for the ESCAPE family), an optional adapter
massaging the shared :class:`~repro.common.config.ProtocolConfig`, and the
presentation metadata (display title, paper section) the reports use.

Specs are frozen dataclasses whose callable fields are module-level functions
or classes, so they pickle by reference and survive the parallel sweep
engine's process boundary unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.common.config import ClusterConfig, ProtocolConfig
from repro.common.errors import ConfigurationError
from repro.common.types import ServerId
from repro.raft.environment import Environment
from repro.raft.listeners import NodeListener
from repro.raft.node import RaftNode
from repro.raft.timers import ElectionTimeoutPolicy
from repro.statemachine.base import StateMachine
from repro.storage.persistent import PersistentState

__all__ = ["ConfigAdapter", "ProtocolSpec", "TimeoutPolicyFactory", "TIMEOUT_KINDS"]

#: Builds a node's default timeout policy/override from its configuration and
#: place in the cluster.  Must be a module-level function (pickled by
#: reference).  Return ``None`` to fall back to the node class's own default.
TimeoutPolicyFactory = Callable[
    [ProtocolConfig, ServerId, ClusterConfig], ElectionTimeoutPolicy | None
]

#: Adapts the shared protocol configuration for one protocol (e.g. a variant
#: that tightens the heartbeat).  Must be a module-level function.
ConfigAdapter = Callable[[ProtocolConfig], ProtocolConfig]

#: How a protocol's election timeouts are wired into its node class:
#: ``"policy"`` protocols (the Raft family) take a ``timeout_policy`` that is
#: the *only* source of timeouts; ``"override"`` protocols (the ESCAPE family)
#: derive timeouts from their configuration and take a ``timeout_override``
#: consulted first (the contention scenarios script it).
TIMEOUT_KINDS = ("policy", "override")


@dataclass(frozen=True)
class ProtocolSpec:
    """Descriptor for one registered election protocol.

    Attributes:
        name: registry key and CLI name (e.g. ``"escape-noppf"``); must be
            non-empty and free of whitespace/commas (the CLI splits protocol
            lists on commas).
        node_class: the :class:`~repro.raft.node.RaftNode` subclass to
            instantiate.  ``"policy"`` specs need its constructor to accept
            ``timeout_policy``; ``"override"`` specs need ``timeout_override``.
        title: display label used in report tables (e.g. ``"Z-Raft"``).
        description: one-line summary shown in the registry table.
        paper_section: where the paper discusses this protocol (``""`` for
            variants the paper only implies).
        timeout_kind: ``"policy"`` or ``"override"`` (see
            :data:`TIMEOUT_KINDS`).
        default_timeout_policy: optional :data:`TimeoutPolicyFactory` applied
            when the caller does not supply a per-node policy/override (e.g.
            ``raft-fixed`` pins every server to one deterministic timeout).
        config_adapter: optional :data:`ConfigAdapter` applied to the
            :class:`ProtocolConfig` before node construction.
        guarantees_liveness: whether the protocol is expected to elect a
            leader under the paper's healthy-network conditions.  ``False``
            only for degenerate baselines (``raft-fixed`` livelocks by
            design, which is exactly the Figure 10 collision argument); the
            conformance suite asserts liveness for every spec that claims it.
    """

    name: str
    node_class: type[RaftNode]
    title: str
    description: str = ""
    paper_section: str = ""
    timeout_kind: str = "policy"
    default_timeout_policy: TimeoutPolicyFactory | None = None
    config_adapter: ConfigAdapter | None = None
    guarantees_liveness: bool = True

    def __post_init__(self) -> None:
        if not self.name or any(ch.isspace() or ch == "," for ch in self.name):
            raise ConfigurationError(
                f"protocol name {self.name!r} must be non-empty and free of "
                "whitespace and commas"
            )
        if self.timeout_kind not in TIMEOUT_KINDS:
            raise ConfigurationError(
                f"timeout_kind {self.timeout_kind!r} must be one of {TIMEOUT_KINDS}"
            )
        if not (isinstance(self.node_class, type) and issubclass(self.node_class, RaftNode)):
            raise ConfigurationError(
                f"node_class {self.node_class!r} must be a RaftNode subclass"
            )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def adapt_config(self, protocol_config: ProtocolConfig | None) -> ProtocolConfig:
        """The :class:`ProtocolConfig` this spec's nodes actually receive."""
        config = protocol_config or ProtocolConfig.paper_defaults()
        if self.config_adapter is not None:
            config = self.config_adapter(config)
        return config

    def build_node(
        self,
        *,
        node_id: ServerId,
        cluster: ClusterConfig,
        env: Environment,
        store: PersistentState | None = None,
        state_machine: StateMachine | None = None,
        protocol_config: ProtocolConfig | None = None,
        listeners: Iterable[NodeListener] = (),
        timeout_policy: ElectionTimeoutPolicy | None = None,
        timeout_override: ElectionTimeoutPolicy | None = None,
    ) -> RaftNode:
        """Construct one node of this protocol.

        Every runtime (the discrete-event builder and the asyncio cluster)
        funnels node construction through here, so they cannot drift apart.

        Args:
            timeout_policy: per-node policy for ``"policy"`` specs (ignored by
                ``"override"`` specs); ``None`` consults
                ``default_timeout_policy`` and then the node class's default.
            timeout_override: per-node override for ``"override"`` specs
                (ignored by ``"policy"`` specs); same fallback chain.
        """
        config = self.adapt_config(protocol_config)
        common = dict(
            node_id=node_id,
            cluster=cluster,
            env=env,
            store=store,
            state_machine=state_machine,
            protocol_config=config,
            listeners=listeners,
        )
        if self.timeout_kind == "policy":
            policy = timeout_policy
            if policy is None and self.default_timeout_policy is not None:
                policy = self.default_timeout_policy(config, node_id, cluster)
            return self.node_class(timeout_policy=policy, **common)
        override = timeout_override
        if override is None and self.default_timeout_policy is not None:
            override = self.default_timeout_policy(config, node_id, cluster)
        return self.node_class(timeout_override=override, **common)

"""The protocol registry and the built-in protocol specs.

Three protocols come from the paper (Raft, Z-Raft, ESCAPE) and three variants
probe its arguments:

* ``raft-fixed`` -- Raft with one deterministic timeout shared by every
  server: the degenerate baseline the Figure 10 collision argument predicts
  will livelock (every wait expires simultaneously, every campaign splits).
  Registered with ``guarantees_liveness=False``; a regression test pins the
  predicted livelock.
* ``raft-stagger`` -- Raft with deterministic per-server timeouts laddered by
  Eq. 1 but *without* ESCAPE's priority-driven term growth: the cheapest
  collision-free baseline, isolating how much of ESCAPE's win is just
  "timeouts must differ".
* ``escape-noppf`` -- full ESCAPE with the Probing Patrol disabled (initial
  SCA configurations are permanent), turning the PPF ablation into a
  first-class protocol.
"""

from __future__ import annotations

from repro.common.config import ClusterConfig, ProtocolConfig
from repro.common.errors import ConfigurationError
from repro.common.types import ServerId
from repro.escape.node import EscapeNode, EscapeNoPpfNode
from repro.protocols.spec import ProtocolSpec
from repro.raft.node import RaftNode
from repro.raft.timers import ElectionTimeoutPolicy, FixedTimeoutPolicy
from repro.zraft.node import ZRaftNode

__all__ = [
    "PAPER_PROTOCOLS",
    "RAFT_VS_ESCAPE",
    "get",
    "is_registered",
    "names",
    "register",
    "registered_specs",
    "specs",
    "title",
    "titles",
    "unregister",
    "validated",
]

_REGISTRY: dict[str, ProtocolSpec] = {}


def register(spec: ProtocolSpec, *, replace: bool = False) -> ProtocolSpec:
    """Register *spec* under its name and return it.

    Args:
        spec: the protocol descriptor.
        replace: allow overwriting an existing registration (tests and
            notebooks re-registering tweaked variants).

    Raises:
        ConfigurationError: when the name is already registered and *replace*
            is false.
    """
    if spec.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"protocol {spec.name!r} is already registered; "
            "pass replace=True to overwrite it"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> ProtocolSpec:
    """Remove a registration (plugin teardown, test hygiene) and return it."""
    spec = get(name)
    del _REGISTRY[name]
    return spec


def get(name: str) -> ProtocolSpec:
    """The spec registered under *name*.

    Raises:
        ConfigurationError: listing every registered name when *name* is
            unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def is_registered(name: str) -> bool:
    """Whether *name* is a registered protocol."""
    return name in _REGISTRY


def names() -> tuple[str, ...]:
    """Every registered protocol name, in registration order."""
    return tuple(_REGISTRY)


def specs() -> tuple[ProtocolSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_REGISTRY.values())


def registered_specs() -> tuple[tuple[str, ProtocolSpec], ...]:
    """``(name, spec)`` pairs for introspection tooling (``repro.lint`` S1)."""
    return tuple(_REGISTRY.items())


def title(name: str) -> str:
    """Display label for *name* (the raw name when it is not registered)."""
    spec = _REGISTRY.get(name)
    return spec.title if spec is not None else name


def titles() -> dict[str, str]:
    """Mapping of every registered name to its display label."""
    return {name: spec.title for name, spec in _REGISTRY.items()}


def validated(*protocol_names: str) -> tuple[str, ...]:
    """Return *protocol_names* unchanged after checking each is registered.

    The experiment modules build their default ``PROTOCOLS`` tuples through
    this, so a typo fails at import time with the list of valid names.
    """
    for name in protocol_names:
        get(name)
    return tuple(protocol_names)


# ---------------------------------------------------------------------- #
# Default timeout policies for the deterministic Raft baselines
# ---------------------------------------------------------------------- #
def _fixed_midpoint_policy(
    config: ProtocolConfig, node_id: ServerId, cluster: ClusterConfig
) -> ElectionTimeoutPolicy:
    """``raft-fixed``: every server waits the midpoint of the Raft range."""
    timeouts = config.raft_timeouts
    return FixedTimeoutPolicy(
        (timeouts.timeout_min_ms + timeouts.timeout_max_ms) / 2.0
    )


def _staggered_ladder_policy(
    config: ProtocolConfig, node_id: ServerId, cluster: ClusterConfig
) -> ElectionTimeoutPolicy:
    """``raft-stagger``: the Eq. 1 ladder as plain fixed timeouts.

    Reuses SCA's priority convention (priority = server id, highest id gets
    the shortest timeout) but feeds the ladder to an unmodified Raft node, so
    campaigns never collide yet terms still grow by one per campaign.
    """
    return FixedTimeoutPolicy(
        config.sca.election_timeout_ms(
            priority=node_id, cluster_size=cluster.size
        )
    )


# ---------------------------------------------------------------------- #
# Built-in registrations
# ---------------------------------------------------------------------- #
register(
    ProtocolSpec(
        name="raft",
        node_class=RaftNode,
        title="Raft",
        description="baseline Raft with randomized election timeouts",
        paper_section="Section II",
        timeout_kind="policy",
    )
)
register(
    ProtocolSpec(
        name="zraft",
        node_class=ZRaftNode,
        title="Z-Raft",
        description="ZooKeeper-style static priorities (SCA without PPF or clock)",
        paper_section="Section VI-D",
        timeout_kind="override",
    )
)
register(
    ProtocolSpec(
        name="escape",
        node_class=EscapeNode,
        title="ESCAPE",
        description="the paper's contribution: SCA + PPF + configuration clock",
        paper_section="Sections IV-V",
        timeout_kind="override",
    )
)
register(
    ProtocolSpec(
        name="raft-fixed",
        node_class=RaftNode,
        title="Raft (fixed timeout)",
        description=(
            "degenerate baseline: one deterministic timeout for every server "
            "(livelocks by design -- the Figure 10 collision argument)"
        ),
        paper_section="Section VI-C (implied baseline)",
        timeout_kind="policy",
        default_timeout_policy=_fixed_midpoint_policy,
        guarantees_liveness=False,
    )
)
register(
    ProtocolSpec(
        name="raft-stagger",
        node_class=RaftNode,
        title="Raft (staggered timeouts)",
        description=(
            "deterministic per-server timeouts laddered by Eq. 1, without "
            "priority-driven term growth"
        ),
        paper_section="Section IV-A (implied baseline)",
        timeout_kind="policy",
        default_timeout_policy=_staggered_ladder_policy,
    )
)
register(
    ProtocolSpec(
        name="escape-noppf",
        node_class=EscapeNoPpfNode,
        title="ESCAPE (no PPF)",
        description=(
            "ESCAPE with the Probing Patrol disabled: initial SCA "
            "configurations are permanent (the PPF ablation, first-class)"
        ),
        paper_section="Section IV-B (ablation)",
        timeout_kind="override",
    )
)

#: The paper's three-way comparison (Figure 11, the WAN experiment).
PAPER_PROTOCOLS: tuple[str, ...] = validated("raft", "zraft", "escape")

#: The paper's head-to-head comparison (Figures 9 and 10).
RAFT_VS_ESCAPE: tuple[str, ...] = validated("raft", "escape")

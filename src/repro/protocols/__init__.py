"""Protocol plugin registry: the single place a protocol name maps to code.

The paper's core claim is a *comparison* between election protocols, so the
codebase treats "which protocols exist" as data, not control flow.  Every
protocol (and every experimental variant of one) is described by a frozen
:class:`~repro.protocols.spec.ProtocolSpec` -- name, node class, how its
election timeouts are chosen, display label, paper section -- and registered
here.  Everything that used to branch on protocol strings now consumes the
registry instead:

* :func:`repro.cluster.builder.build_cluster` and
  :class:`repro.runtime.cluster.LocalAsyncCluster` call
  :meth:`ProtocolSpec.build_node`, so the simulated and the live asyncio
  runtime provably construct identical nodes;
* :class:`repro.cluster.scenarios.ElectionScenario` validates its protocol
  against the registry at construction time;
* the experiment modules derive their default ``PROTOCOLS`` tuples from
  :data:`PAPER_PROTOCOLS` / :data:`RAFT_VS_ESCAPE` and render report columns
  from :func:`title`;
* the CLI accepts ``--protocols name,name`` for any registered names.

Registering a new variant makes it available everywhere at once::

    from repro import protocols
    from repro.raft.node import RaftNode

    protocols.register(
        protocols.ProtocolSpec(
            name="my-raft",
            node_class=RaftNode,
            title="My Raft",
            description="Raft with a custom timeout policy",
        )
    )

Specs are frozen and picklable (classes and hook functions are pickled by
reference), so registry-driven scenarios round-trip through the parallel
sweep engine's process pool with bit-for-bit identical results.
"""

from repro.protocols.spec import (
    ConfigAdapter,
    ProtocolSpec,
    TimeoutPolicyFactory,
)
from repro.protocols.registry import (
    PAPER_PROTOCOLS,
    RAFT_VS_ESCAPE,
    get,
    is_registered,
    names,
    register,
    specs,
    title,
    titles,
    unregister,
    validated,
)

__all__ = [
    "ConfigAdapter",
    "PAPER_PROTOCOLS",
    "ProtocolSpec",
    "RAFT_VS_ESCAPE",
    "TimeoutPolicyFactory",
    "get",
    "is_registered",
    "names",
    "register",
    "specs",
    "title",
    "titles",
    "unregister",
    "validated",
]

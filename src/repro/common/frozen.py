"""An immutable, hashable mapping for spec parameter sets.

The registries dispatch frozen dataclasses into the parallel sweep engine's
process pool, so every spec field must be hashable and picklable.  Plain
``dict`` fields break that contract (``hash(spec)`` raises), which is exactly
what the ``repro.lint`` S1 rule rejects.  :class:`FrozenDict` is the
replacement: a read-only :class:`~collections.abc.Mapping` that preserves
insertion order for iteration and ``repr`` but hashes order-independently, so
two specs built from differently-ordered literals still compare and hash
equal.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

__all__ = ["FrozenDict"]


class FrozenDict(Mapping[str, Any]):
    """A hashable, immutable mapping with ``dict``-style construction.

    Accepts anything ``dict()`` accepts; equality follows mapping semantics
    (order-insensitive, interoperable with plain dicts), and the hash is the
    hash of the item set, so it is defined exactly when every value is
    hashable -- the property S1 enforces for registered specs.
    """

    __slots__ = ("_data", "_hash")

    def __init__(self, data: Any = (), **kwargs: Any) -> None:
        object.__setattr__(self, "_data", dict(data, **kwargs))
        object.__setattr__(self, "_hash", None)

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenDict):
            return self._data == other._data
        if isinstance(other, Mapping):
            return self._data == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash(frozenset(self._data.items()))
            )
        return self._hash

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._data!r})"

    def __reduce__(self):
        return (type(self), (self._data,))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

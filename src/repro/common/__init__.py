"""Shared foundation used by every other ``repro`` subpackage.

The :mod:`repro.common` package deliberately has no dependency on any other
part of the library.  It provides:

* :mod:`repro.common.types` -- typed aliases and tiny value objects
  (server identifiers, terms, log indexes, millisecond durations).
* :mod:`repro.common.errors` -- the exception hierarchy.
* :mod:`repro.common.config` -- configuration dataclasses for clusters and
  protocols (heartbeat intervals, election-timeout ranges, SCA parameters).
* :mod:`repro.common.rng` -- deterministic, named random-number streams so
  that every experiment is a pure function of ``(parameters, seed)``.
* :mod:`repro.common.validation` -- small argument-checking helpers shared by
  the configuration dataclasses and the protocol implementations.
"""

from repro.common.config import (
    ClusterConfig,
    ProtocolConfig,
    RaftTimeoutConfig,
    ScaParameters,
)
from repro.common.errors import (
    ClusterError,
    ConfigurationError,
    NetworkError,
    ProtocolError,
    ReproError,
    SimulationError,
    StorageError,
)
from repro.common.rng import SeedSequence
from repro.common.types import (
    LogIndex,
    Milliseconds,
    NodeName,
    ServerId,
    Term,
    format_server,
)

__all__ = [
    "ClusterConfig",
    "ClusterError",
    "ConfigurationError",
    "LogIndex",
    "Milliseconds",
    "NetworkError",
    "NodeName",
    "ProtocolConfig",
    "ProtocolError",
    "RaftTimeoutConfig",
    "ReproError",
    "ScaParameters",
    "SeedSequence",
    "ServerId",
    "SimulationError",
    "StorageError",
    "Term",
    "format_server",
]

"""Deterministic, named random-number streams.

Every stochastic decision in the library (election-timeout draws, latency
samples, fault-injection choices) pulls from a stream derived from a single
experiment seed.  Two properties follow:

* an experiment is a pure function of ``(parameters, seed)`` and re-running it
  reproduces results bit-for-bit, and
* independent concerns (e.g. the latency model and a node's timeout draws) use
  *separate* streams, so adding randomness to one subsystem never perturbs the
  draws observed by another -- which keeps A/B comparisons between protocols
  paired on identical network behaviour.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable

__all__ = ["SeedSequence", "derive_run_seed", "derive_seed", "paired_seeds"]


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a child seed from a root seed and a path of names.

    The derivation hashes the textual path with SHA-256, so it is stable
    across processes and Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("utf-8"))
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class SeedSequence:
    """A tree of deterministic random streams rooted at one integer seed.

    Usage::

        seeds = SeedSequence(42)
        latency_rng = seeds.stream("latency")
        node_rng = seeds.stream("node", 3)       # S3's private stream
        child = seeds.child("run", 17)           # sub-tree for run #17
    """

    def __init__(self, root_seed: int, _path: tuple[object, ...] = ()) -> None:
        self._root_seed = int(root_seed)
        self._path = _path

    @property
    def root_seed(self) -> int:
        """The integer seed this sequence (or sub-tree) was rooted at."""
        return self._root_seed

    @property
    def path(self) -> tuple[object, ...]:
        """The path of names from the experiment root to this sub-tree."""
        return self._path

    def stream(self, *names: object) -> random.Random:
        """Return a fresh :class:`random.Random` for the given named stream.

        Calling ``stream`` twice with the same names returns two *independent
        instances* seeded identically, so callers should create a stream once
        and keep it.
        """
        seed = derive_seed(self._root_seed, *self._path, *names)
        return random.Random(seed)

    def child(self, *names: object) -> "SeedSequence":
        """Return a sub-tree rooted at ``path + names``.

        Useful for giving each run of a 1000-run sweep its own namespace:
        ``seeds.child("run", i)``.
        """
        return SeedSequence(self._root_seed, self._path + tuple(names))

    def spawn(self, count: int, *names: object) -> list["SeedSequence"]:
        """Return *count* numbered children under the given names."""
        return [self.child(*names, index) for index in range(count)]

    def integers(self, count: int, *names: object) -> list[int]:
        """Return *count* deterministic integers from the named stream."""
        rng = self.stream(*names)
        return [rng.getrandbits(63) for _ in range(count)]

    @classmethod
    def from_values(cls, root_seed: int, names: Iterable[object]) -> "SeedSequence":
        """Build a sub-tree directly from an iterable path."""
        return cls(root_seed, tuple(names))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "/".join(str(part) for part in self._path)
        return f"SeedSequence(root={self._root_seed}, path={path!r})"


def derive_run_seed(seed: int, label: str, index: int) -> int:
    """The seed of run *index* of the scenario labelled *label*.

    This is the single source of truth for sweep seed derivation: the
    experiment helpers (:func:`repro.experiments.base.paired_seeds`, and
    through them :func:`~repro.experiments.base.run_scenario_set` and the
    parallel engine) and :meth:`repro.cluster.scenarios.ElectionScenario.run_many`
    all call it, so the paired A/B design cannot drift no matter which entry
    point ran the episodes.
    """
    return SeedSequence(seed).stream("experiment", label, index).getrandbits(32)


def paired_seeds(runs: int, seed: int, label: str) -> list[int]:
    """Derive the per-run seeds for one scenario label (for paired designs)."""
    return [derive_run_seed(seed, label, index) for index in range(runs)]

"""Configuration dataclasses for clusters and protocols.

Three kinds of configuration appear in the paper's evaluation and are modelled
here directly:

* the *cluster* configuration -- membership and quorum size (Section VI-A
  uses clusters of 4, 8, 16, 32, 64 and 128 servers);
* the *Raft timing* configuration -- heartbeat interval and the randomized
  election-timeout range (Section III sweeps ranges from 1500-1800 ms to
  1500-6000 ms; Section VI-B uses 1500-3000 ms);
* the *SCA parameters* used by ESCAPE's stochastic configuration assignment
  (Eq. 1: ``period_i = baseTime + k * (n - P_i)``, with ``baseTime = 1500 ms``
  and ``k = 500 ms`` in the evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.common.errors import ConfigurationError
from repro.common.types import Milliseconds, ServerId
from repro.common.validation import (
    require_in_range,
    require_non_empty,
    require_ordered_pair,
    require_positive,
    require_unique,
)


@dataclass(frozen=True)
class ClusterConfig:
    """Static membership of a consensus cluster.

    Attributes:
        server_ids: the identifiers of every member, unique positive integers.
            The paper numbers servers ``S1 .. Sn`` and reuses the identifier as
            the initial SCA priority, so identifiers double as priorities.
    """

    server_ids: tuple[ServerId, ...]

    def __post_init__(self) -> None:
        ids = require_non_empty(self.server_ids, "server_ids")
        require_unique(ids, "server_ids")
        for server_id in ids:
            require_positive(server_id, "server id")
        object.__setattr__(self, "server_ids", tuple(ids))

    @classmethod
    def of_size(cls, n: int) -> "ClusterConfig":
        """Build the canonical cluster ``{S1, ..., Sn}`` of *n* servers."""
        require_positive(n, "cluster size")
        return cls(server_ids=tuple(range(1, n + 1)))

    @property
    def size(self) -> int:
        """Number of servers in the cluster (``n`` in the paper)."""
        return len(self.server_ids)

    @property
    def quorum_size(self) -> int:
        """Votes/acknowledgements needed for a majority (``⌊n/2⌋ + 1``).

        The paper's example (Section VI-B): in an 8-server cluster the quorum
        size is 5.
        """
        return self.size // 2 + 1

    @property
    def fault_tolerance(self) -> int:
        """Number of benign faults tolerated (``f`` where ``n >= 2f + 1``)."""
        return (self.size - 1) // 2

    def peers_of(self, server_id: ServerId) -> tuple[ServerId, ...]:
        """Every member except *server_id*."""
        if server_id not in self.server_ids:
            raise ConfigurationError(f"S{server_id} is not a cluster member")
        return tuple(other for other in self.server_ids if other != server_id)

    def __contains__(self, server_id: object) -> bool:
        return server_id in self.server_ids

    def __iter__(self) -> Iterator[ServerId]:
        return iter(self.server_ids)

    def __len__(self) -> int:
        return self.size


@dataclass(frozen=True)
class RaftTimeoutConfig:
    """Randomized election-timeout range used by baseline Raft.

    Raft draws each election timeout uniformly from
    ``[timeout_min_ms, timeout_max_ms]``.  Figure 3 of the paper sweeps this
    range; Figure 9 uses the Raft-recommended 1500-3000 ms for a 100-200 ms
    network latency.
    """

    timeout_min_ms: Milliseconds = 1500.0
    timeout_max_ms: Milliseconds = 3000.0

    def __post_init__(self) -> None:
        require_positive(self.timeout_min_ms, "timeout_min_ms")
        require_ordered_pair(self.timeout_min_ms, self.timeout_max_ms, "timeout range")

    @property
    def randomness_ms(self) -> Milliseconds:
        """Width of the randomized window (the paper's "amount of randomness")."""
        return self.timeout_max_ms - self.timeout_min_ms

    def with_range(
        self, timeout_min_ms: Milliseconds, timeout_max_ms: Milliseconds
    ) -> "RaftTimeoutConfig":
        """Return a copy with a different randomized range."""
        return replace(
            self, timeout_min_ms=timeout_min_ms, timeout_max_ms=timeout_max_ms
        )


@dataclass(frozen=True)
class ScaParameters:
    """Parameters of ESCAPE's stochastic configuration assignment (Eq. 1).

    ``period_i = base_time_ms + k_ms * (n - P_i)``

    where ``P_i`` is server ``S_i``'s priority.  The highest-priority server
    (``P_i = n``) therefore gets the *shortest* election timeout
    (``base_time_ms``), so it detects a leader failure before anyone else.

    The paper's evaluation (Section VI-B) uses ``base_time_ms = 1500`` and
    ``k_ms = 500``, and recommends setting ``k`` at least twice the network
    latency so the top-priority candidate can finish its campaign before the
    next server times out.
    """

    base_time_ms: Milliseconds = 1500.0
    k_ms: Milliseconds = 500.0

    def __post_init__(self) -> None:
        require_positive(self.base_time_ms, "base_time_ms")
        require_positive(self.k_ms, "k_ms")

    def election_timeout_ms(self, priority: int, cluster_size: int) -> Milliseconds:
        """Evaluate Eq. 1 for a server with the given priority.

        Example from the paper: a 10-server cluster with ``baseTime = 100 ms``
        and ``k = 10 ms`` gives ``S2`` (priority 2) a timeout of 180 ms and
        ``S10`` (priority 10) the base time of 100 ms.
        """
        require_positive(cluster_size, "cluster_size")
        require_in_range(priority, 1, cluster_size, "priority")
        return self.base_time_ms + self.k_ms * (cluster_size - priority)

    def slowest_timeout_ms(self, cluster_size: int) -> Milliseconds:
        """Election timeout of the lowest-priority server (priority 1)."""
        return self.election_timeout_ms(1, cluster_size)

    def fastest_timeout_ms(self, cluster_size: int) -> Milliseconds:
        """Election timeout of the highest-priority server (priority n)."""
        return self.election_timeout_ms(cluster_size, cluster_size)


@dataclass(frozen=True)
class ProtocolConfig:
    """Timing knobs shared by every protocol implementation.

    Attributes:
        heartbeat_interval_ms: period of the leader's AppendEntries heartbeat.
            Must be well below the smallest election timeout so followers do
            not time out under a healthy leader.
        vote_retry_interval_ms: how often a candidate retransmits its
            RequestVote to peers that have not granted yet, within one
            campaign.  Raft candidates retry vote RPCs until the campaign ends;
            without retransmission a single lost broadcast (Section VI-D's
            loss model) could make a quorum unreachable in small clusters.
        max_entries_per_append: batch cap for log replication.
        raft_timeouts: the randomized election-timeout range used by baseline
            Raft (and by ESCAPE only as a fallback before the first
            configuration is known).
        sca: SCA parameters used by ESCAPE and Z-Raft.
    """

    heartbeat_interval_ms: Milliseconds = 150.0
    vote_retry_interval_ms: Milliseconds = 300.0
    max_entries_per_append: int = 64
    raft_timeouts: RaftTimeoutConfig = field(default_factory=RaftTimeoutConfig)
    sca: ScaParameters = field(default_factory=ScaParameters)

    def __post_init__(self) -> None:
        require_positive(self.heartbeat_interval_ms, "heartbeat_interval_ms")
        require_positive(self.vote_retry_interval_ms, "vote_retry_interval_ms")
        require_positive(self.max_entries_per_append, "max_entries_per_append")
        if self.heartbeat_interval_ms >= self.raft_timeouts.timeout_min_ms:
            raise ConfigurationError(
                "heartbeat_interval_ms must be smaller than the minimum election "
                f"timeout ({self.heartbeat_interval_ms} >= "
                f"{self.raft_timeouts.timeout_min_ms})"
            )
        if self.vote_retry_interval_ms >= self.raft_timeouts.timeout_min_ms:
            raise ConfigurationError(
                "vote_retry_interval_ms must be smaller than the minimum election "
                f"timeout ({self.vote_retry_interval_ms} >= "
                f"{self.raft_timeouts.timeout_min_ms})"
            )

    @classmethod
    def paper_defaults(cls) -> "ProtocolConfig":
        """Timing configuration used throughout the paper's evaluation.

        Raft: election timeouts 1500-3000 ms.  ESCAPE: baseTime 1500 ms and
        k = 500 ms.  Heartbeats every 150 ms (an order of magnitude below the
        smallest timeout, consistent with Raft's guidance).
        """
        return cls(
            heartbeat_interval_ms=150.0,
            raft_timeouts=RaftTimeoutConfig(1500.0, 3000.0),
            sca=ScaParameters(base_time_ms=1500.0, k_ms=500.0),
        )

"""Small argument-validation helpers.

These helpers raise :class:`repro.common.errors.ConfigurationError` with a
consistent message format, so configuration mistakes surface early and read
the same everywhere in the library.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TypeVar

from repro.common.errors import ConfigurationError

T = TypeVar("T")
Number = TypeVar("Number", int, float)


def require_positive(value: Number, name: str) -> Number:
    """Return *value* if it is strictly positive, otherwise raise."""
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return value


def require_non_negative(value: Number, name: str) -> Number:
    """Return *value* if it is zero or positive, otherwise raise."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")
    return value


def require_in_range(value: Number, low: Number, high: Number, name: str) -> Number:
    """Return *value* if ``low <= value <= high``, otherwise raise."""
    if not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be within [{low}, {high}], got {value!r}"
        )
    return value


def require_fraction(value: float, name: str) -> float:
    """Return *value* if it is a probability/fraction in ``[0, 1]``."""
    return require_in_range(value, 0.0, 1.0, name)


def require_ordered_pair(low: Number, high: Number, name: str) -> tuple[Number, Number]:
    """Return ``(low, high)`` if ``low <= high``, otherwise raise."""
    if low > high:
        raise ConfigurationError(
            f"{name} must be an ordered pair, got ({low!r}, {high!r})"
        )
    return low, high


def require_unique(values: Sequence[T], name: str) -> Sequence[T]:
    """Return *values* if it contains no duplicates, otherwise raise."""
    seen: set[T] = set()
    for value in values:
        if value in seen:
            raise ConfigurationError(f"{name} contains duplicate value {value!r}")
        seen.add(value)
    return values


def require_non_empty(values: Iterable[T], name: str) -> list[T]:
    """Return *values* as a list if it is non-empty, otherwise raise."""
    collected = list(values)
    if not collected:
        raise ConfigurationError(f"{name} must not be empty")
    return collected

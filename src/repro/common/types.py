"""Typed aliases and tiny value helpers shared across the library.

The paper identifies servers by small integers (``S1`` ... ``Sn``) and uses the
server identifier directly as the initial priority in the stochastic
configuration assignment (Section IV-A).  We therefore model a server
identifier as a positive ``int`` and provide :func:`format_server` for the
human-readable ``"S3"`` style used in traces and reports.
"""

from __future__ import annotations

from typing import NewType

# A server identifier.  Positive integer, unique within a cluster.  The paper
# assigns priorities from server identifiers, so keeping this an ``int`` keeps
# Eq. 1 and Eq. 2 literal.
ServerId = int

# Raft's logical time.  Terms are positive integers that only ever increase
# (Section II-A).  ESCAPE preserves the monotonicity but makes the increment
# depend on the server's priority (Eq. 2).
Term = int

# Index into the replicated log.  The first real entry has index 1; index 0 is
# the sentinel "empty log" position, matching the Raft paper's convention.
LogIndex = int

# Durations and timestamps.  All simulated and wall-clock times in this
# library are expressed in milliseconds as floats, mirroring the units used
# throughout the paper's evaluation (election timeouts of 1500-3000 ms,
# network latency of 100-200 ms).
Milliseconds = float

# Human-readable node name such as ``"S7"``.
NodeName = NewType("NodeName", str)


def format_server(server_id: ServerId) -> str:
    """Return the paper-style name for a server identifier.

    >>> format_server(3)
    'S3'
    """
    return f"S{server_id}"


def parse_server(name: str) -> ServerId:
    """Parse a paper-style server name back into a :data:`ServerId`.

    >>> parse_server("S12")
    12

    Raises:
        ValueError: if the name does not look like ``"S<integer>"``.
    """
    if not name or name[0] not in ("S", "s"):
        raise ValueError(f"not a server name: {name!r}")
    try:
        server_id = int(name[1:])
    except ValueError as exc:
        raise ValueError(f"not a server name: {name!r}") from exc
    if server_id <= 0:
        raise ValueError(f"server identifiers are positive: {name!r}")
    return server_id

"""Exception hierarchy for the ESCAPE reproduction.

Every exception raised by this library derives from :class:`ReproError`, so
applications embedding the library can catch one base class.  Subclasses map
one-to-one onto the major subsystems described in DESIGN.md.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, out of range, or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel was used incorrectly.

    Examples: scheduling an event in the past, running a scheduler whose
    clock has been detached, or exceeding an explicit event budget.
    """


class NetworkError(ReproError):
    """The simulated network was asked to do something impossible.

    Examples: sending to an unregistered node or creating overlapping
    partitions that do not cover the membership.
    """


class StorageError(ReproError):
    """The durable-state substrate detected corruption or misuse.

    Examples: appending a log entry with a non-contiguous index, truncating
    committed entries, or loading a persisted file with an invalid payload.
    """


class ProtocolError(ReproError):
    """A consensus protocol invariant was violated.

    These indicate bugs (either in the library or in code driving a node
    directly) rather than expected runtime failures: terms moving backwards,
    two leaders acknowledged in one term by one node, a proposal submitted to
    a non-leader, and similar conditions.
    """


class NotLeaderError(ProtocolError):
    """A client proposal was submitted to a node that is not the leader."""

    def __init__(self, node_id: int, known_leader: int | None = None) -> None:
        self.node_id = node_id
        self.known_leader = known_leader
        hint = f"; known leader is S{known_leader}" if known_leader else ""
        super().__init__(f"S{node_id} is not the leader{hint}")


class ClusterError(ReproError):
    """The cluster harness was driven into an unsupported state.

    Examples: crashing a node that is already crashed, or asking for the
    leader of a cluster that never elected one within the allowed time.
    """


class SweepError(ReproError):
    """A run inside an experiment sweep failed.

    Raised by the sweep execution engine when one ``(scenario label, run
    index)`` work item raises, with the failing label and index in the
    message so a 10,000-run sweep pinpoints its bad episode.  Worker-process
    failures are re-raised in the parent as this type because the original
    traceback cannot cross the process boundary intact.
    """

"""JSON-lines checkpointing for streaming sweeps.

A streaming sweep (:func:`repro.experiments.runner.run_sweep` with
``streaming=True``) executes work in deterministic chunks and merges the
per-chunk partial aggregates in chunk-index order.  That makes a sweep
resumable *bit-identically*: persist each completed chunk's partials, and a
restarted sweep only has to re-run the chunks that never completed -- the
merge order (and therefore every float in the final report) is the same as an
uninterrupted run.

The on-disk format is one JSON object per line, append-only:

* line 1 -- a header pinning the sweep identity: a fingerprint over the
  scenario table / runs / seed / aggregate type, plus the chunk size the
  partition was built with.  Resuming with a different ``--workers`` count
  reuses the recorded chunk size, so the partition never shifts.
* every further line -- ``{"chunk": id, "partials": {label: state}}``, the
  JSON state of each label's partial aggregate for that chunk (floats
  round-trip exactly through ``json``).

Appends are flushed per line, so a killed process loses at most the line it
was writing; :meth:`SweepCheckpoint.open` tolerates (and trims) a truncated
trailing line.  A fingerprint or identity mismatch never corrupts results:
the stale file is discarded and the sweep starts fresh.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.common.errors import SweepError

__all__ = ["SweepCheckpoint", "checkpoint_fingerprint"]

_FORMAT = "repro-sweep-checkpoint"
_VERSION = 1

#: Rebuilds one partial aggregate from its JSON state.
StateLoader = Callable[[Mapping[str, object]], object]


def checkpoint_fingerprint(
    scenarios: Mapping[str, object], runs: int, seed: int, aggregate_type: type
) -> str:
    """A stable digest of everything that defines the sweep's work partition.

    Scenario identity rides on ``repr`` -- frozen dataclass reprs are
    deterministic and capture every parameter.  Any difference (an extra
    label, a changed timeout, another aggregate class) changes the
    fingerprint, so a checkpoint can never be resumed against different work.
    """
    identity = {
        "labels": {label: repr(scenario) for label, scenario in scenarios.items()},
        "runs": runs,
        "seed": seed,
        "aggregate": f"{aggregate_type.__module__}.{aggregate_type.__qualname__}",
    }
    digest = hashlib.sha256(
        json.dumps(identity, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()


class SweepCheckpoint:
    """Append-only chunk ledger for one streaming sweep.

    Use :meth:`open` to create-or-resume, :attr:`completed` for the chunks a
    previous run already finished, :meth:`record` after each chunk completes,
    and :meth:`close` (or a ``with`` block) when the sweep ends.
    """

    def __init__(
        self,
        path: Path,
        chunk_size: int,
        completed: dict[int, dict[str, object]],
    ) -> None:
        self.path = path
        #: Chunk size the partition was (and must keep being) built with.
        self.chunk_size = chunk_size
        #: chunk id -> label -> restored partial aggregate.
        self.completed = completed
        self._handle = path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------ #
    # Opening / resuming
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        directory: str | os.PathLike,
        *,
        fingerprint: str,
        labels: Sequence[str],
        runs: int,
        seed: int,
        chunk_size: int,
        loader: StateLoader,
    ) -> "SweepCheckpoint":
        """Create a checkpoint in *directory*, resuming any compatible file.

        *chunk_size* is the partition the caller would use for a fresh sweep;
        when a compatible checkpoint already exists its recorded chunk size
        wins, so resuming with a different worker count cannot shift the
        chunk boundaries.
        """
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        path = root / f"sweep-{fingerprint[:16]}.jsonl"

        completed: dict[int, dict[str, object]] = {}
        if path.exists():
            header, chunk_lines, valid_text = cls._read(path)
            if (
                header is not None
                and header.get("format") == _FORMAT
                and header.get("version") == _VERSION
                and header.get("fingerprint") == fingerprint
                and header.get("labels") == list(labels)
                and header.get("runs") == runs
                and header.get("seed") == seed
            ):
                chunk_size = int(header["chunk_size"])
                for line in chunk_lines:
                    partials = {
                        label: loader(state)
                        for label, state in line["partials"].items()
                    }
                    completed[int(line["chunk"])] = partials
                # A kill mid-append leaves a torn trailing line; trim it so
                # the next append starts on a clean line boundary.
                if valid_text is not None:
                    path.write_text(valid_text, encoding="utf-8")
            else:
                # Different sweep (or unreadable header): never mix results.
                path.unlink()

        checkpoint = cls(path, chunk_size, completed)
        if not completed and path.stat().st_size == 0:
            checkpoint._append(
                {
                    "format": _FORMAT,
                    "version": _VERSION,
                    "fingerprint": fingerprint,
                    "labels": list(labels),
                    "runs": runs,
                    "seed": seed,
                    "chunk_size": chunk_size,
                }
            )
        return checkpoint

    @staticmethod
    def _read(
        path: Path,
    ) -> tuple[dict | None, list[dict], str | None]:
        """Parse a checkpoint file, trimming any torn trailing line.

        Returns ``(header, chunk_lines, valid_text)`` where *valid_text* is
        the clean prefix to rewrite when the file ends in a torn line (or
        ``None`` when the file is already clean).
        """
        raw = path.read_text(encoding="utf-8")
        header: dict | None = None
        chunk_lines: list[dict] = []
        consumed = 0
        for line in raw.splitlines(keepends=True):
            if not line.endswith("\n"):
                break  # torn tail from a mid-write kill
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                break  # corrupt line: keep the prefix, drop the rest
            if header is None:
                header = payload if isinstance(payload, dict) else {}
            elif isinstance(payload, dict) and "chunk" in payload:
                chunk_lines.append(payload)
            consumed += len(line)
        valid_text = raw[:consumed] if consumed != len(raw) else None
        return header, chunk_lines, valid_text

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(self, chunk_id: int, partials: Mapping[str, object]) -> None:
        """Persist one completed chunk's partial aggregates (flushed)."""
        states = {}
        for label, partial in partials.items():
            to_state = getattr(partial, "to_state", None)
            if to_state is None:
                raise SweepError(
                    f"aggregate for {label!r} has no to_state(); "
                    "checkpointing needs JSON-able partials"
                )
            states[label] = to_state()
        self._append({"chunk": chunk_id, "partials": states})

    def _append(self, payload: Mapping[str, object]) -> None:
        self._handle.write(json.dumps(payload) + "\n")
        self._handle.flush()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

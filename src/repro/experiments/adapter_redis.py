"""Extension experiment: ESCAPE applied to Redis-Cluster-style failover.

Not a paper figure -- it substantiates the Section IV-C claim that ESCAPE's
"prepare future leaders in advance" idea transfers to other failover
elections.  The sweep compares the stock Redis replica election against the
ESCAPE-groomed variant while the quality of the replicas' rank information
degrades (``rank_confusion``) and vote messages get lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.adapters.redis_cluster import RedisClusterParameters, compare_failover_models
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, ExporterBinding
from repro.metrics.stats import reduction_percent
from repro.metrics.tables import render_table

DEFAULT_CONFUSION_LEVELS: tuple[float, ...] = (0.0, 0.3, 0.6)
DEFAULT_VOTE_LOSS: float = 0.1


@dataclass(frozen=True)
class RedisAdapterResult:
    """Comparison summaries per rank-confusion level."""

    confusion_levels: tuple[float, ...]
    runs: int
    by_level: Mapping[float, Mapping[str, Mapping[str, float]]]

    def summary_for(self, confusion: float, variant: str) -> Mapping[str, float]:
        """The summary dict for one (confusion level, variant) cell."""
        return self.by_level[confusion][variant]

    def escape_reduction_for(self, confusion: float) -> float:
        """ESCAPE-variant failover-time reduction vs stock Redis."""
        return reduction_percent(
            self.summary_for(confusion, "redis")["mean_ms"],
            self.summary_for(confusion, "escape-redis")["mean_ms"],
        )


def run(
    runs: int = 200,
    seed: int = 0,
    confusion_levels: Sequence[float] = DEFAULT_CONFUSION_LEVELS,
    vote_loss_rate: float = DEFAULT_VOTE_LOSS,
    replicas: int = 5,
) -> RedisAdapterResult:
    """Execute the adapter comparison sweep."""
    by_level: dict[float, Mapping[str, Mapping[str, float]]] = {}
    for confusion in confusion_levels:
        params = RedisClusterParameters(
            replicas=replicas,
            rank_confusion=confusion,
            vote_loss_rate=vote_loss_rate,
        )
        by_level[confusion] = compare_failover_models(runs=runs, seed=seed, params=params)
    return RedisAdapterResult(
        confusion_levels=tuple(confusion_levels), runs=runs, by_level=by_level
    )


def report(result: RedisAdapterResult) -> str:
    """Render the comparison as a table (one row per confusion level)."""
    rows = []
    for confusion in result.confusion_levels:
        stock = result.summary_for(confusion, "redis")
        groomed = result.summary_for(confusion, "escape-redis")
        rows.append(
            [
                f"{confusion:.0%}",
                f"{stock['mean_ms']:.0f}",
                f"{100 * stock['collision_rate']:.1f}%",
                f"{groomed['mean_ms']:.0f}",
                f"{100 * groomed['collision_rate']:.1f}%",
                f"{result.escape_reduction_for(confusion):.1f}%",
            ]
        )
    return render_table(
        headers=[
            "rank confusion",
            "Redis mean (ms)",
            "Redis epoch collisions",
            "ESCAPE-Redis mean (ms)",
            "ESCAPE-Redis collisions",
            "reduction",
        ],
        rows=rows,
        title=(
            "Adapter — Redis-Cluster replica failover with and without ESCAPE "
            f"({result.runs} runs per cell)"
        ),
    )


def _export_rows(result: RedisAdapterResult) -> list[dict[str, object]]:
    """Exporter binding: one aggregate row per (confusion level, variant)."""
    rows: list[dict[str, object]] = []
    for confusion in result.confusion_levels:
        for variant in sorted(result.by_level[confusion]):
            summary = result.summary_for(confusion, variant)
            rows.append(
                {
                    "rank_confusion": confusion,
                    "variant": variant,
                    **{key: summary[key] for key in sorted(summary)},
                }
            )
    return rows


#: The adapter model is cheap; the spec's floor keeps the collision rates
#: stable even when the CLI's default/quick run counts are tiny.  It also
#: opts out of ``--workers``: the sweep finishes in milliseconds, so a pool
#: would only pay start-up cost.
SPEC = register(
    ExperimentSpec(
        name="adapter-redis",
        title="ESCAPE grooming applied to Redis-Cluster failover",
        paper_ref="Section IV-C (transfer claim)",
        description=(
            "stock Redis replica election vs the ESCAPE-groomed variant "
            "while rank information degrades and votes get lost"
        ),
        run=run,
        reporter=report,
        default_runs=200,
        params={
            "confusion_levels": DEFAULT_CONFUSION_LEVELS,
            "vote_loss_rate": DEFAULT_VOTE_LOSS,
            "replicas": 5,
        },
        supports_workers=False,
        min_runs=50,
        exporter=ExporterBinding(kind="rows", extract=_export_rows),
    )
)

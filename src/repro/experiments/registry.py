"""The experiment registry and the one programmatic entry point.

Mirrors :mod:`repro.protocols`: every experiment module registers a frozen
:class:`~repro.experiments.spec.ExperimentSpec` at import time, and everything
that used to hard-code the experiment list consumes the registry instead --
the CLI derives its choices, help text, capability validation and quick-mode
overrides from it; the ``all`` runner iterates :func:`names`; ``--output``
persists any result through the spec's exporter binding; EXPERIMENTS.md
embeds :func:`registry_table_markdown`.

The programmatic surface is :func:`run_experiment`::

    from repro.experiments import run_experiment

    run = run_experiment("fig9", runs=100, workers=0, sizes=(8, 16))
    print(run.report)            # the table the CLI prints
    run.result.average_for("escape", 16)   # the raw result object
    run.elapsed_s, run.parameters          # run metadata

It resolves the spec, applies quick-mode and caller overrides to the declared
parameter set, validates the sweep-wide options against the spec's capability
flags (and protocol names against :mod:`repro.protocols`), executes the run,
and wraps everything in a picklable
:class:`~repro.experiments.spec.ExperimentRun` envelope.
"""

from __future__ import annotations

from typing import Sequence

from repro import protocols as protocol_registry
from repro.common.errors import ConfigurationError
from repro.obs.profiling import Profiler
from repro.sim import engines as engine_registry
from repro.experiments.spec import (
    CAPABILITIES,
    ExperimentRun,
    ExperimentSpec,
)
from repro.metrics.tables import render_table

__all__ = [
    "CAPABILITIES",
    "get",
    "is_registered",
    "names",
    "register",
    "registered_specs",
    "registry_table",
    "registry_table_markdown",
    "run_experiment",
    "specs",
    "supporting",
    "titles",
    "unregister",
    "unsupported_option_message",
    "validate_sweep_protocols",
]

_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec, *, replace: bool = False) -> ExperimentSpec:
    """Register *spec* under its name and return it.

    Args:
        spec: the experiment descriptor.
        replace: allow overwriting an existing registration (tests and
            notebooks re-registering tweaked variants).

    Raises:
        ConfigurationError: when the name is already registered and *replace*
            is false.
    """
    if spec.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"experiment {spec.name!r} is already registered; "
            "pass replace=True to overwrite it"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> ExperimentSpec:
    """Remove a registration (plugin teardown, test hygiene) and return it."""
    spec = get(name)
    del _REGISTRY[name]
    return spec


def get(name: str) -> ExperimentSpec:
    """The spec registered under *name*.

    Raises:
        ConfigurationError: listing every registered name when *name* is
            unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def is_registered(name: str) -> bool:
    """Whether *name* is a registered experiment."""
    return name in _REGISTRY


def names() -> tuple[str, ...]:
    """Every registered experiment name, in registration order."""
    return tuple(_REGISTRY)


def specs() -> tuple[ExperimentSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_REGISTRY.values())


def registered_specs() -> tuple[tuple[str, ExperimentSpec], ...]:
    """``(name, spec)`` pairs for introspection tooling (``repro.lint`` S1/S2)."""
    return tuple(_REGISTRY.items())


def titles() -> dict[str, str]:
    """Mapping of every registered name to its display title."""
    return {name: spec.title for name, spec in _REGISTRY.items()}


def supporting(option: str) -> tuple[str, ...]:
    """The registered experiments that understand one sweep-wide *option*."""
    if option not in CAPABILITIES:
        raise ConfigurationError(
            f"unknown capability {option!r}; capabilities: "
            f"{', '.join(CAPABILITIES)}"
        )
    return tuple(
        name
        for name, spec in _REGISTRY.items()
        if getattr(spec, f"supports_{option}")
    )


def unsupported_option_message(
    option: str, experiment_names: Sequence[str]
) -> str | None:
    """CLI-style error for ``--<option>`` given to unsupporting experiments.

    Returns ``None`` when every experiment in *experiment_names* supports the
    option, otherwise the registry-derived message the CLI (and
    :func:`run_experiment`) report.
    """
    supported = supporting(option)
    unsupported = [
        name for name in experiment_names if name not in supported
    ]
    if not unsupported:
        return None
    return (
        f"--{option} is not supported by: {', '.join(unsupported)} "
        f"(supported: {', '.join(sorted(supported))})"
    )


def validate_sweep_protocols(protocol_names: Sequence[str]) -> tuple[str, ...]:
    """Check *protocol_names* can run in an experiment sweep.

    Every experiment stabilises a leader before measuring, so beyond being
    registered in :mod:`repro.protocols` each protocol must guarantee
    liveness (``raft-fixed`` livelocks by design and can only abort a sweep).

    Raises:
        ConfigurationError: naming the offending protocol, with the list of
            registered (or sweepable) ones.
    """
    sweepable = [
        spec.name
        for spec in protocol_registry.specs()
        if spec.guarantees_liveness
    ]
    for name in protocol_names:
        if not protocol_registry.is_registered(name):
            raise ConfigurationError(
                f"unknown protocol {name!r}; registered: "
                f"{', '.join(protocol_registry.names())}"
            )
        if not protocol_registry.get(name).guarantees_liveness:
            raise ConfigurationError(
                f"protocol {name!r} does not guarantee leader election (it "
                "livelocks by design) and cannot run in an experiment sweep; "
                f"sweepable protocols: {', '.join(sweepable)}"
            )
    return tuple(protocol_names)


def run_experiment(
    name: str,
    *,
    runs: int | None = None,
    seed: int = 0,
    quick: bool = False,
    workers: int | None = 1,
    progress=None,
    scenario: str | None = None,
    protocols: Sequence[str] | None = None,
    plan: str | None = None,
    streaming: bool | None = None,
    checkpoint: str | None = None,
    trace: str | None = None,
    engine: str | None = None,
    **param_overrides: object,
) -> ExperimentRun:
    """Run one registered experiment and return its structured envelope.

    Args:
        name: a registered experiment name (see :func:`names`).
        runs: independent runs per data point; ``None`` uses the spec's
            default (raised to the spec's ``min_runs`` floor, with a note).
        seed: root random seed (results are deterministic per seed).
        quick: apply the spec's quick-mode parameter overrides (small
            cluster sizes / short horizons for smoke passes).
        workers: sweep-engine worker processes (``None`` = one per CPU);
            ignored, with a note, by specs that do not support workers.
        progress: optional progress callback forwarded to the sweep engine.
        scenario: named network condition (scenario-capable experiments).
        protocols: protocol names replacing the experiment's default
            comparison (protocol-capable experiments).
        plan: named chaos plan (plan-capable experiments).
        streaming: select (``True``) or veto (``False``) the streaming sweep
            path for streaming-capable experiments; ``None`` keeps the
            spec's own default.
        checkpoint: directory for the streaming path's JSON-lines chunk
            checkpoint (implies ``streaming=True``); a killed run re-invoked
            with the same checkpoint resumes bit-identically.
        trace: directory into which trace-capable experiments archive one
            traced episode per scenario label (JSONL + manifest + telemetry
            snapshots; see :func:`repro.obs.trace.archive_election_traces`).
        engine: simulation engine name from :mod:`repro.sim.engines`
            (``None`` keeps the process default).  Engines are bit-identical
            by contract, so this changes wall-clock time only; the resolved
            name is recorded on the returned envelope.  The selection is
            installed as the process default for the duration of the run, so
            sweep workers and scenario builds inherit it.
        **param_overrides: overrides for the spec's declared parameters
            (e.g. ``sizes=(8, 16)`` for ``fig9``).

    Raises:
        ConfigurationError: for unknown experiments, unsupported sweep-wide
            options, unknown parameter overrides, or unsweepable protocols.
    """
    spec = get(name)
    if checkpoint is not None:
        if streaming is False:
            raise ConfigurationError(
                "checkpoint= requires the streaming path; "
                "drop streaming=False or the checkpoint"
            )
        streaming = True
    for option, value in (
        ("scenario", scenario),
        ("protocols", protocols),
        ("plan", plan),
        ("streaming", streaming),
        ("trace", trace),
    ):
        if value is not None and not getattr(spec, f"supports_{option}"):
            raise ConfigurationError(
                unsupported_option_message(option, [name])
            )
    if protocols is not None:
        protocols = validate_sweep_protocols(tuple(protocols))

    profiler = Profiler()
    notes: list[str] = []
    resolved_runs = spec.default_runs if runs is None else runs
    if spec.min_runs is not None and resolved_runs < spec.min_runs:
        notes.append(
            f"runs raised from {resolved_runs} to {spec.min_runs} "
            f"({name} needs at least {spec.min_runs} runs for stable rates)"
        )
        resolved_runs = spec.min_runs
    if not spec.supports_workers and workers != 1:
        notes.append(
            f"--workers ignored ({name} runs in-process; a pool would only "
            "pay start-up cost)"
        )

    with profiler.phase("build"):
        params = spec.resolved_params(quick=quick, **param_overrides)
    call_kwargs: dict[str, object] = dict(params, runs=resolved_runs, seed=seed)
    if spec.supports_workers:
        call_kwargs["progress"] = progress
        call_kwargs["workers"] = workers
    if scenario is not None:
        call_kwargs["scenario"] = scenario
    if protocols is not None:
        call_kwargs["protocols"] = protocols
    if plan is not None:
        call_kwargs["plan"] = plan
    if streaming is not None:
        call_kwargs["streaming"] = streaming
    if checkpoint is not None:
        call_kwargs["checkpoint"] = checkpoint
    if trace is not None:
        call_kwargs["trace"] = trace

    # Phase timings are run *metadata* (how long each stage took on this
    # machine), never an input to the simulation; the Profiler lives in the
    # wall-clock-allowlisted repro.obs.profiling module.  elapsed_s keeps its
    # historical meaning: the sweep itself, excluding report rendering.
    with profiler.phase("sweep"):
        with engine_registry.using_engine(engine) as resolved_engine:
            result = spec.run(**call_kwargs)
    with profiler.phase("report"):
        report = spec.reporter(result)
    elapsed_s = profiler.elapsed("sweep")

    # Recorded provenance: the declared defaults, with any parameter a
    # supplied capability value supersedes dropped (the archived metadata
    # must not claim a grid the run never executed), and capability values
    # recorded only when they were actually passed.
    parameters = dict(params)
    for option, value in (
        ("scenario", scenario),
        ("protocols", protocols),
        ("plan", plan),
        ("streaming", streaming),
        ("trace", trace),
    ):
        if value is not None:
            superseded = spec.capability_overrides.get(option)
            if superseded is not None:
                parameters.pop(superseded, None)
            parameters[option] = value
    if checkpoint is not None:
        parameters["checkpoint"] = str(checkpoint)
    return ExperimentRun(
        name=name,
        title=spec.title,
        result=result,
        report=report,
        runs=resolved_runs,
        seed=seed,
        quick=quick,
        workers=workers if spec.supports_workers else None,
        elapsed_s=elapsed_s,
        parameters=parameters,
        notes=tuple(notes),
        engine=resolved_engine,
        profile=profiler.snapshot(),
    )


# ---------------------------------------------------------------------- #
# Registry tables (--list, EXPERIMENTS.md)
# ---------------------------------------------------------------------- #
#: Column headers shared by the --list table and the Markdown docs table.
_TABLE_HEADERS = (
    "name",
    "title",
    "paper ref",
    "capabilities",
    "default runs",
    "quick overrides",
)


def _params_cell(params) -> str:
    if not params:
        return "-"
    return ", ".join(f"{key}={value!r}" for key, value in sorted(params.items()))


def _capabilities_cell(spec: ExperimentSpec) -> str:
    extras = list(spec.capabilities)
    if not spec.supports_workers:
        extras.append("no-workers")
    return ", ".join(extras) if extras else "-"


def _table_rows() -> list[list[str]]:
    """One row of cells per registered spec (shared by both renderers)."""
    rows = []
    for spec in specs():
        runs_cell = str(spec.default_runs)
        if spec.min_runs is not None:
            runs_cell += f" (min {spec.min_runs})"
        rows.append(
            [
                spec.name,
                spec.title,
                spec.paper_ref,
                _capabilities_cell(spec),
                runs_cell,
                _params_cell(spec.quick_params),
            ]
        )
    return rows


def registry_table() -> str:
    """The plain-text registry table printed by ``--list``."""
    rows = _table_rows()
    return render_table(
        headers=list(_TABLE_HEADERS),
        rows=rows,
        title=f"Registered experiments ({len(rows)})",
    )


def registry_table_markdown() -> str:
    """The registry as a Markdown table (embedded in EXPERIMENTS.md).

    A test pins the EXPERIMENTS.md copy against this output, so the docs
    cannot drift from the registry.
    """
    lines = [
        "| " + " | ".join(_TABLE_HEADERS) + " |",
        "| " + " | ".join("---" for _ in _TABLE_HEADERS) + " |",
    ]
    for name, *cells in _table_rows():
        escaped = [cell.replace("|", "\\|") for cell in cells]
        lines.append("| " + " | ".join([f"`{name}`", *escaped]) + " |")
    return "\n".join(lines)

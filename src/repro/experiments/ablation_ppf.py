"""Ablation: how much of ESCAPE's benefit comes from the PPF?

This experiment is not a paper figure; it isolates the design choice the paper
motivates in Section IV-B.  Z-Raft already *is* "SCA without PPF", so the
ablation compares Z-Raft and full ESCAPE under increasing broadcast loss with
an active client workload.  The expectation (and the paper's narrative in
Section VI-D) is that the two are indistinguishable at Δ=0 and diverge as the
statically privileged servers fall behind in log replication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster.scenarios import ElectionScenario
from repro.experiments.base import ProgressCallback, run_scenario_set
from repro.metrics.records import MeasurementSet
from repro.metrics.stats import reduction_percent
from repro.metrics.tables import render_table

DEFAULT_SIZE = 20
DEFAULT_LOSS_RATES: tuple[float, ...] = (0.0, 0.2, 0.4)
PROTOCOLS: tuple[str, ...] = ("zraft", "escape")


@dataclass(frozen=True)
class PpfAblationResult:
    """Measurements per (protocol, loss rate) at one cluster size."""

    cluster_size: int
    loss_rates: tuple[float, ...]
    runs: int
    by_label: Mapping[str, MeasurementSet]

    def measurements_for(self, protocol: str, loss_rate: float) -> MeasurementSet:
        return self.by_label[cell_label(protocol, loss_rate)]

    def average_for(self, protocol: str, loss_rate: float) -> float:
        return self.measurements_for(protocol, loss_rate).mean_total_ms()

    def ppf_benefit_percent(self, loss_rate: float) -> float:
        """Reduction of ESCAPE (with PPF) vs Z-Raft (without PPF)."""
        return reduction_percent(
            self.average_for("zraft", loss_rate),
            self.average_for("escape", loss_rate),
        )


def cell_label(protocol: str, loss_rate: float) -> str:
    return f"{protocol}/loss{int(round(loss_rate * 100))}"


def build_scenarios(
    cluster_size: int = DEFAULT_SIZE,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
) -> dict[str, ElectionScenario]:
    scenarios: dict[str, ElectionScenario] = {}
    for loss_rate in loss_rates:
        for protocol in PROTOCOLS:
            scenarios[cell_label(protocol, loss_rate)] = ElectionScenario(
                protocol=protocol,
                cluster_size=cluster_size,
                loss_rate=loss_rate,
                workload_interval_ms=50.0,
                pre_crash_ms=2_000.0,
            )
    return scenarios


def run(
    runs: int = 30,
    seed: int = 0,
    cluster_size: int = DEFAULT_SIZE,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
) -> PpfAblationResult:
    """Execute the PPF ablation sweep (optionally fanned out over *workers*)."""
    scenarios = build_scenarios(cluster_size, loss_rates)
    by_label = run_scenario_set(
        scenarios, runs=runs, seed=seed, progress=progress, workers=workers
    )
    return PpfAblationResult(
        cluster_size=cluster_size,
        loss_rates=tuple(loss_rates),
        runs=runs,
        by_label=by_label,
    )


def report(result: PpfAblationResult) -> str:
    rows = []
    for loss_rate in result.loss_rates:
        rows.append(
            [
                f"{loss_rate * 100:.0f}%",
                f"{result.average_for('zraft', loss_rate):.0f}",
                f"{result.average_for('escape', loss_rate):.0f}",
                f"{result.ppf_benefit_percent(loss_rate):.1f}%",
            ]
        )
    return render_table(
        headers=["loss Δ", "SCA only / Z-Raft (ms)", "SCA+PPF / ESCAPE (ms)", "PPF benefit"],
        rows=rows,
        title=(
            f"Ablation — contribution of the PPF at {result.cluster_size} servers "
            f"({result.runs} runs per cell)"
        ),
    )

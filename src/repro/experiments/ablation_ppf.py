"""Ablation: how much of ESCAPE's benefit comes from the PPF?

This experiment is not a paper figure; it isolates the design choice the paper
motivates in Section IV-B.  The registry makes the ablation first-class: the
``escape-noppf`` protocol is full ESCAPE with the Probing Patrol disabled, so
the cleanest comparison is ``escape-noppf`` vs ``escape`` under increasing
broadcast loss with an active client workload.  Z-Raft rides along as the
historical stand-in ("SCA without PPF" with plain Raft wire messages).  The
expectation (and the paper's narrative in Section VI-D) is that the variants
are indistinguishable at Δ=0 and diverge as the statically privileged servers
fall behind in log replication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import protocols as protocol_registry
from repro.cluster.scenarios import ElectionScenario
from repro.experiments.base import ProgressCallback, run_scenario_set
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, ExporterBinding
from repro.metrics.records import MeasurementSet
from repro.metrics.stats import reduction_percent
from repro.metrics.tables import render_table

DEFAULT_SIZE = 20
DEFAULT_LOSS_RATES: tuple[float, ...] = (0.0, 0.2, 0.4)

#: The ablation grid: two no-PPF baselines against full ESCAPE.
PROTOCOLS: tuple[str, ...] = protocol_registry.validated(
    "zraft", "escape-noppf", "escape"
)


@dataclass(frozen=True)
class PpfAblationResult:
    """Measurements per (protocol, loss rate) at one cluster size."""

    cluster_size: int
    loss_rates: tuple[float, ...]
    runs: int
    by_label: Mapping[str, MeasurementSet]
    protocols: tuple[str, ...] = PROTOCOLS

    def measurements_for(self, protocol: str, loss_rate: float) -> MeasurementSet:
        return self.by_label[cell_label(protocol, loss_rate)]

    def average_for(self, protocol: str, loss_rate: float) -> float:
        return self.measurements_for(protocol, loss_rate).mean_total_ms()

    def no_ppf_baseline(self) -> str:
        """The no-PPF protocol the benefit is measured against.

        ``escape-noppf`` when it is part of the sweep (the exact ablation),
        otherwise ``zraft`` (the historical stand-in).
        """
        return "escape-noppf" if "escape-noppf" in self.protocols else "zraft"

    def ppf_benefit_percent(self, loss_rate: float) -> float:
        """Reduction of full ESCAPE vs the no-PPF baseline."""
        return reduction_percent(
            self.average_for(self.no_ppf_baseline(), loss_rate),
            self.average_for("escape", loss_rate),
        )


def cell_label(protocol: str, loss_rate: float) -> str:
    return f"{protocol}/loss{int(round(loss_rate * 100))}"


def build_scenarios(
    cluster_size: int = DEFAULT_SIZE,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    protocols: Sequence[str] = PROTOCOLS,
) -> dict[str, ElectionScenario]:
    scenarios: dict[str, ElectionScenario] = {}
    for loss_rate in loss_rates:
        for protocol in protocols:
            scenarios[cell_label(protocol, loss_rate)] = ElectionScenario(
                protocol=protocol,
                cluster_size=cluster_size,
                loss_rate=loss_rate,
                workload_interval_ms=50.0,
                pre_crash_ms=2_000.0,
            )
    return scenarios


def run(
    runs: int = 30,
    seed: int = 0,
    cluster_size: int = DEFAULT_SIZE,
    loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
    protocols: Sequence[str] = PROTOCOLS,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
) -> PpfAblationResult:
    """Execute the PPF ablation sweep (optionally fanned out over *workers*)."""
    scenarios = build_scenarios(cluster_size, loss_rates, protocols)
    by_label = run_scenario_set(
        scenarios, runs=runs, seed=seed, progress=progress, workers=workers
    )
    return PpfAblationResult(
        cluster_size=cluster_size,
        loss_rates=tuple(loss_rates),
        runs=runs,
        by_label=by_label,
        protocols=tuple(protocols),
    )


def report(result: PpfAblationResult) -> str:
    headers = ["loss Δ"]
    headers += [
        f"{protocol_registry.title(protocol)} (ms)"
        for protocol in result.protocols
    ]
    with_benefit = "escape" in result.protocols and (
        result.no_ppf_baseline() in result.protocols
    )
    if with_benefit:
        headers.append("PPF benefit")
    rows = []
    for loss_rate in result.loss_rates:
        row = [f"{loss_rate * 100:.0f}%"]
        row += [
            f"{result.average_for(protocol, loss_rate):.0f}"
            for protocol in result.protocols
        ]
        if with_benefit:
            row.append(f"{result.ppf_benefit_percent(loss_rate):.1f}%")
        rows.append(row)
    return render_table(
        headers=headers,
        rows=rows,
        title=(
            f"Ablation — contribution of the PPF at {result.cluster_size} servers "
            f"({result.runs} runs per cell)"
        ),
    )


def _export_measurements(result: PpfAblationResult) -> Mapping[str, MeasurementSet]:
    """Exporter binding: the per-(protocol, loss) measurement sets."""
    return result.by_label


SPEC = register(
    ExperimentSpec(
        name="ablation-ppf",
        title="Ablation: contribution of the Probing Patrol (PPF)",
        paper_ref="Section IV-B (ablation)",
        description=(
            "escape-noppf and zraft vs full ESCAPE under growing broadcast "
            "loss: how much of the win is the patrol"
        ),
        run=run,
        reporter=report,
        default_runs=30,
        params={"cluster_size": DEFAULT_SIZE, "loss_rates": DEFAULT_LOSS_RATES},
        supports_protocols=True,
        exporter=ExporterBinding(kind="election", extract=_export_measurements),
    )
)

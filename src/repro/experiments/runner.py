"""Parallel sweep execution engine for the experiment modules.

Every figure of the paper is reproduced by running thousands of independent
leader-election episodes.  Each episode is a pure function of
``(scenario, seed)`` (see :mod:`repro.common.rng`), so the sweep fans out
perfectly: this module splits a scenario mapping into ``(label, run index)``
work items, executes them across a :mod:`multiprocessing` pool, and streams
the per-run :class:`~repro.metrics.records.ElectionMeasurement`\\ s back to the
parent for aggregation into :class:`~repro.metrics.records.MeasurementSet`\\ s.

Determinism is preserved bit-for-bit: seeds are derived by exactly the same
per-``(label, index)`` scheme as the sequential path (one shared helper,
:func:`repro.experiments.base.paired_seeds`), workers never share random
state, and results are re-assembled in ``(label, index)`` order regardless of
completion order.  ``run_sweep(..., workers=4)`` therefore returns the same
measurement sets as ``workers=1``, which a regression test pins.

``workers=1`` (the default) and platforms without a usable ``fork``/``spawn``
pool fall through to an in-process loop that shares the same work-item and
aggregation code path.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro import protocols
from repro.cluster.scenarios import ElectionScenario
from repro.common.errors import SweepError
from repro.experiments.base import ProgressCallback, paired_seeds
from repro.metrics.records import ElectionMeasurement, MeasurementSet
from repro.protocols import ProtocolSpec
from repro.sim import engines
from repro.sim.engines import EngineSpec

__all__ = [
    "SetFactory",
    "SweepItem",
    "build_work_items",
    "resolve_workers",
    "run_sweep",
]

#: Builds one per-label result container from ``(measurements, label)``.
#: :class:`MeasurementSet` fits election sweeps; the availability experiment
#: passes :class:`~repro.metrics.records.AvailabilitySet` so its records land
#: in a container whose API actually matches them.
SetFactory = Callable[[Iterable, str], object]


@dataclass(frozen=True)
class SweepItem:
    """One unit of sweep work: a single seeded episode of one scenario."""

    label: str
    index: int
    seed: int
    scenario: ElectionScenario


def build_work_items(
    scenarios: Mapping[str, ElectionScenario], runs: int, seed: int
) -> list[SweepItem]:
    """Expand a scenario mapping into per-``(label, index)`` work items.

    Seed derivation delegates to :func:`repro.experiments.base.paired_seeds`
    so the parallel engine and the paired A/B helpers can never drift apart.
    """
    items: list[SweepItem] = []
    for label, scenario in scenarios.items():
        for index, run_seed in enumerate(paired_seeds(runs, seed, label)):
            items.append(SweepItem(label, index, run_seed, scenario))
    return items


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request (``None`` means one per CPU)."""
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise SweepError(f"workers must be >= 1 (or None for auto), got {workers}")
    return workers


def _execute_item(
    item: SweepItem,
) -> tuple[str, int, ElectionMeasurement | None, str | None]:
    """Run one work item; exceptions come back as strings (pool-safe)."""
    try:
        return item.label, item.index, item.scenario.run(item.seed), None
    except Exception as exc:  # noqa: BLE001 - re-raised as SweepError in parent
        return item.label, item.index, None, f"{type(exc).__name__}: {exc}"


def _swept_specs(scenarios: Mapping[str, ElectionScenario]) -> tuple[ProtocolSpec, ...]:
    """The protocol specs the sweep's scenarios resolve to (deduplicated).

    Duck-typed scenario stubs (the runner's tests use them) may carry no
    ``protocol`` at all, and only names the parent actually has registered
    can be shipped -- anything else fails in the worker exactly as it would
    have in the parent.
    """
    names = {
        getattr(scenario, "protocol", None) for scenario in scenarios.values()
    }
    return tuple(
        protocols.get(name)
        for name in sorted(name for name in names if name is not None)
        if protocols.is_registered(name)
    )


def _swept_engine_specs(
    scenarios: Mapping[str, ElectionScenario],
) -> tuple[EngineSpec, ...]:
    """The engine specs named by the sweep's scenarios (deduplicated).

    Mirrors :func:`_swept_specs`: a scenario may pin a custom engine the
    parent registered at runtime, which ``spawn`` workers would not know.
    """
    names = {getattr(scenario, "engine", "") for scenario in scenarios.values()}
    names.add(engines.default_engine_name())
    return tuple(
        engines.get(name)
        for name in sorted(name for name in names if name)
        if engines.is_registered(name)
    )


def _register_worker_specs(
    specs: tuple[ProtocolSpec, ...],
    engine_specs: tuple[EngineSpec, ...] = (),
    default_engine: str | None = None,
) -> None:
    """Pool initializer: mirror the parent's protocol and engine registrations.

    ``spawn`` workers re-import :mod:`repro.protocols` and therefore only see
    the built-in registrations; any custom spec the parent registered would
    make ``build_cluster`` fail with "unknown protocol" inside the worker.
    Specs pickle by reference, so shipping them through the initializer keeps
    registry-driven sweeps working on every start method.  Registration uses
    ``replace=True`` so a built-in the parent *replaced* is mirrored too
    (under ``fork`` the worker inherits the parent registry and this is a
    no-op).

    The parent's *resolved* default engine travels the same way: scenarios
    with an empty ``engine`` field resolve against the worker's process
    default, so without this a ``spawn`` worker would silently fall back to
    ``"classic"`` even when the parent selected ``--engine flat``.  Engines
    are bit-identical by contract, so this is a performance guarantee, not a
    correctness one.
    """
    for spec in specs:
        protocols.register(spec, replace=True)
    for engine_spec in engine_specs:
        engines.register(engine_spec, replace=True)
    if default_engine is not None:
        engines.set_default_engine(default_engine)


def _pool_context() -> multiprocessing.context.BaseContext | None:
    """The process-pool context to use, or ``None`` to stay in-process.

    ``fork`` is preferred where it is safe (cheap start-up, no re-import);
    on macOS ``fork`` is unsafe once system frameworks are loaded (CPython
    switched the platform default to ``spawn`` for that reason), so there
    ``spawn`` comes first.  Platforms offering neither run sequentially.
    """
    preferred = ("spawn", "fork") if sys.platform == "darwin" else ("fork", "spawn")
    methods = multiprocessing.get_all_start_methods()
    for method in preferred:
        if method in methods:
            return multiprocessing.get_context(method)
    return None


class _SweepAccounting:
    """Collects streamed results and drives the progress callback.

    Results may arrive in any order from the pool; they are slotted by
    ``(label, index)`` so the final measurement sets are order-independent,
    while progress is reported as monotonically increasing per-label counts.
    """

    def __init__(
        self,
        scenarios: Mapping[str, ElectionScenario],
        runs: int,
        progress: ProgressCallback | None,
        set_factory: SetFactory = MeasurementSet,
    ) -> None:
        self._runs = runs
        self._progress = progress
        self._set_factory = set_factory
        self._slots: dict[str, list[ElectionMeasurement | None]] = {
            label: [None] * runs for label in scenarios
        }
        self._done: dict[str, int] = {label: 0 for label in scenarios}

    def record(
        self,
        label: str,
        index: int,
        measurement: ElectionMeasurement | None,
        error: str | None,
    ) -> None:
        if error is not None:
            raise SweepError(f"scenario {label!r} run {index} failed: {error}")
        self._slots[label][index] = measurement
        self._done[label] += 1
        if self._progress is not None:
            self._progress(label, self._done[label], self._runs)

    def results(self) -> dict[str, MeasurementSet]:
        sets: dict[str, MeasurementSet] = {}
        for label, slots in self._slots.items():
            missing = [index for index, slot in enumerate(slots) if slot is None]
            if missing:
                raise SweepError(
                    f"scenario {label!r} lost runs {missing}; "
                    "a worker probably died without reporting"
                )
            sets[label] = self._set_factory(slots, label)
        return sets


def _chunk_size(item_count: int, workers: int) -> int:
    """Pool chunk size: enough chunks per worker to balance uneven episodes."""
    return max(1, item_count // (workers * 8))


def run_sweep(
    scenarios: Mapping[str, ElectionScenario],
    runs: int,
    seed: int = 0,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
    set_factory: SetFactory = MeasurementSet,
) -> dict[str, MeasurementSet]:
    """Run every scenario *runs* times, fanned out over *workers* processes.

    Args:
        scenarios: label -> scenario mapping (label order is preserved in the
            result, matching the sequential path).
        runs: independent episodes per scenario.
        seed: root seed for the per-``(label, index)`` derivation.
        progress: optional callback invoked as ``progress(label, done,
            runs)`` each time one episode of *label* finishes.  Per-label
            counts are monotonic; interleaving across labels is
            completion-ordered when ``workers > 1``.
        workers: process count; ``1`` runs in-process, ``None`` uses one
            worker per CPU.
        set_factory: builds each per-label container from ``(measurements,
            label)``; scenarios whose ``run(seed)`` returns something other
            than an :class:`ElectionMeasurement` pass a matching container
            (the availability experiment passes ``AvailabilitySet``).

    Returns:
        One container per scenario label, with measurements in run-index
        order -- identical contents for every worker count.
    """
    workers = resolve_workers(workers)
    items = build_work_items(scenarios, runs, seed)
    accounting = _SweepAccounting(scenarios, runs, progress, set_factory)
    context = _pool_context() if workers > 1 and len(items) > 1 else None

    if context is None:
        # In-process there is no pickling boundary, so keep the original
        # exception chained (`from exc`) instead of stringifying it -- the
        # failing frame's traceback survives into the SweepError.
        for item in items:
            try:
                measurement = item.scenario.run(item.seed)
            except Exception as exc:
                raise SweepError(
                    f"scenario {item.label!r} run {item.index} failed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            accounting.record(item.label, item.index, measurement, None)
        return accounting.results()

    with context.Pool(
        processes=min(workers, len(items)),
        initializer=_register_worker_specs,
        initargs=(
            _swept_specs(scenarios),
            _swept_engine_specs(scenarios),
            engines.default_engine_name(),
        ),
    ) as pool:
        for outcome in pool.imap_unordered(
            _execute_item, items, chunksize=_chunk_size(len(items), workers)
        ):
            accounting.record(*outcome)
    return accounting.results()

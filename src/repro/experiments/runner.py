"""Parallel sweep execution engine for the experiment modules.

Every figure of the paper is reproduced by running thousands of independent
leader-election episodes.  Each episode is a pure function of
``(scenario, seed)`` (see :mod:`repro.common.rng`), so the sweep fans out
perfectly: this module splits a scenario mapping into ``(label, run index)``
work items, executes them across a :mod:`multiprocessing` pool, and
aggregates the per-run :class:`~repro.metrics.records.ElectionMeasurement`\\ s
in the parent.

Two data paths share the work-item layer:

* **raw** (the default) -- every measurement travels back to the parent and
  lands in a :class:`~repro.metrics.records.MeasurementSet`; experiments that
  need episode-level records keep using this.
* **streaming** (``streaming=True``) -- workers execute whole chunks and
  return one mergeable partial aggregate per label per chunk
  (:class:`~repro.metrics.streaming.ElectionAggregate`), cutting IPC by the
  chunk factor and keeping parent memory O(labels) instead of O(runs).
  Partials merge in chunk-index order, so results are bit-identical at any
  worker count, and each completed chunk can be persisted to a JSON-lines
  checkpoint (:mod:`repro.experiments.checkpoint`) from which a killed sweep
  resumes bit-identically.

Work items are lean ``(label, index, seed)`` triples: the label -> scenario
table ships **once** per worker through the pool initializer instead of being
pickled into every item.  Items are interleaved across labels before
chunking (run 0 of every label, then run 1, ...), so a size-mixed sweep like
fig9-xl -- where an s=1024 episode costs ~1000x an s=8 one -- never ends on a
straggler chunk of only-huge episodes.

Determinism is preserved bit-for-bit: seeds are derived by exactly the same
per-``(label, index)`` scheme as the sequential path (one shared helper,
:func:`repro.experiments.base.paired_seeds`), workers never share random
state, and aggregation order is fixed (slot order for the raw path, chunk
order for the streaming path) regardless of completion order.
``run_sweep(..., workers=4)`` therefore returns the same results as
``workers=1``, which regression tests pin for both paths.

``workers=1`` (the default) and platforms without a usable ``fork``/``spawn``
pool fall through to an in-process loop that shares the same work-item and
aggregation code path.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro import protocols
from repro.cluster.scenarios import ElectionScenario
from repro.common.errors import SweepError
from repro.experiments.base import ProgressCallback, paired_seeds
from repro.experiments.checkpoint import SweepCheckpoint, checkpoint_fingerprint
from repro.metrics.records import ElectionMeasurement, MeasurementSet
from repro.metrics.streaming import ElectionAggregate
from repro.protocols import ProtocolSpec
from repro.sim import engines
from repro.sim.engines import EngineSpec

__all__ = [
    "AggregateFactory",
    "MAX_CHUNK_ITEMS",
    "SetFactory",
    "SweepChunk",
    "SweepItem",
    "build_chunks",
    "build_work_items",
    "resolve_workers",
    "run_sweep",
    "streaming_chunk_size",
]

#: Builds one per-label result container from ``(measurements, label)``.
#: :class:`MeasurementSet` fits election sweeps; the availability experiment
#: passes :class:`~repro.metrics.records.AvailabilitySet` so its records land
#: in a container whose API actually matches them.
SetFactory = Callable[[Iterable, str], object]

#: Builds one empty mergeable aggregate for a label.  The default,
#: :class:`~repro.metrics.streaming.ElectionAggregate`, fits election sweeps;
#: any replacement must provide ``add(measurement)``, ``merge(other)`` and
#: ``__len__`` (plus ``to_state``/``from_state`` when checkpointing).
AggregateFactory = Callable[[str], object]

#: Upper bound on items per chunk.  Chunking amortises per-item IPC, but a
#: chunk is also the unit of load balancing (and of checkpointing), so in a
#: size-mixed sweep an unbounded chunk would serialise many expensive
#: episodes behind one worker.
MAX_CHUNK_ITEMS = 64


@dataclass(frozen=True)
class SweepItem:
    """One unit of sweep work: a single seeded episode of one scenario.

    Deliberately lean -- the scenario itself is *not* embedded; workers
    resolve ``label`` against the scenario table the pool initializer
    installed once per process, so the task queue carries three scalars per
    episode instead of a pickled scenario.
    """

    label: str
    index: int
    seed: int


@dataclass(frozen=True)
class SweepChunk:
    """A contiguous slice of the interleaved work-item list.

    The streaming path's unit of execution, aggregation, and checkpointing:
    workers return one partial aggregate per label per chunk, and the parent
    merges chunks strictly in ``chunk_id`` order.
    """

    chunk_id: int
    items: tuple[SweepItem, ...]


def build_work_items(
    scenarios: Mapping[str, ElectionScenario], runs: int, seed: int
) -> list[SweepItem]:
    """Expand a scenario mapping into per-``(label, index)`` work items.

    Seed derivation delegates to :func:`repro.experiments.base.paired_seeds`
    so the parallel engine and the paired A/B helpers can never drift apart.

    Items are interleaved across labels (run 0 of every label, then run 1,
    ...) so that chunking a size-mixed sweep yields chunks of roughly equal
    cost instead of label-major runs of only-cheap or only-expensive
    episodes.
    """
    seeds = {label: paired_seeds(runs, seed, label) for label in scenarios}
    items: list[SweepItem] = []
    for index in range(runs):
        for label in scenarios:
            items.append(SweepItem(label, index, seeds[label][index]))
    return items


def build_chunks(items: list[SweepItem], chunk_size: int) -> list[SweepChunk]:
    """Partition the interleaved item list into fixed-size chunks."""
    if chunk_size < 1:
        raise SweepError(f"chunk size must be >= 1, got {chunk_size}")
    return [
        SweepChunk(chunk_id, tuple(items[start : start + chunk_size]))
        for chunk_id, start in enumerate(range(0, len(items), chunk_size))
    ]


def streaming_chunk_size(item_count: int) -> int:
    """Chunk size for the streaming path.

    Deliberately **independent of the worker count**: the chunk partition
    fixes the aggregate merge tree, so making it worker-free keeps streaming
    results bit-identical at any ``--workers`` value (and lets a checkpoint
    written under one worker count resume under another).
    """
    return max(1, min(MAX_CHUNK_ITEMS, item_count // 16))


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request (``None`` means one per CPU)."""
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise SweepError(f"workers must be >= 1 (or None for auto), got {workers}")
    return workers


# --------------------------------------------------------------------------- #
# Worker-side state and execution
# --------------------------------------------------------------------------- #

#: Per-worker scenario table, installed once by the pool initializer so work
#: items never carry (and the task queue never re-pickles) scenarios.
_WORKER_SCENARIOS: Mapping[str, ElectionScenario] = {}

#: Per-worker aggregate factory for the streaming path.
_WORKER_AGGREGATE_FACTORY: AggregateFactory = ElectionAggregate


def _execute_item(
    item: SweepItem,
) -> tuple[str, int, ElectionMeasurement | None, str | None]:
    """Run one work item; exceptions come back as strings (pool-safe)."""
    try:
        scenario = _WORKER_SCENARIOS[item.label]
        return item.label, item.index, scenario.run(item.seed), None
    except Exception as exc:  # noqa: BLE001 - re-raised as SweepError in parent
        return item.label, item.index, None, f"{type(exc).__name__}: {exc}"


def _aggregate_chunk(
    chunk: SweepChunk,
    scenarios: Mapping[str, ElectionScenario],
    aggregate_factory: AggregateFactory,
) -> dict[str, object]:
    """Execute one chunk and fold its episodes into per-label partials."""
    partials: dict[str, object] = {}
    for item in chunk.items:
        measurement = scenarios[item.label].run(item.seed)
        partial = partials.get(item.label)
        if partial is None:
            partials[item.label] = partial = aggregate_factory(item.label)
        partial.add(measurement)
    return partials


def _execute_chunk(
    chunk: SweepChunk,
) -> tuple[int, dict[str, object] | None, str | None]:
    """Run one chunk in a pool worker; exceptions come back as strings."""
    try:
        partials = _aggregate_chunk(
            chunk, _WORKER_SCENARIOS, _WORKER_AGGREGATE_FACTORY
        )
        return chunk.chunk_id, partials, None
    except Exception as exc:  # noqa: BLE001 - re-raised as SweepError in parent
        return chunk.chunk_id, None, f"{type(exc).__name__}: {exc}"


def _swept_specs(scenarios: Mapping[str, ElectionScenario]) -> tuple[ProtocolSpec, ...]:
    """The protocol specs the sweep's scenarios resolve to (deduplicated).

    Duck-typed scenario stubs (the runner's tests use them) may carry no
    ``protocol`` at all, and only names the parent actually has registered
    can be shipped -- anything else fails in the worker exactly as it would
    have in the parent.
    """
    names = {
        getattr(scenario, "protocol", None) for scenario in scenarios.values()
    }
    return tuple(
        protocols.get(name)
        for name in sorted(name for name in names if name is not None)
        if protocols.is_registered(name)
    )


def _swept_engine_specs(
    scenarios: Mapping[str, ElectionScenario],
) -> tuple[EngineSpec, ...]:
    """The engine specs named by the sweep's scenarios (deduplicated).

    Mirrors :func:`_swept_specs`: a scenario may pin a custom engine the
    parent registered at runtime, which ``spawn`` workers would not know.
    """
    names = {getattr(scenario, "engine", "") for scenario in scenarios.values()}
    names.add(engines.default_engine_name())
    return tuple(
        engines.get(name)
        for name in sorted(name for name in names if name)
        if engines.is_registered(name)
    )


def _register_worker_specs(
    specs: tuple[ProtocolSpec, ...],
    engine_specs: tuple[EngineSpec, ...] = (),
    default_engine: str | None = None,
    scenarios: Mapping[str, ElectionScenario] | None = None,
    aggregate_factory: AggregateFactory | None = None,
) -> None:
    """Pool initializer: mirror the parent's registries and scenario table.

    ``spawn`` workers re-import :mod:`repro.protocols` and therefore only see
    the built-in registrations; any custom spec the parent registered would
    make ``build_cluster`` fail with "unknown protocol" inside the worker.
    Specs pickle by reference, so shipping them through the initializer keeps
    registry-driven sweeps working on every start method.  Registration uses
    ``replace=True`` so a built-in the parent *replaced* is mirrored too
    (under ``fork`` the worker inherits the parent registry and this is a
    no-op).

    The parent's *resolved* default engine travels the same way: scenarios
    with an empty ``engine`` field resolve against the worker's process
    default, so without this a ``spawn`` worker would silently fall back to
    ``"classic"`` even when the parent selected ``--engine flat``.  Engines
    are bit-identical by contract, so this is a performance guarantee, not a
    correctness one.

    The label -> scenario table also rides in here exactly once per worker:
    work items then only carry ``(label, index, seed)``, which shrinks the
    task-queue pickle traffic by the full scenario size per episode.
    """
    for spec in specs:
        protocols.register(spec, replace=True)
    for engine_spec in engine_specs:
        engines.register(engine_spec, replace=True)
    if default_engine is not None:
        engines.set_default_engine(default_engine)
    if scenarios is not None:
        global _WORKER_SCENARIOS
        _WORKER_SCENARIOS = scenarios
    if aggregate_factory is not None:
        global _WORKER_AGGREGATE_FACTORY
        _WORKER_AGGREGATE_FACTORY = aggregate_factory


def _pool_context() -> multiprocessing.context.BaseContext | None:
    """The process-pool context to use, or ``None`` to stay in-process.

    ``fork`` is preferred where it is safe (cheap start-up, no re-import);
    on macOS ``fork`` is unsafe once system frameworks are loaded (CPython
    switched the platform default to ``spawn`` for that reason), so there
    ``spawn`` comes first.  Platforms offering neither run sequentially.
    """
    preferred = ("spawn", "fork") if sys.platform == "darwin" else ("fork", "spawn")
    methods = multiprocessing.get_all_start_methods()
    for method in preferred:
        if method in methods:
            return multiprocessing.get_context(method)
    return None


def _make_pool(
    context: multiprocessing.context.BaseContext,
    workers: int,
    scenarios: Mapping[str, ElectionScenario],
    aggregate_factory: AggregateFactory | None,
):
    """A pool whose workers carry the parent's registries + scenario table."""
    return context.Pool(
        processes=workers,
        initializer=_register_worker_specs,
        initargs=(
            _swept_specs(scenarios),
            _swept_engine_specs(scenarios),
            engines.default_engine_name(),
            dict(scenarios),
            aggregate_factory,
        ),
    )


# --------------------------------------------------------------------------- #
# Raw-measurement accounting (the original path)
# --------------------------------------------------------------------------- #


class _SweepAccounting:
    """Collects streamed results and drives the progress callback.

    Results may arrive in any order from the pool; they are slotted by
    ``(label, index)`` so the final measurement sets are order-independent,
    while progress is reported as monotonically increasing per-label counts.
    """

    def __init__(
        self,
        scenarios: Mapping[str, ElectionScenario],
        runs: int,
        progress: ProgressCallback | None,
        set_factory: SetFactory = MeasurementSet,
    ) -> None:
        self._runs = runs
        self._progress = progress
        self._set_factory = set_factory
        self._slots: dict[str, list[ElectionMeasurement | None]] = {
            label: [None] * runs for label in scenarios
        }
        self._done: dict[str, int] = {label: 0 for label in scenarios}

    def record(
        self,
        label: str,
        index: int,
        measurement: ElectionMeasurement | None,
        error: str | None,
    ) -> None:
        if error is not None:
            raise SweepError(f"scenario {label!r} run {index} failed: {error}")
        self._slots[label][index] = measurement
        self._done[label] += 1
        if self._progress is not None:
            self._progress(label, self._done[label], self._runs)

    def results(self) -> dict[str, MeasurementSet]:
        sets: dict[str, MeasurementSet] = {}
        for label, slots in self._slots.items():
            missing = [index for index, slot in enumerate(slots) if slot is None]
            if missing:
                raise SweepError(
                    f"scenario {label!r} lost runs {missing}; "
                    "a worker probably died without reporting"
                )
            sets[label] = self._set_factory(slots, label)
        return sets


# --------------------------------------------------------------------------- #
# Streaming accounting (O(labels) parent memory)
# --------------------------------------------------------------------------- #


class _StreamingAccounting:
    """Merges per-chunk partial aggregates strictly in chunk-index order.

    Chunks complete in arbitrary order under a pool; out-of-order arrivals
    are buffered (bounded by the number of in-flight chunks) and folded in
    as soon as the next expected chunk lands.  Fixing the merge order fixes
    the aggregate merge tree, which is what makes streaming results
    bit-identical across worker counts and checkpoint resumes.  Parent
    memory is O(labels): one running aggregate per label, never an episode
    list.
    """

    def __init__(
        self,
        scenarios: Mapping[str, ElectionScenario],
        runs: int,
        progress: ProgressCallback | None,
        aggregate_factory: AggregateFactory,
        total_chunks: int,
    ) -> None:
        self._runs = runs
        self._progress = progress
        self._total_chunks = total_chunks
        self._aggregates: dict[str, object] = {
            label: aggregate_factory(label) for label in scenarios
        }
        self._done: dict[str, int] = {label: 0 for label in scenarios}
        self._next_chunk = 0
        self._pending: dict[int, Mapping[str, object]] = {}

    def record_chunk(self, chunk_id: int, partials: Mapping[str, object]) -> None:
        if chunk_id in self._pending or chunk_id < self._next_chunk:
            raise SweepError(f"chunk {chunk_id} reported twice")
        self._pending[chunk_id] = partials
        while self._next_chunk in self._pending:
            for label, partial in self._pending.pop(self._next_chunk).items():
                self._aggregates[label].merge(partial)
                self._done[label] += len(partial)
                if self._progress is not None:
                    self._progress(label, self._done[label], self._runs)
            self._next_chunk += 1

    def results(self) -> dict[str, object]:
        if self._next_chunk != self._total_chunks or self._pending:
            raise SweepError(
                f"streaming sweep incomplete: merged {self._next_chunk} of "
                f"{self._total_chunks} chunks"
            )
        for label, done in self._done.items():
            if done != self._runs:
                raise SweepError(
                    f"scenario {label!r} aggregated {done} of {self._runs} "
                    "runs; a worker probably died without reporting"
                )
        return dict(self._aggregates)


def _chunk_size(item_count: int, workers: int) -> int:
    """Raw-path pool chunk size: several chunks per worker, capped.

    The cap matters for size-mixed sweeps (fig9/fig9-xl): an s=1024 episode
    costs ~1000x an s=8 one, so an uncapped ``items // (workers * 8)`` chunk
    of label-adjacent items used to strand one worker with a tail of
    only-expensive episodes.  With interleaved items and the cap, every
    chunk mixes sizes and the tail stays balanced.
    """
    return max(1, min(MAX_CHUNK_ITEMS, item_count // (workers * 8)))


def run_sweep(
    scenarios: Mapping[str, ElectionScenario],
    runs: int,
    seed: int = 0,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
    set_factory: SetFactory = MeasurementSet,
    streaming: bool = False,
    aggregate_factory: AggregateFactory = ElectionAggregate,
    checkpoint: str | os.PathLike | None = None,
) -> dict[str, object]:
    """Run every scenario *runs* times, fanned out over *workers* processes.

    Args:
        scenarios: label -> scenario mapping (label order is preserved in the
            result, matching the sequential path).
        runs: independent episodes per scenario.
        seed: root seed for the per-``(label, index)`` derivation.
        progress: optional callback invoked as ``progress(label, done,
            runs)``; per-label counts are monotonic.  The raw path reports
            per episode, the streaming path per merged chunk.
        workers: process count; ``1`` runs in-process, ``None`` uses one
            worker per CPU.
        set_factory: (raw path) builds each per-label container from
            ``(measurements, label)``.
        streaming: aggregate worker-side into mergeable partials instead of
            shipping every measurement; parent memory drops from O(runs) to
            O(labels) and IPC shrinks by the chunk factor.  Results are
            bit-identical across worker counts.
        aggregate_factory: (streaming path) builds one empty mergeable
            aggregate per label; defaults to
            :class:`~repro.metrics.streaming.ElectionAggregate`.
        checkpoint: (streaming path) directory for the JSON-lines chunk
            checkpoint; completed chunks persist there and a re-run of the
            same sweep resumes bit-identically.

    Returns:
        One container per scenario label: a *set_factory* product (raw path)
        or an *aggregate_factory* product (streaming path) -- identical
        contents for every worker count.
    """
    workers = resolve_workers(workers)
    # Rich reporters (repro.obs.progress.ProgressReporter) learn the full
    # work plan up front through an optional duck-typed hook; plain callbacks
    # keep working untouched.
    sweep_begin = getattr(progress, "sweep_begin", None)
    if sweep_begin is not None:
        sweep_begin(tuple(scenarios), runs, workers)
    if streaming:
        return _run_sweep_streaming(
            scenarios, runs, seed, progress, workers, aggregate_factory, checkpoint
        )
    if checkpoint is not None:
        raise SweepError(
            "checkpointing requires the streaming path; "
            "pass streaming=True alongside checkpoint="
        )

    items = build_work_items(scenarios, runs, seed)
    accounting = _SweepAccounting(scenarios, runs, progress, set_factory)
    context = _pool_context() if workers > 1 and len(items) > 1 else None

    if context is None:
        # In-process there is no pickling boundary, so keep the original
        # exception chained (`from exc`) instead of stringifying it -- the
        # failing frame's traceback survives into the SweepError.
        for item in items:
            try:
                measurement = scenarios[item.label].run(item.seed)
            except Exception as exc:
                raise SweepError(
                    f"scenario {item.label!r} run {item.index} failed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            accounting.record(item.label, item.index, measurement, None)
        return accounting.results()

    with _make_pool(
        context, min(workers, len(items)), scenarios, None
    ) as pool:
        for outcome in pool.imap_unordered(
            _execute_item, items, chunksize=_chunk_size(len(items), workers)
        ):
            accounting.record(*outcome)
    return accounting.results()


def _run_sweep_streaming(
    scenarios: Mapping[str, ElectionScenario],
    runs: int,
    seed: int,
    progress: ProgressCallback | None,
    workers: int,
    aggregate_factory: AggregateFactory,
    checkpoint: str | os.PathLike | None,
) -> dict[str, object]:
    """The streaming data path: chunked execution, ordered partial merges."""
    items = build_work_items(scenarios, runs, seed)
    chunk_size = streaming_chunk_size(len(items))

    ckpt: SweepCheckpoint | None = None
    if checkpoint is not None:
        loader = getattr(aggregate_factory, "from_state", None)
        if loader is None:
            raise SweepError(
                f"aggregate factory {aggregate_factory!r} has no from_state(); "
                "checkpointing needs JSON-able partials"
            )
        ckpt = SweepCheckpoint.open(
            checkpoint,
            fingerprint=checkpoint_fingerprint(
                scenarios, runs, seed, aggregate_factory
            ),
            labels=list(scenarios),
            runs=runs,
            seed=seed,
            chunk_size=chunk_size,
            loader=loader,
        )
        # A resumed file pins the partition it was written with, so a
        # different --workers (or a future heuristic change) can't shift
        # chunk boundaries mid-sweep.
        chunk_size = ckpt.chunk_size

    chunks = build_chunks(items, chunk_size)
    accounting = _StreamingAccounting(
        scenarios, runs, progress, aggregate_factory, len(chunks)
    )

    try:
        restored = ckpt.completed if ckpt is not None else {}
        # Resume-aware reporters get told how much of the work is being
        # replayed from the checkpoint (those episodes complete instantly and
        # must not count toward the episodes/sec rate or the ETA).
        mark_resumed = getattr(progress, "mark_resumed", None)
        if mark_resumed is not None and restored:
            resumed_counts: dict[str, int] = {}
            for partials in restored.values():
                for label, partial in partials.items():
                    resumed_counts[label] = resumed_counts.get(label, 0) + len(
                        partial
                    )
            for label in scenarios:
                if label in resumed_counts:
                    mark_resumed(label, resumed_counts[label])
        for chunk_id in sorted(restored):
            accounting.record_chunk(chunk_id, restored[chunk_id])
        pending = [chunk for chunk in chunks if chunk.chunk_id not in restored]

        context = (
            _pool_context() if workers > 1 and len(pending) > 1 else None
        )
        if context is None:
            for chunk in pending:
                try:
                    partials = _aggregate_chunk(chunk, scenarios, aggregate_factory)
                except Exception as exc:
                    raise SweepError(
                        f"streaming chunk {chunk.chunk_id} "
                        f"(labels {sorted({i.label for i in chunk.items})!r}) "
                        f"failed: {type(exc).__name__}: {exc}"
                    ) from exc
                if ckpt is not None:
                    ckpt.record(chunk.chunk_id, partials)
                accounting.record_chunk(chunk.chunk_id, partials)
        else:
            with _make_pool(
                context, min(workers, len(pending)), scenarios, aggregate_factory
            ) as pool:
                for chunk_id, partials, error in pool.imap_unordered(
                    _execute_chunk, pending
                ):
                    if error is not None or partials is None:
                        raise SweepError(
                            f"streaming chunk {chunk_id} failed: {error}"
                        )
                    if ckpt is not None:
                        ckpt.record(chunk_id, partials)
                    accounting.record_chunk(chunk_id, partials)
    finally:
        if ckpt is not None:
            ckpt.close()
    return accounting.results()

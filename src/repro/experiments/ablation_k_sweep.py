"""Ablation: sensitivity of ESCAPE to the priority-gap constant ``k`` (Eq. 1).

The paper recommends setting ``k`` to at least twice the network latency so
the groomed future leader can finish its campaign before the next server times
out.  This sweep varies ``k`` and measures the election time and the number of
campaigns per episode: with a very small ``k``, neighbouring priorities time
out within one network round-trip of each other and extra campaigns appear
(they still resolve quickly -- terms differ -- but cost messages); with a large
``k`` the second-best candidate's timeout is far away and the election time is
simply the base timeout plus one campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster.scenarios import ElectionScenario
from repro.common.config import ScaParameters
from repro.experiments.base import ProgressCallback, run_scenario_set
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, ExporterBinding
from repro.metrics.records import MeasurementSet
from repro.metrics.tables import render_table

DEFAULT_SIZE = 16
DEFAULT_K_VALUES: tuple[float, ...] = (50.0, 100.0, 200.0, 500.0, 1000.0)


@dataclass(frozen=True)
class KSweepResult:
    """Measurements per value of the priority-gap constant ``k``."""

    cluster_size: int
    k_values: tuple[float, ...]
    runs: int
    by_label: Mapping[str, MeasurementSet]

    def measurements_for(self, k_ms: float) -> MeasurementSet:
        return self.by_label[k_label(k_ms)]

    def average_for(self, k_ms: float) -> float:
        return self.measurements_for(k_ms).mean_total_ms()

    def mean_campaigns_for(self, k_ms: float) -> float:
        measurements = self.measurements_for(k_ms).converged
        counts = measurements.values(lambda m: float(m.campaign_count))
        return sum(counts) / len(counts)


def k_label(k_ms: float) -> str:
    return f"k={k_ms:.0f}ms"


def build_scenarios(
    cluster_size: int = DEFAULT_SIZE,
    k_values: Sequence[float] = DEFAULT_K_VALUES,
) -> dict[str, ElectionScenario]:
    return {
        k_label(k_ms): ElectionScenario(
            protocol="escape",
            cluster_size=cluster_size,
            sca=ScaParameters(base_time_ms=1500.0, k_ms=k_ms),
        )
        for k_ms in k_values
    }


def run(
    runs: int = 30,
    seed: int = 0,
    cluster_size: int = DEFAULT_SIZE,
    k_values: Sequence[float] = DEFAULT_K_VALUES,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
) -> KSweepResult:
    """Execute the ``k`` sensitivity sweep (optionally over *workers*)."""
    scenarios = build_scenarios(cluster_size, k_values)
    by_label = run_scenario_set(
        scenarios, runs=runs, seed=seed, progress=progress, workers=workers
    )
    return KSweepResult(
        cluster_size=cluster_size,
        k_values=tuple(k_values),
        runs=runs,
        by_label=by_label,
    )


def report(result: KSweepResult) -> str:
    rows = []
    for k_ms in result.k_values:
        measurements = result.measurements_for(k_ms)
        rows.append(
            [
                k_label(k_ms),
                f"{result.average_for(k_ms):.0f}",
                f"{result.mean_campaigns_for(k_ms):.2f}",
                f"{100 * measurements.split_vote_fraction():.1f}%",
            ]
        )
    return render_table(
        headers=["priority gap k", "mean election (ms)", "campaigns/run", "split votes"],
        rows=rows,
        title=(
            f"Ablation — ESCAPE sensitivity to k (Eq. 1) at {result.cluster_size} servers "
            f"({result.runs} runs per value)"
        ),
    )


def _export_measurements(result: KSweepResult) -> Mapping[str, MeasurementSet]:
    """Exporter binding: the per-k measurement sets."""
    return result.by_label


SPEC = register(
    ExperimentSpec(
        name="ablation-k",
        title="Ablation: ESCAPE sensitivity to the priority gap k",
        paper_ref="Eq. 1 / Section IV-A",
        description=(
            "sweep the Eq. 1 priority-gap constant: small k costs extra "
            "campaigns, large k just adds the base timeout"
        ),
        run=run,
        reporter=report,
        default_runs=30,
        params={"cluster_size": DEFAULT_SIZE, "k_values": DEFAULT_K_VALUES},
        exporter=ExporterBinding(kind="election", extract=_export_measurements),
    )
)

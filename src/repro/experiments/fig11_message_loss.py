"""Figure 11: leader-election time under broadcast message loss.

Setup (Section VI-D): clusters of 10, 50 and 100 servers; broadcast loss rates
Δ of 0, 10, 20, 30 and 40 % (every broadcast misses a random Δ fraction of the
peers); three protocols -- Raft, Z-Raft (ZooKeeper-style static priorities)
and ESCAPE.  A client workload keeps the log growing before the crash so the
loss actually leaves some followers behind, creating the "unqualified
candidates" the paper describes.

The paper reports that Z-Raft and ESCAPE track each other at low loss, that
Raft degrades badly at high loss, and that ESCAPE's dynamic rearrangement
pays off as loss grows: at s=100 ESCAPE cuts election time by 21.4 % (Δ=10 %)
and 49.3 % (Δ=40 %) versus Raft.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import protocols as protocol_registry
from repro.cluster.scenarios import ElectionScenario
from repro.experiments.base import ProgressCallback, run_scenario_set
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, ExporterBinding
from repro.metrics.records import MeasurementSet
from repro.metrics.stats import reduction_percent
from repro.metrics.tables import render_table

#: Cluster sizes evaluated by the paper.
PAPER_SIZES: tuple[int, ...] = (10, 50, 100)

#: Broadcast loss rates Δ evaluated by the paper.
PAPER_LOSS_RATES: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4)

#: The protocols compared in Figure 11 (validated against the registry).
PROTOCOLS: tuple[str, ...] = protocol_registry.PAPER_PROTOCOLS


@dataclass(frozen=True)
class MessageLossResult:
    """Measurements per (protocol, cluster size, loss rate)."""

    sizes: tuple[int, ...]
    loss_rates: tuple[float, ...]
    runs: int
    by_label: Mapping[str, MeasurementSet]
    protocols: tuple[str, ...] = PROTOCOLS

    def measurements_for(
        self, protocol: str, size: int, loss_rate: float
    ) -> MeasurementSet:
        """Measurements for one cell of Figure 11."""
        return self.by_label[cell_label(protocol, size, loss_rate)]

    def average_for(self, protocol: str, size: int, loss_rate: float) -> float:
        """Average election time for one cell."""
        return self.measurements_for(protocol, size, loss_rate).mean_total_ms()

    def reduction_vs_raft(self, protocol: str, size: int, loss_rate: float) -> float:
        """Percentage reduction of *protocol* vs Raft for one cell."""
        return reduction_percent(
            self.average_for("raft", size, loss_rate),
            self.average_for(protocol, size, loss_rate),
        )


def cell_label(protocol: str, size: int, loss_rate: float) -> str:
    """Label for one cell, e.g. ``"zraft@50/loss20"``."""
    return f"{protocol}@{size}/loss{int(round(loss_rate * 100))}"


def build_scenarios(
    sizes: Sequence[int] = PAPER_SIZES,
    loss_rates: Sequence[float] = PAPER_LOSS_RATES,
    protocols: Sequence[str] = PROTOCOLS,
    workload_interval_ms: float = 50.0,
) -> dict[str, ElectionScenario]:
    """One scenario per (protocol, size, loss) cell of Figure 11."""
    scenarios: dict[str, ElectionScenario] = {}
    for size in sizes:
        for loss_rate in loss_rates:
            for protocol in protocols:
                scenarios[cell_label(protocol, size, loss_rate)] = ElectionScenario(
                    protocol=protocol,
                    cluster_size=size,
                    loss_rate=loss_rate,
                    workload_interval_ms=workload_interval_ms,
                    pre_crash_ms=2_000.0,
                )
    return scenarios


def run(
    runs: int = 30,
    seed: int = 0,
    sizes: Sequence[int] = PAPER_SIZES,
    loss_rates: Sequence[float] = PAPER_LOSS_RATES,
    protocols: Sequence[str] = PROTOCOLS,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
) -> MessageLossResult:
    """Execute the Figure 11 sweep (optionally fanned out over *workers*)."""
    scenarios = build_scenarios(sizes, loss_rates, protocols)
    by_label = run_scenario_set(
        scenarios, runs=runs, seed=seed, progress=progress, workers=workers
    )
    return MessageLossResult(
        sizes=tuple(sizes),
        loss_rates=tuple(loss_rates),
        runs=runs,
        by_label=by_label,
        protocols=tuple(protocols),
    )


def report(result: MessageLossResult) -> str:
    """Render averages for every protocol per (size, loss) cell.

    Columns adapt to the protocols actually swept (the historical hardcoded
    raft/zraft/escape triple lives in the registry-backed ``PROTOCOLS``
    default now); reduction-vs-Raft columns appear for every other protocol
    when Raft is part of the sweep.
    """
    labels = {
        protocol: protocol_registry.title(protocol)
        for protocol in result.protocols
    }
    compared = [
        protocol for protocol in result.protocols if protocol != "raft"
    ] if "raft" in result.protocols else []
    headers = ["servers", "loss Δ"]
    headers += [f"{labels[protocol]} (ms)" for protocol in result.protocols]
    headers += [f"{labels[protocol]} vs Raft" for protocol in compared]
    rows = []
    for size in result.sizes:
        for loss_rate in result.loss_rates:
            row: list[object] = [size, f"{loss_rate * 100:.0f}%"]
            for protocol in result.protocols:
                row.append(f"{result.average_for(protocol, size, loss_rate):.0f}")
            for protocol in compared:
                row.append(
                    f"{result.reduction_vs_raft(protocol, size, loss_rate):.1f}%"
                )
            rows.append(row)
    return render_table(
        headers=headers,
        rows=rows,
        title=(
            "Figure 11 — leader election time under broadcast message loss "
            f"({result.runs} runs per cell)"
        ),
    )


def _export_measurements(result: MessageLossResult) -> Mapping[str, MeasurementSet]:
    """Exporter binding: the per-(protocol, size, loss) measurement sets."""
    return result.by_label


SPEC = register(
    ExperimentSpec(
        name="fig11",
        title="Election time under broadcast message loss",
        paper_ref="Figure 11 / Section VI-D",
        description=(
            "Raft vs Z-Raft vs ESCAPE while every broadcast misses a Δ "
            "fraction of peers; dynamic rearrangement pays off as Δ grows"
        ),
        run=run,
        reporter=report,
        default_runs=30,
        params={"sizes": PAPER_SIZES, "loss_rates": PAPER_LOSS_RATES},
        quick_params={"sizes": (10,)},
        supports_protocols=True,
        exporter=ExporterBinding(kind="election", extract=_export_measurements),
    )
)

"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.cluster.scenarios import ElectionScenario
from repro.common.rng import derive_run_seed, paired_seeds
from repro.metrics.records import ElectionMeasurement, MeasurementSet

__all__ = [
    "ProgressCallback",
    "SeriesResult",
    "derive_run_seed",
    "flatten_sets",
    "paired_seeds",
    "print_progress",
    "run_scenario_set",
]

ProgressCallback = Callable[[str, int, int], None]


def run_scenario_set(
    scenarios: Mapping[str, ElectionScenario],
    runs: int,
    seed: int = 0,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
    set_factory=MeasurementSet,
    streaming: bool = False,
    checkpoint=None,
) -> dict[str, MeasurementSet]:
    """Run every scenario *runs* times and collect the measurements.

    Seeds are derived per ``(scenario label, run index)`` via
    :func:`paired_seeds`, so adding a new scenario to the sweep never changes
    the seeds of existing ones, and two protocols compared under the same
    label suffix observe paired randomness.

    Execution is delegated to the sweep engine in
    :mod:`repro.experiments.runner`: ``workers=1`` runs in-process exactly
    like the historical sequential loop, ``workers > 1`` fans the episodes
    out over a process pool with bit-for-bit identical results, and
    ``workers=None`` uses one worker per CPU.  *set_factory* chooses the
    per-label result container (see :data:`repro.experiments.runner.SetFactory`).

    ``streaming=True`` switches to the memory-bounded streaming path: the
    result maps each label to a mergeable
    :class:`~repro.metrics.streaming.ElectionAggregate` instead of a
    measurement set, and *checkpoint* (a directory) makes the sweep
    resumable bit-identically after a kill.
    """
    from repro.experiments.runner import run_sweep

    return run_sweep(
        scenarios,
        runs=runs,
        seed=seed,
        progress=progress,
        workers=workers,
        set_factory=set_factory,
        streaming=streaming,
        checkpoint=checkpoint,
    )


@dataclass(frozen=True)
class SeriesResult:
    """A labelled series of measurement sets keyed by a swept parameter."""

    parameter_name: str
    parameter_values: tuple
    series: Mapping[str, tuple[MeasurementSet, ...]]

    def mean_series(self, name: str) -> list[float]:
        """Mean total election time per parameter value for one series."""
        return [
            measurement_set.mean_total_ms() for measurement_set in self.series[name]
        ]

    def all_measurements(self) -> list[ElectionMeasurement]:
        """Every measurement in the result (used by invariant checks)."""
        collected: list[ElectionMeasurement] = []
        for sets in self.series.values():
            for measurement_set in sets:
                collected.extend(measurement_set.measurements)
        return collected


def print_progress(label: str, done: int, total: int) -> None:
    """Progress callback printing a line every 10 completed runs."""
    if done == total or done % 10 == 0:
        print(f"  [{label}] {done}/{total} runs", flush=True)


def flatten_sets(sets: Iterable[MeasurementSet]) -> MeasurementSet:
    """Merge several measurement sets into one (for aggregate statistics)."""
    merged = MeasurementSet(label="merged")
    for measurement_set in sets:
        for measurement in measurement_set:
            merged.add(measurement)
    return merged

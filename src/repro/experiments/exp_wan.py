"""WAN experiment: failover across geo-distributed region splits.

Section II-B of the paper argues that geo-distributed deployments -- low
in-group latency, high between-group latency -- are especially prone to split
votes: a candidate gathers its local region's votes almost instantly, then
stalls against equally fast candidates in the other regions.  The paper
describes this setting but never measures it (the testbed is a single
data-centre with uniform NetEm latency).  This experiment closes that gap:
Raft, Z-Raft and ESCAPE run the same leader-failure episodes under named
network conditions from :mod:`repro.cluster.catalog`, by default sweeping the
flat paper network against two- and three-region WAN splits.

Any catalog condition can be substituted (``--scenario NAME`` on the CLI), so
the same harness also answers "how do the protocols fare under heavy-tailed
latency / i.i.d. loss / duplication / chaos?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import protocols as protocol_registry
from repro.cluster.catalog import get_condition, scenario_for
from repro.cluster.scenarios import ElectionScenario
from repro.experiments.base import ProgressCallback, run_scenario_set
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, ExporterBinding
from repro.metrics.records import MeasurementSet
from repro.metrics.stats import reduction_percent
from repro.metrics.tables import render_table

#: The default condition grid: the paper's flat network vs WAN region splits.
WAN_CONDITIONS: tuple[str, ...] = (
    "paper-default",
    "geo-two-region",
    "geo-three-region",
)

#: The protocols compared (the full three-way comparison of Figure 11),
#: validated against the registry.
PROTOCOLS: tuple[str, ...] = protocol_registry.PAPER_PROTOCOLS

#: Nine servers: three per region under the three-region split, mirroring the
#: example deployment sketched in Section II-B.
DEFAULT_CLUSTER_SIZE: int = 9


@dataclass(frozen=True)
class WanResult:
    """Measurements per (protocol, network condition)."""

    conditions: tuple[str, ...]
    protocols: tuple[str, ...]
    cluster_size: int
    runs: int
    by_label: Mapping[str, MeasurementSet]

    def measurements_for(self, protocol: str, condition: str) -> MeasurementSet:
        """Measurements for one protocol under one condition."""
        return self.by_label[cell_label(protocol, condition)]

    def average_for(self, protocol: str, condition: str) -> float:
        """Average election time for one cell."""
        return self.measurements_for(protocol, condition).mean_total_ms()

    def split_vote_fraction_for(self, protocol: str, condition: str) -> float:
        """Fraction of runs that hit at least one split vote."""
        return self.measurements_for(protocol, condition).split_vote_fraction()

    def reduction_vs_raft(self, protocol: str, condition: str) -> float:
        """Percentage reduction of *protocol* vs Raft for one condition."""
        return reduction_percent(
            self.average_for("raft", condition),
            self.average_for(protocol, condition),
        )


def cell_label(protocol: str, condition: str) -> str:
    """Label for one cell, e.g. ``"escape+geo-two-region"``."""
    return f"{protocol}+{condition}"


def build_scenarios(
    conditions: Sequence[str] = WAN_CONDITIONS,
    protocols: Sequence[str] = PROTOCOLS,
    cluster_size: int = DEFAULT_CLUSTER_SIZE,
) -> dict[str, ElectionScenario]:
    """One scenario per (protocol, condition) cell.

    Conditions are resolved through the catalog up front, so an unknown name
    fails fast with the list of valid ones.
    """
    resolved = {name: get_condition(name) for name in conditions}
    scenarios: dict[str, ElectionScenario] = {}
    for name, condition in resolved.items():
        for protocol in protocols:
            scenarios[cell_label(protocol, name)] = scenario_for(
                condition, protocol, cluster_size
            )
    return scenarios


def run(
    runs: int = 30,
    seed: int = 0,
    conditions: Sequence[str] = WAN_CONDITIONS,
    protocols: Sequence[str] = PROTOCOLS,
    cluster_size: int = DEFAULT_CLUSTER_SIZE,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
) -> WanResult:
    """Execute the WAN sweep (optionally fanned out over *workers*)."""
    scenarios = build_scenarios(conditions, protocols, cluster_size)
    by_label = run_scenario_set(
        scenarios, runs=runs, seed=seed, progress=progress, workers=workers
    )
    return WanResult(
        conditions=tuple(conditions),
        protocols=tuple(protocols),
        cluster_size=cluster_size,
        runs=runs,
        by_label=by_label,
    )


def report(result: WanResult) -> str:
    """Render averages, reductions vs Raft and split-vote rates per condition.

    Columns adapt to the protocols actually swept (display labels come from
    the protocol registry); the reduction column only appears when both Raft
    and ESCAPE are present.
    """
    with_reduction = {"raft", "escape"} <= set(result.protocols)
    headers = ["condition"]
    headers += [
        f"{protocol_registry.title(protocol)} (ms)"
        for protocol in result.protocols
    ]
    if with_reduction:
        headers.append("ESCAPE vs Raft")
    headers += [
        f"{protocol_registry.title(protocol)} split votes"
        for protocol in result.protocols
    ]
    rows = []
    for condition in result.conditions:
        row = [condition]
        row += [
            f"{result.average_for(protocol, condition):.0f}"
            for protocol in result.protocols
        ]
        if with_reduction:
            row.append(f"{result.reduction_vs_raft('escape', condition):.1f}%")
        row += [
            f"{100 * result.split_vote_fraction_for(protocol, condition):.1f}%"
            for protocol in result.protocols
        ]
        rows.append(row)
    return render_table(
        headers=headers,
        rows=rows,
        title=(
            "WAN failover — leader election time per network condition "
            f"(s={result.cluster_size}, {result.runs} runs per cell)"
        ),
    )


def registry_run(
    *,
    scenario: str | None = None,
    conditions: Sequence[str] = WAN_CONDITIONS,
    **kwargs,
) -> WanResult:
    """Registry adapter: ``scenario`` narrows the grid to one condition."""
    if scenario is not None:
        conditions = (scenario,)
    return run(conditions=conditions, **kwargs)


def _export_measurements(result: WanResult) -> Mapping[str, MeasurementSet]:
    """Exporter binding: the per-(protocol, condition) measurement sets."""
    return result.by_label


SPEC = register(
    ExperimentSpec(
        name="wan",
        title="WAN failover across geo-distributed region splits",
        paper_ref="Section II-B (described, never measured)",
        description=(
            "the paper's geo-distributed split-vote setting, measured: flat "
            "network vs two- and three-region WAN splits"
        ),
        run=registry_run,
        reporter=report,
        default_runs=30,
        params={
            "conditions": WAN_CONDITIONS,
            "cluster_size": DEFAULT_CLUSTER_SIZE,
        },
        quick_params={"cluster_size": 6},
        supports_scenario=True,
        supports_protocols=True,
        capability_overrides={"scenario": "conditions"},
        exporter=ExporterBinding(kind="election", extract=_export_measurements),
    )
)

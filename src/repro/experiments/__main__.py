"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments fig9 --runs 200 --seed 1
    python -m repro.experiments fig11 --runs 1000 --workers 0   # paper-scale sweep
    python -m repro.experiments wan --scenario chaos-composite  # catalog condition
    python -m repro.experiments wan --protocols raft-stagger,escape-noppf,escape
    python -m repro.experiments avail --plan partition-flap     # chaos plan
    python -m repro.experiments all --runs 20                   # quick smoke pass

``--workers N`` fans the episodes of a sweep out over N processes
(``--workers 0`` uses every CPU); results are bit-for-bit identical to a
sequential run with the same seed.  ``--scenario NAME`` (experiments that
support it: ``wan``, ``avail``) selects a single named network condition from
:mod:`repro.cluster.catalog` instead of the experiment's default grid.
``--protocols a,b,c`` replaces a protocol-aware experiment's default
comparison with any protocols registered in :mod:`repro.protocols` (unknown
names are rejected with the list of registered ones; so are protocols that
do not guarantee leader election, since every sweep must stabilise one).
``--plan NAME`` (``avail`` only) selects the chaos fault timeline from
:data:`repro.chaos.plans.CHAOS_CATALOG`.

Every experiment prints the same rows/series the corresponding paper figure
plots; see EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro import protocols as protocol_registry
from repro.chaos.plans import plan_names
from repro.cluster.catalog import condition_names
from repro.experiments import (
    ablation_k_sweep,
    ablation_ppf,
    adapter_redis,
    exp_availability,
    exp_wan,
    fig03_randomization,
    fig04_randomization_average,
    fig09_scale,
    fig10_competing_candidates,
    fig11_message_loss,
)
from repro.experiments.base import print_progress


@dataclass(frozen=True)
class RunRequest:
    """One CLI invocation's sweep parameters, as passed to every runner."""

    runs: int
    seed: int
    quick: bool
    workers: int | None
    scenario: str | None = None
    protocols: tuple[str, ...] | None = None
    plan: str | None = None

    @property
    def progress(self):
        """The progress callback the request implies (quiet in quick mode)."""
        return print_progress if not self.quick else None


ExperimentRunner = Callable[[RunRequest], str]


def _run_fig3(request: RunRequest) -> str:
    result = fig03_randomization.run(
        runs=request.runs,
        seed=request.seed,
        progress=request.progress,
        workers=request.workers,
    )
    return fig03_randomization.report(result)


def _run_fig4(request: RunRequest) -> str:
    result = fig04_randomization_average.run(
        runs=request.runs,
        seed=request.seed,
        progress=request.progress,
        workers=request.workers,
    )
    return fig04_randomization_average.report(result)


def _run_fig9(request: RunRequest) -> str:
    sizes = (8, 16, 32) if request.quick else fig09_scale.PAPER_SIZES
    result = fig09_scale.run(
        runs=request.runs,
        seed=request.seed,
        sizes=sizes,
        protocols=request.protocols or fig09_scale.PROTOCOLS,
        progress=request.progress,
        workers=request.workers,
    )
    return fig09_scale.report(result)


def _run_fig10(request: RunRequest) -> str:
    sizes = (8, 16) if request.quick else fig10_competing_candidates.PAPER_SIZES
    result = fig10_competing_candidates.run(
        runs=request.runs,
        seed=request.seed,
        sizes=sizes,
        protocols=request.protocols or fig10_competing_candidates.PROTOCOLS,
        progress=request.progress,
        workers=request.workers,
    )
    return fig10_competing_candidates.report(result)


def _run_fig11(request: RunRequest) -> str:
    sizes = (10,) if request.quick else fig11_message_loss.PAPER_SIZES
    result = fig11_message_loss.run(
        runs=request.runs,
        seed=request.seed,
        sizes=sizes,
        protocols=request.protocols or fig11_message_loss.PROTOCOLS,
        progress=request.progress,
        workers=request.workers,
    )
    return fig11_message_loss.report(result)


def _run_ablation_ppf(request: RunRequest) -> str:
    result = ablation_ppf.run(
        runs=request.runs,
        seed=request.seed,
        protocols=request.protocols or ablation_ppf.PROTOCOLS,
        progress=request.progress,
        workers=request.workers,
    )
    return ablation_ppf.report(result)


def _run_ablation_k(request: RunRequest) -> str:
    result = ablation_k_sweep.run(
        runs=request.runs,
        seed=request.seed,
        progress=request.progress,
        workers=request.workers,
    )
    return ablation_k_sweep.report(result)


def _run_adapter_redis(request: RunRequest) -> str:
    # The adapter model is cheap; scale the run count up so the collision
    # rates are stable even in quick mode.  It finishes in milliseconds, so
    # it ignores --workers rather than paying pool start-up for nothing.
    result = adapter_redis.run(runs=max(request.runs, 50), seed=request.seed)
    return adapter_redis.report(result)


def _run_wan(request: RunRequest) -> str:
    conditions = (
        (request.scenario,) if request.scenario else exp_wan.WAN_CONDITIONS
    )
    cluster_size = 6 if request.quick else exp_wan.DEFAULT_CLUSTER_SIZE
    result = exp_wan.run(
        runs=request.runs,
        seed=request.seed,
        conditions=conditions,
        protocols=request.protocols or exp_wan.PROTOCOLS,
        cluster_size=cluster_size,
        progress=request.progress,
        workers=request.workers,
    )
    return exp_wan.report(result)


def _run_avail(request: RunRequest) -> str:
    horizon = (
        exp_availability.QUICK_HORIZON_MS
        if request.quick
        else exp_availability.DEFAULT_HORIZON_MS
    )
    result = exp_availability.run(
        runs=request.runs,
        seed=request.seed,
        plan=request.plan or exp_availability.DEFAULT_PLAN,
        protocols=request.protocols or exp_availability.PROTOCOLS,
        horizon_ms=horizon,
        condition=request.scenario,
        progress=request.progress,
        workers=request.workers,
    )
    return exp_availability.report(result)


EXPERIMENTS: dict[str, ExperimentRunner] = {
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "wan": _run_wan,
    "avail": _run_avail,
    "ablation-ppf": _run_ablation_ppf,
    "ablation-k": _run_ablation_k,
    "adapter-redis": _run_adapter_redis,
}

#: Experiments that understand the ``--scenario`` catalog-condition override.
SCENARIO_AWARE: frozenset[str] = frozenset({"wan", "avail"})

#: Experiments that understand the ``--protocols`` registry override.
PROTOCOL_AWARE: frozenset[str] = frozenset(
    {"fig9", "fig10", "fig11", "wan", "avail", "ablation-ppf"}
)

#: Experiments that understand the ``--plan`` chaos-catalog override.
PLAN_AWARE: frozenset[str] = frozenset({"avail"})


def _worker_count(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"--workers must be >= 0 (0 means one per CPU), got {count}"
        )
    return count


def _protocol_list(value: str) -> tuple[str, ...]:
    names = tuple(part.strip() for part in value.split(",") if part.strip())
    if not names:
        raise argparse.ArgumentTypeError(
            "--protocols needs at least one protocol name"
        )
    sweepable = [
        spec.name
        for spec in protocol_registry.specs()
        if spec.guarantees_liveness
    ]
    for name in names:
        if not protocol_registry.is_registered(name):
            raise argparse.ArgumentTypeError(
                f"unknown protocol {name!r}; registered: "
                f"{', '.join(protocol_registry.names())}"
            )
        if not protocol_registry.get(name).guarantees_liveness:
            # Every experiment stabilises a leader before measuring, so a
            # protocol that livelocks by design can only abort the sweep.
            raise argparse.ArgumentTypeError(
                f"protocol {name!r} does not guarantee leader election (it "
                "livelocks by design) and cannot run in an experiment sweep; "
                f"sweepable protocols: {', '.join(sweepable)}"
            )
    return names


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the evaluation figures of the ESCAPE paper (ICDCS 2022).",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS.keys(), "all"],
        help="which figure to reproduce ('all' runs every experiment)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=30,
        help="independent runs per data point (the paper uses 1000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help=(
            "worker processes for the sweep engine (0 = one per CPU); "
            "results are identical for every worker count"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="restrict the sweep to small cluster sizes for a fast smoke pass",
    )
    parser.add_argument(
        "--scenario",
        choices=condition_names(),
        default=None,
        help=(
            "run under a single named network condition from the scenario "
            f"catalog (supported by: {', '.join(sorted(SCENARIO_AWARE))})"
        ),
    )
    parser.add_argument(
        "--protocols",
        type=_protocol_list,
        default=None,
        metavar="NAME[,NAME...]",
        help=(
            "comma-separated protocols from the registry "
            f"({', '.join(protocol_registry.names())}) replacing the "
            "experiment's default comparison (supported by: "
            f"{', '.join(sorted(PROTOCOL_AWARE))})"
        ),
    )
    parser.add_argument(
        "--plan",
        choices=plan_names(),
        default=None,
        help=(
            "run under a named chaos plan from the chaos catalog "
            f"(supported by: {', '.join(sorted(PLAN_AWARE))})"
        ),
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.scenario is not None:
        unsupported = [name for name in names if name not in SCENARIO_AWARE]
        if unsupported:
            parser.error(
                f"--scenario is not supported by: {', '.join(unsupported)} "
                f"(supported: {', '.join(sorted(SCENARIO_AWARE))})"
            )
    if args.protocols is not None:
        unsupported = [name for name in names if name not in PROTOCOL_AWARE]
        if unsupported:
            parser.error(
                f"--protocols is not supported by: {', '.join(unsupported)} "
                f"(supported: {', '.join(sorted(PROTOCOL_AWARE))})"
            )
    if args.plan is not None:
        unsupported = [name for name in names if name not in PLAN_AWARE]
        if unsupported:
            parser.error(
                f"--plan is not supported by: {', '.join(unsupported)} "
                f"(supported: {', '.join(sorted(PLAN_AWARE))})"
            )
    request = RunRequest(
        runs=args.runs,
        seed=args.seed,
        quick=args.quick,
        workers=None if args.workers == 0 else args.workers,
        scenario=args.scenario,
        protocols=args.protocols,
        plan=args.plan,
    )
    for name in names:
        started = time.perf_counter()
        scenario_note = f", scenario={args.scenario}" if args.scenario else ""
        if args.protocols:
            scenario_note += f", protocols={','.join(args.protocols)}"
        if args.plan:
            scenario_note += f", plan={args.plan}"
        print(
            f"== {name} (runs={args.runs}, seed={args.seed}, "
            f"workers={args.workers or 'auto'}{scenario_note}) ==",
            flush=True,
        )
        report = EXPERIMENTS[name](request)
        elapsed = time.perf_counter() - started
        print(report)
        print(f"-- completed in {elapsed:.1f} s\n", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

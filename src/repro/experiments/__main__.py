"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments --list                          # registry table
    python -m repro.experiments fig9 --runs 200 --seed 1
    python -m repro.experiments fig11 --runs 1000 --workers 0   # paper-scale sweep
    python -m repro.experiments wan --scenario chaos-composite  # catalog condition
    python -m repro.experiments wan --protocols raft-stagger,escape-noppf,escape
    python -m repro.experiments avail --plan partition-flap     # chaos plan
    python -m repro.experiments fig3 --output results/          # persist raw + report
    python -m repro.experiments all --runs 20                   # quick smoke pass

The CLI is generated from the experiment registry
(:mod:`repro.experiments.registry`): the experiment choices, the help text,
which experiments accept ``--scenario``/``--protocols``/``--plan``, and the
quick-mode parameter overrides all come from the registered
:class:`~repro.experiments.spec.ExperimentSpec` descriptors -- registering an
eleventh experiment extends the CLI without touching this module.

``--workers N`` fans the episodes of a sweep out over N processes
(``--workers 0`` uses every CPU); results are bit-for-bit identical to a
sequential run with the same seed.  ``--scenario NAME`` selects a single
named network condition from :mod:`repro.cluster.catalog` instead of the
experiment's default grid.  ``--protocols a,b,c`` replaces a
protocol-capable experiment's default comparison with any protocols
registered in :mod:`repro.protocols` (unknown names are rejected with the
list of registered ones; so are protocols that do not guarantee leader
election, since every sweep must stabilise one).  ``--plan NAME`` selects
the chaos fault timeline from :data:`repro.chaos.plans.CHAOS_CATALOG`.
``--engine NAME`` selects the simulation engine from
:mod:`repro.sim.engines` (engines are bit-identical by contract, so this
changes wall-clock time only; the default honours ``REPRO_ENGINE``).
``--streaming`` runs a streaming-capable experiment's sweep on the
memory-bounded streaming path (worker-side mergeable aggregates, O(labels)
parent memory) and ``--checkpoint DIR`` makes that sweep resumable: completed
chunks persist to a JSON-lines file in DIR and a re-run of the same command
continues bit-identically where the killed one stopped.
``--output DIR`` saves every experiment's raw measurements (CSV), a lossless
JSON export with the run metadata, and the rendered report.
``--trace-out DIR`` makes trace-capable experiments archive one traced
episode per scenario label (JSONL + manifest + telemetry snapshots; see
:mod:`repro.obs.trace`).  ``--heartbeat FILE`` keeps a machine-readable
progress heartbeat up to date during the sweep and ``--ticker`` adds a
self-overwriting stderr progress line (per-label completion, episodes/sec,
ETA) -- both come from :class:`repro.obs.progress.ProgressReporter`.

Every experiment prints the same rows/series the corresponding paper figure
plots; see EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.chaos.plans import plan_names
from repro.cluster.catalog import condition_names
from repro.common.errors import ConfigurationError
from repro.experiments import registry
from repro.experiments.base import print_progress
from repro.experiments.export import save_run
from repro.obs.profiling import Profiler
from repro.obs.progress import ProgressReporter
from repro.sim import engines as engine_registry


def _worker_count(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"--workers must be >= 0 (0 means one per CPU), got {count}"
        )
    return count


def _protocol_list(value: str) -> tuple[str, ...]:
    names = tuple(part.strip() for part in value.split(",") if part.strip())
    if not names:
        raise argparse.ArgumentTypeError(
            "--protocols needs at least one protocol name"
        )
    try:
        return registry.validate_sweep_protocols(names)
    except ConfigurationError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser, generated from the experiment registry."""
    from repro import protocols as protocol_registry

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the evaluation figures of the ESCAPE paper (ICDCS 2022).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=[*registry.names(), "all"],
        help="which experiment to run ('all' runs every registered one)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the experiment registry table and exit",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=None,
        help=(
            "independent runs per data point (default: the experiment's "
            "registered default, see --list; the paper uses 1000)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help=(
            "worker processes for the sweep engine (0 = one per CPU); "
            "results are identical for every worker count"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "apply each experiment's registered quick-mode overrides "
            "(small cluster sizes / short horizons) for a fast smoke pass"
        ),
    )
    parser.add_argument(
        "--scenario",
        choices=condition_names(),
        default=None,
        help=(
            "run under a single named network condition from the scenario "
            f"catalog (supported by: {', '.join(sorted(registry.supporting('scenario')))})"
        ),
    )
    parser.add_argument(
        "--protocols",
        type=_protocol_list,
        default=None,
        metavar="NAME[,NAME...]",
        help=(
            "comma-separated protocols from the registry "
            f"({', '.join(protocol_registry.names())}) replacing the "
            "experiment's default comparison (supported by: "
            f"{', '.join(sorted(registry.supporting('protocols')))})"
        ),
    )
    parser.add_argument(
        "--plan",
        choices=plan_names(),
        default=None,
        help=(
            "run under a named chaos plan from the chaos catalog "
            f"(supported by: {', '.join(sorted(registry.supporting('plan')))})"
        ),
    )
    parser.add_argument(
        "--streaming",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "run the sweep on the streaming engine: worker-side mergeable "
            "aggregates, O(labels) parent memory, bit-identical results at "
            "any worker count (--no-streaming forces the raw path; "
            "supported by: "
            f"{', '.join(sorted(registry.supporting('streaming')))})"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help=(
            "persist completed streaming chunks to a JSON-lines checkpoint "
            "in DIR (implies --streaming); re-running the same sweep with "
            "the same DIR resumes bit-identically after a kill"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=engine_registry.names(),
        default=None,
        help=(
            "simulation engine (default: the REPRO_ENGINE environment "
            "variable, else 'classic'); engines are bit-identical by "
            "contract, so this changes wall-clock time only"
        ),
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help=(
            "persist each experiment's raw measurements (CSV), a lossless "
            "JSON export with the run metadata, and the rendered report "
            "into DIR"
        ),
    )
    parser.add_argument(
        "--trace-out",
        dest="trace",
        metavar="DIR",
        default=None,
        help=(
            "archive one traced episode per scenario label into DIR as "
            "JSONL, with a manifest and per-label telemetry snapshots "
            "(supported by: "
            f"{', '.join(sorted(registry.supporting('trace')))})"
        ),
    )
    parser.add_argument(
        "--heartbeat",
        metavar="FILE",
        default=None,
        help=(
            "rewrite FILE (atomically, about once per second) with a JSON "
            "progress heartbeat: per-label completion, episodes/sec, ETA, "
            "worker utilization"
        ),
    )
    parser.add_argument(
        "--ticker",
        action="store_true",
        help="show a live single-line sweep progress ticker on stderr",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        print(registry.registry_table())
        return 0
    if args.experiment is None:
        parser.error("an experiment name (or 'all') is required unless --list is given")
    names = (
        list(registry.names()) if args.experiment == "all" else [args.experiment]
    )
    if args.checkpoint is not None:
        if args.streaming is False:
            parser.error(
                "--checkpoint requires the streaming path; drop --no-streaming"
            )
        # A checkpoint only makes sense on the chunked streaming path.
        args.streaming = True
    for option in registry.CAPABILITIES:
        if getattr(args, option) is not None:
            message = registry.unsupported_option_message(option, names)
            if message:
                parser.error(message)
    workers = None if args.workers == 0 else args.workers
    output_dir = Path(args.output) if args.output else None
    if output_dir is not None:
        # Fail before the sweep, not after: a long run whose results cannot
        # be persisted would otherwise be lost to a post-hoc error.
        exporterless = [
            name for name in names if registry.get(name).exporter is None
        ]
        if exporterless:
            parser.error(
                "--output needs an exporter binding, which is not declared "
                f"by: {', '.join(exporterless)}"
            )
    for name in names:
        option_note = f", scenario={args.scenario}" if args.scenario else ""
        if args.protocols:
            option_note += f", protocols={','.join(args.protocols)}"
        if args.plan:
            option_note += f", plan={args.plan}"
        if args.streaming is not None:
            option_note += f", streaming={args.streaming}"
        if args.checkpoint:
            option_note += f", checkpoint={args.checkpoint}"
        if args.trace:
            option_note += f", trace={args.trace}"
        if args.engine:
            option_note += f", engine={args.engine}"
        runs_note = "default" if args.runs is None else args.runs
        print(
            f"== {name} (runs={runs_note}, seed={args.seed}, "
            f"workers={args.workers or 'auto'}{option_note}) ==",
            flush=True,
        )
        # A ProgressReporter doubles as the plain progress callback; it is
        # built per experiment so each run's totals and ETA start fresh.
        reporter: ProgressReporter | None = None
        if args.heartbeat is not None or args.ticker:
            reporter = ProgressReporter(
                heartbeat_path=args.heartbeat, ticker=args.ticker
            )
        progress = reporter
        if progress is None:
            progress = None if args.quick else print_progress
        try:
            run = registry.run_experiment(
                name,
                runs=args.runs,
                seed=args.seed,
                quick=args.quick,
                workers=workers,
                progress=progress,
                scenario=args.scenario,
                protocols=args.protocols,
                plan=args.plan,
                streaming=args.streaming,
                checkpoint=args.checkpoint,
                trace=args.trace,
                engine=args.engine,
            )
        finally:
            if reporter is not None:
                reporter.finish()
        for note in run.notes:
            print(f"   note: {note}", flush=True)
        print(run.report)
        if output_dir is not None:
            profiler = Profiler()
            with profiler.phase("export"):
                paths = save_run(run, output_dir)
            print(
                f"   saved: {paths['csv']}, {paths['json']}, {paths['report']} "
                f"({profiler.elapsed('export'):.2f} s)"
            )
        print(f"-- completed in {run.elapsed_s:.1f} s\n", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""fig9-xl: the Figure 9 scale curve extended to data-center sizes (s <= 1024).

The paper's scale experiment (Section VI-B) stops at 128 servers.  This
extension pushes the same ESCAPE-vs-Raft comparison to s = 256, 512 and 1024
on top of the streaming sweep engine: workers aggregate episodes into
mergeable per-label partials (:class:`~repro.metrics.streaming.ElectionAggregate`),
so the parent's memory stays O(labels) no matter how many episodes run, and
``--checkpoint DIR`` makes the multi-minute large-``s`` sweeps resumable
bit-identically after a kill.  Run it with ``--engine flat`` (or
``REPRO_ENGINE=flat``): engines are bit-identical by contract and the flat
engine covers the s >= 256 cells several times faster (see BENCH_core.json).

Streaming is the default; ``--no-streaming`` (or ``streaming=False``) runs
the identical sweep through the raw-measurement path and converts the
episode sets to the same aggregate type, which a regression test uses to pin
the streaming report equal to the in-memory one at paper sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import protocols as protocol_registry
from repro.cluster.scenarios import ElectionScenario
from repro.common.errors import ConfigurationError
from repro.experiments.base import ProgressCallback, run_scenario_set
from repro.experiments.export import aggregate_to_row
from repro.experiments.fig09_scale import build_scenarios, scale_label
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, ExporterBinding
from repro.metrics.records import MeasurementSet
from repro.metrics.stats import reduction_percent
from repro.metrics.streaming import ElectionAggregate
from repro.metrics.tables import render_table

#: The extended size grid: the paper's five sizes plus the data-center tail.
XL_SIZES: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512, 1024)

#: The protocols compared (same pair as Figure 9).
PROTOCOLS: tuple[str, ...] = protocol_registry.RAFT_VS_ESCAPE


@dataclass(frozen=True)
class XlScaleResult:
    """Mergeable aggregates per (protocol, cluster size) cell.

    Both data paths land here: the streaming sweep produces the aggregates
    directly, the raw path converts its measurement sets via
    :meth:`ElectionAggregate.from_measurements` -- so reports and exports are
    path-independent (bit-identical at paper sizes, where the aggregates stay
    in their exact regime).
    """

    sizes: tuple[int, ...]
    runs: int
    by_label: Mapping[str, ElectionAggregate]
    protocols: tuple[str, ...] = PROTOCOLS
    #: Which data path produced the aggregates (provenance only).
    streaming: bool = True

    def aggregate_for(self, protocol: str, size: int) -> ElectionAggregate:
        """The aggregate for one protocol at one scale."""
        return self.by_label[scale_label(protocol, size)]

    def cdf_for(self, protocol: str, size: int) -> list[tuple[float, float]]:
        """CDF of the converged election times (exact at paper run counts)."""
        return self.aggregate_for(protocol, size).total_cdf()

    def average_for(self, protocol: str, size: int) -> float:
        """Average total election time for one cell."""
        return self.aggregate_for(protocol, size).mean_total_ms()

    def reduction_for(self, size: int) -> float:
        """ESCAPE's percentage reduction vs Raft at one scale."""
        return reduction_percent(
            self.average_for("raft", size), self.average_for("escape", size)
        )


def run(
    runs: int = 20,
    seed: int = 0,
    sizes: Sequence[int] = XL_SIZES,
    protocols: Sequence[str] = PROTOCOLS,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
    streaming: bool = True,
    checkpoint: str | None = None,
) -> XlScaleResult:
    """Execute the extended scale sweep.

    ``streaming=True`` (the default) uses the memory-bounded streaming
    engine; ``checkpoint`` (a directory) persists completed chunks so a
    killed sweep resumes bit-identically.  ``streaming=False`` runs the raw
    path and converts, for the path-equality pin.
    """
    scenarios = build_scenarios(sizes, protocols)
    if streaming:
        by_label = run_scenario_set(
            scenarios,
            runs=runs,
            seed=seed,
            progress=progress,
            workers=workers,
            streaming=True,
            checkpoint=checkpoint,
        )
    else:
        if checkpoint is not None:
            raise ConfigurationError(
                "checkpointing requires the streaming path; "
                "drop streaming=False or the checkpoint"
            )
        raw: Mapping[str, MeasurementSet] = run_scenario_set(
            scenarios, runs=runs, seed=seed, progress=progress, workers=workers
        )
        by_label = {
            label: ElectionAggregate.from_measurements(
                measurement_set.measurements, label
            )
            for label, measurement_set in raw.items()
        }
    return XlScaleResult(
        sizes=tuple(sizes),
        runs=runs,
        by_label=by_label,
        protocols=tuple(protocols),
        streaming=streaming,
    )


def report(result: XlScaleResult) -> str:
    """Render mean/p99/max/reduction/split-vote rows per scale.

    Deliberately derived from the aggregates alone (never from raw
    episodes), so the streaming and in-memory paths render byte-identical
    reports whenever their aggregates agree.
    """
    with_reduction = {"raft", "escape"} <= set(result.protocols)
    labels = {
        protocol: protocol_registry.title(protocol)
        for protocol in result.protocols
    }
    headers = ["servers"]
    headers += [f"{labels[protocol]} mean (ms)" for protocol in result.protocols]
    if with_reduction:
        headers.append("reduction")
    headers += [f"{labels[protocol]} p99 (ms)" for protocol in result.protocols]
    headers += [f"{labels[protocol]} max (ms)" for protocol in result.protocols]
    headers += [f"{labels[protocol]} split votes" for protocol in result.protocols]
    rows = []
    for size in result.sizes:
        summaries = {
            protocol: result.aggregate_for(protocol, size).total_summary()
            for protocol in result.protocols
        }
        row: list[object] = [size]
        row += [f"{summaries[protocol].mean:.0f}" for protocol in result.protocols]
        if with_reduction:
            row.append(f"{result.reduction_for(size):.1f}%")
        row += [f"{summaries[protocol].p99:.0f}" for protocol in result.protocols]
        row += [f"{summaries[protocol].maximum:.0f}" for protocol in result.protocols]
        row += [
            f"{100 * result.aggregate_for(protocol, size).split_vote_fraction():.1f}%"
            for protocol in result.protocols
        ]
        rows.append(row)
    return render_table(
        headers=headers,
        rows=rows,
        title=(
            "Figure 9 XL — election time vs cluster size, extended to "
            f"s={result.sizes[-1]} ({result.runs} runs per cell)"
        ),
    )


def _export_rows(result: XlScaleResult) -> list[dict[str, object]]:
    """Exporter binding: one aggregate row per (protocol, size) cell."""
    return [
        aggregate_to_row(label, aggregate)
        for label, aggregate in result.by_label.items()
    ]


SPEC = register(
    ExperimentSpec(
        name="fig9-xl",
        title="Figure 9 extended to data-center scale (streaming sweep)",
        paper_ref="Figure 9 / Section VI-B (extended)",
        description=(
            "ESCAPE vs Raft to 1024 servers on the streaming sweep engine: "
            "O(labels) parent memory, checkpoint/resume, flat-engine "
            "recommended"
        ),
        run=run,
        reporter=report,
        default_runs=20,
        params={"sizes": XL_SIZES},
        quick_params={"sizes": (8, 16)},
        supports_protocols=True,
        supports_streaming=True,
        exporter=ExporterBinding(kind="rows", extract=_export_rows),
    )
)

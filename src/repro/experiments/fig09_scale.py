"""Figure 9: ESCAPE vs Raft leader-election time at increasing cluster sizes.

Setup (Section VI-B): clusters of 8, 16, 32, 64 and 128 servers, 100-200 ms
latency, repeated leader crashes.  Raft uses the recommended 1500-3000 ms
timeout range; ESCAPE uses baseTime 1500 ms with k = 500 ms.  The paper plots
the CDF of the election time for each protocol and scale (left and middle
panels) plus the averages (right panel), and reports that ESCAPE finishes
every election under 2000 ms with no split votes, shortening the average
election time by 11.6 % (s=8) to 21.3 % (s=128).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import protocols as protocol_registry
from repro.cluster.scenarios import ElectionScenario
from repro.experiments.base import ProgressCallback, run_scenario_set
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, ExporterBinding
from repro.metrics.records import MeasurementSet
from repro.metrics.stats import cumulative_distribution, reduction_percent, summarize
from repro.metrics.tables import render_table
from repro.obs.trace import archive_election_traces

#: Cluster sizes evaluated by the paper.
PAPER_SIZES: tuple[int, ...] = (8, 16, 32, 64, 128)

#: The protocols compared in Figure 9 (validated against the registry).
PROTOCOLS: tuple[str, ...] = protocol_registry.RAFT_VS_ESCAPE


@dataclass(frozen=True)
class ScaleResult:
    """Measurements per (protocol, cluster size)."""

    sizes: tuple[int, ...]
    runs: int
    by_label: Mapping[str, MeasurementSet]
    protocols: tuple[str, ...] = PROTOCOLS

    def measurements_for(self, protocol: str, size: int) -> MeasurementSet:
        """Measurements for one protocol at one scale."""
        return self.by_label[scale_label(protocol, size)]

    def cdf_for(self, protocol: str, size: int) -> list[tuple[float, float]]:
        """CDF series (left/middle panels of Figure 9)."""
        return cumulative_distribution(self.measurements_for(protocol, size).totals_ms())

    def average_for(self, protocol: str, size: int) -> float:
        """Average election time (right panel of Figure 9)."""
        return self.measurements_for(protocol, size).mean_total_ms()

    def reduction_for(self, size: int) -> float:
        """ESCAPE's percentage reduction vs Raft at one scale."""
        return reduction_percent(
            self.average_for("raft", size), self.average_for("escape", size)
        )


def scale_label(protocol: str, size: int) -> str:
    """Label for one protocol/scale cell, e.g. ``"escape@32"``."""
    return f"{protocol}@{size}"


def build_scenarios(
    sizes: Sequence[int] = PAPER_SIZES,
    protocols: Sequence[str] = PROTOCOLS,
) -> dict[str, ElectionScenario]:
    """One scenario per (protocol, size) cell of Figure 9."""
    scenarios: dict[str, ElectionScenario] = {}
    for size in sizes:
        for protocol in protocols:
            scenarios[scale_label(protocol, size)] = ElectionScenario(
                protocol=protocol, cluster_size=size
            )
    return scenarios


def run(
    runs: int = 50,
    seed: int = 0,
    sizes: Sequence[int] = PAPER_SIZES,
    protocols: Sequence[str] = PROTOCOLS,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
    trace: str | None = None,
) -> ScaleResult:
    """Execute the Figure 9 sweep (optionally fanned out over *workers*).

    With *trace* set to a directory, one traced episode per (protocol, size)
    cell is re-run afterwards and archived there as JSONL (plus telemetry
    snapshots); see :func:`repro.obs.trace.archive_election_traces`.
    """
    scenarios = build_scenarios(sizes, protocols)
    by_label = run_scenario_set(
        scenarios, runs=runs, seed=seed, progress=progress, workers=workers
    )
    if trace is not None:
        archive_election_traces(scenarios, seed, trace)
    return ScaleResult(
        sizes=tuple(sizes),
        runs=runs,
        by_label=by_label,
        protocols=tuple(protocols),
    )


def report(result: ScaleResult) -> str:
    """Render the averages, tail behaviour and split-vote rates per scale.

    Columns adapt to the protocols actually swept (display labels come from
    the protocol registry); the reduction column only appears when both Raft
    and ESCAPE are present.
    """
    with_reduction = {"raft", "escape"} <= set(result.protocols)
    labels = {
        protocol: protocol_registry.title(protocol)
        for protocol in result.protocols
    }
    headers = ["servers"]
    headers += [f"{labels[protocol]} mean (ms)" for protocol in result.protocols]
    if with_reduction:
        headers.append("reduction")
    headers += [f"{labels[protocol]} max (ms)" for protocol in result.protocols]
    headers += [f"{labels[protocol]} split votes" for protocol in result.protocols]
    rows = []
    for size in result.sizes:
        summaries = {
            protocol: summarize(result.measurements_for(protocol, size).totals_ms())
            for protocol in result.protocols
        }
        row: list[object] = [size]
        row += [f"{summaries[protocol].mean:.0f}" for protocol in result.protocols]
        if with_reduction:
            row.append(f"{result.reduction_for(size):.1f}%")
        row += [f"{summaries[protocol].maximum:.0f}" for protocol in result.protocols]
        row += [
            f"{100 * result.measurements_for(protocol, size).split_vote_fraction():.1f}%"
            for protocol in result.protocols
        ]
        rows.append(row)
    return render_table(
        headers=headers,
        rows=rows,
        title=(
            "Figure 9 — leader election time vs cluster size "
            f"({result.runs} runs per cell)"
        ),
    )


def _export_measurements(result: ScaleResult) -> Mapping[str, MeasurementSet]:
    """Exporter binding: the per-(protocol, size) measurement sets."""
    return result.by_label


SPEC = register(
    ExperimentSpec(
        name="fig9",
        title="ESCAPE vs Raft at increasing cluster sizes",
        paper_ref="Figure 9 / Section VI-B",
        description=(
            "clusters of 8-128 servers under repeated leader crashes; the "
            "paper's headline 11.6-21.3 % election-time reduction"
        ),
        run=run,
        reporter=report,
        default_runs=50,
        params={"sizes": PAPER_SIZES},
        quick_params={"sizes": (8, 16, 32)},
        supports_protocols=True,
        supports_trace=True,
        exporter=ExporterBinding(kind="election", extract=_export_measurements),
    )
)

"""Figure 10: election time under 0/1/2/3 phases of competing candidates.

Setup (Section VI-C): clusters of 8, 16, 32, 64 and 128 servers are driven
into a controlled number of competing-candidate phases.  The harness forces
the contention by giving every follower the same scripted election timeout for
its first *k* waits (the canonical cause of a split vote); ESCAPE, under the
*same* simultaneous timeouts, resolves the collision in a single campaign
because priorities scatter the campaigns into different terms.

The paper reports that Raft's election time grows roughly linearly with the
number of forced phases (≈ phases x election timeout, about 6.5-7.5 s at three
phases) while ESCAPE stays under 2 s regardless, a reduction of 44.9 %, 64.2 %
and 74.3 % under one, two and three phases in the 128-server cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster.scenarios import ElectionScenario
from repro.experiments.base import ProgressCallback, run_scenario_set
from repro.metrics.records import MeasurementSet
from repro.metrics.stats import reduction_percent
from repro.metrics.tables import render_table

#: Cluster sizes evaluated by the paper.
PAPER_SIZES: tuple[int, ...] = (8, 16, 32, 64, 128)

#: Numbers of forced competing-candidate phases.
PAPER_PHASES: tuple[int, ...] = (0, 1, 2, 3)

PROTOCOLS: tuple[str, ...] = ("raft", "escape")


@dataclass(frozen=True)
class CompetingCandidatesResult:
    """Measurements per (protocol, cluster size, forced phases)."""

    sizes: tuple[int, ...]
    phases: tuple[int, ...]
    runs: int
    by_label: Mapping[str, MeasurementSet]

    def measurements_for(self, protocol: str, size: int, phases: int) -> MeasurementSet:
        """Measurements for one cell of Figure 10."""
        return self.by_label[cell_label(protocol, size, phases)]

    def average_for(self, protocol: str, size: int, phases: int) -> float:
        """Average total election time for one cell."""
        return self.measurements_for(protocol, size, phases).mean_total_ms()

    def detection_election_for(
        self, protocol: str, size: int, phases: int
    ) -> tuple[float, float]:
        """Average (detection, election) decomposition for one cell."""
        measurements = self.measurements_for(protocol, size, phases).converged
        detections = measurements.detections_ms()
        elections = measurements.elections_ms()
        return (
            sum(detections) / len(detections),
            sum(elections) / len(elections),
        )

    def reduction_for(self, size: int, phases: int) -> float:
        """ESCAPE's percentage reduction vs Raft for one (size, phases) cell."""
        return reduction_percent(
            self.average_for("raft", size, phases),
            self.average_for("escape", size, phases),
        )


def cell_label(protocol: str, size: int, phases: int) -> str:
    """Label for one cell, e.g. ``"raft@32/2cc"``."""
    return f"{protocol}@{size}/{phases}cc"


def build_scenarios(
    sizes: Sequence[int] = PAPER_SIZES,
    phases: Sequence[int] = PAPER_PHASES,
    protocols: Sequence[str] = PROTOCOLS,
) -> dict[str, ElectionScenario]:
    """One scenario per (protocol, size, phases) cell."""
    scenarios: dict[str, ElectionScenario] = {}
    for size in sizes:
        for phase_count in phases:
            for protocol in protocols:
                scenarios[cell_label(protocol, size, phase_count)] = ElectionScenario(
                    protocol=protocol,
                    cluster_size=size,
                    contention_phases=phase_count,
                )
    return scenarios


def run(
    runs: int = 30,
    seed: int = 0,
    sizes: Sequence[int] = PAPER_SIZES,
    phases: Sequence[int] = PAPER_PHASES,
    protocols: Sequence[str] = PROTOCOLS,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
) -> CompetingCandidatesResult:
    """Execute the Figure 10 sweep (optionally fanned out over *workers*)."""
    scenarios = build_scenarios(sizes, phases, protocols)
    by_label = run_scenario_set(
        scenarios, runs=runs, seed=seed, progress=progress, workers=workers
    )
    return CompetingCandidatesResult(
        sizes=tuple(sizes), phases=tuple(phases), runs=runs, by_label=by_label
    )


def report(result: CompetingCandidatesResult) -> str:
    """Render detection/election breakdown per (size, phases) cell."""
    rows = []
    for size in result.sizes:
        for phase_count in result.phases:
            raft_detection, raft_election = result.detection_election_for(
                "raft", size, phase_count
            )
            escape_detection, escape_election = result.detection_election_for(
                "escape", size, phase_count
            )
            rows.append(
                [
                    size,
                    phase_count,
                    f"{raft_detection:.0f}",
                    f"{raft_election:.0f}",
                    f"{result.average_for('raft', size, phase_count):.0f}",
                    f"{escape_detection:.0f}",
                    f"{escape_election:.0f}",
                    f"{result.average_for('escape', size, phase_count):.0f}",
                    f"{result.reduction_for(size, phase_count):.1f}%",
                ]
            )
    return render_table(
        headers=[
            "servers",
            "C.C. phases",
            "Raft detect (ms)",
            "Raft elect (ms)",
            "Raft total (ms)",
            "ESCAPE detect (ms)",
            "ESCAPE elect (ms)",
            "ESCAPE total (ms)",
            "reduction",
        ],
        rows=rows,
        title=(
            "Figure 10 — election time under forced competing-candidate phases "
            f"({result.runs} runs per cell)"
        ),
    )

"""Figure 10: election time under 0/1/2/3 phases of competing candidates.

Setup (Section VI-C): clusters of 8, 16, 32, 64 and 128 servers are driven
into a controlled number of competing-candidate phases.  The harness forces
the contention by giving every follower the same scripted election timeout for
its first *k* waits (the canonical cause of a split vote); ESCAPE, under the
*same* simultaneous timeouts, resolves the collision in a single campaign
because priorities scatter the campaigns into different terms.

The paper reports that Raft's election time grows roughly linearly with the
number of forced phases (≈ phases x election timeout, about 6.5-7.5 s at three
phases) while ESCAPE stays under 2 s regardless, a reduction of 44.9 %, 64.2 %
and 74.3 % under one, two and three phases in the 128-server cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro import protocols as protocol_registry
from repro.cluster.scenarios import ElectionScenario
from repro.experiments.base import ProgressCallback, run_scenario_set
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, ExporterBinding
from repro.metrics.records import MeasurementSet
from repro.metrics.stats import reduction_percent
from repro.metrics.tables import render_table

#: Cluster sizes evaluated by the paper.
PAPER_SIZES: tuple[int, ...] = (8, 16, 32, 64, 128)

#: Numbers of forced competing-candidate phases.
PAPER_PHASES: tuple[int, ...] = (0, 1, 2, 3)

#: The protocols compared in Figure 10 (validated against the registry).
PROTOCOLS: tuple[str, ...] = protocol_registry.RAFT_VS_ESCAPE


@dataclass(frozen=True)
class CompetingCandidatesResult:
    """Measurements per (protocol, cluster size, forced phases)."""

    sizes: tuple[int, ...]
    phases: tuple[int, ...]
    runs: int
    by_label: Mapping[str, MeasurementSet]
    protocols: tuple[str, ...] = PROTOCOLS

    def measurements_for(self, protocol: str, size: int, phases: int) -> MeasurementSet:
        """Measurements for one cell of Figure 10."""
        return self.by_label[cell_label(protocol, size, phases)]

    def average_for(self, protocol: str, size: int, phases: int) -> float:
        """Average total election time for one cell."""
        return self.measurements_for(protocol, size, phases).mean_total_ms()

    def detection_election_for(
        self, protocol: str, size: int, phases: int
    ) -> tuple[float, float]:
        """Average (detection, election) decomposition for one cell."""
        measurements = self.measurements_for(protocol, size, phases).converged
        detections = measurements.detections_ms()
        elections = measurements.elections_ms()
        return (
            sum(detections) / len(detections),
            sum(elections) / len(elections),
        )

    def reduction_for(self, size: int, phases: int) -> float:
        """ESCAPE's percentage reduction vs Raft for one (size, phases) cell."""
        return reduction_percent(
            self.average_for("raft", size, phases),
            self.average_for("escape", size, phases),
        )


def cell_label(protocol: str, size: int, phases: int) -> str:
    """Label for one cell, e.g. ``"raft@32/2cc"``."""
    return f"{protocol}@{size}/{phases}cc"


def build_scenarios(
    sizes: Sequence[int] = PAPER_SIZES,
    phases: Sequence[int] = PAPER_PHASES,
    protocols: Sequence[str] = PROTOCOLS,
) -> dict[str, ElectionScenario]:
    """One scenario per (protocol, size, phases) cell."""
    scenarios: dict[str, ElectionScenario] = {}
    for size in sizes:
        for phase_count in phases:
            for protocol in protocols:
                scenarios[cell_label(protocol, size, phase_count)] = ElectionScenario(
                    protocol=protocol,
                    cluster_size=size,
                    contention_phases=phase_count,
                )
    return scenarios


def run(
    runs: int = 30,
    seed: int = 0,
    sizes: Sequence[int] = PAPER_SIZES,
    phases: Sequence[int] = PAPER_PHASES,
    protocols: Sequence[str] = PROTOCOLS,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
) -> CompetingCandidatesResult:
    """Execute the Figure 10 sweep (optionally fanned out over *workers*)."""
    scenarios = build_scenarios(sizes, phases, protocols)
    by_label = run_scenario_set(
        scenarios, runs=runs, seed=seed, progress=progress, workers=workers
    )
    return CompetingCandidatesResult(
        sizes=tuple(sizes),
        phases=tuple(phases),
        runs=runs,
        by_label=by_label,
        protocols=tuple(protocols),
    )


def report(result: CompetingCandidatesResult) -> str:
    """Render detection/election breakdown per (size, phases) cell.

    Columns adapt to the protocols actually swept (display labels come from
    the protocol registry); the reduction column only appears when both Raft
    and ESCAPE are present.
    """
    with_reduction = {"raft", "escape"} <= set(result.protocols)
    headers: list[str] = ["servers", "C.C. phases"]
    for protocol in result.protocols:
        label = protocol_registry.title(protocol)
        headers += [
            f"{label} detect (ms)",
            f"{label} elect (ms)",
            f"{label} total (ms)",
        ]
    if with_reduction:
        headers.append("reduction")
    rows = []
    for size in result.sizes:
        for phase_count in result.phases:
            row: list[object] = [size, phase_count]
            for protocol in result.protocols:
                detection, election = result.detection_election_for(
                    protocol, size, phase_count
                )
                row += [
                    f"{detection:.0f}",
                    f"{election:.0f}",
                    f"{result.average_for(protocol, size, phase_count):.0f}",
                ]
            if with_reduction:
                row.append(f"{result.reduction_for(size, phase_count):.1f}%")
            rows.append(row)
    return render_table(
        headers=headers,
        rows=rows,
        title=(
            "Figure 10 — election time under forced competing-candidate phases "
            f"({result.runs} runs per cell)"
        ),
    )


def _export_measurements(
    result: CompetingCandidatesResult,
) -> Mapping[str, MeasurementSet]:
    """Exporter binding: the per-(protocol, size, phases) measurement sets."""
    return result.by_label


SPEC = register(
    ExperimentSpec(
        name="fig10",
        title="Election time under forced competing-candidate phases",
        paper_ref="Figure 10 / Section VI-C",
        description=(
            "scripted simultaneous timeouts force 0-3 split-vote phases; "
            "Raft pays ~one timeout per phase, ESCAPE stays flat"
        ),
        run=run,
        reporter=report,
        default_runs=30,
        params={"sizes": PAPER_SIZES, "phases": PAPER_PHASES},
        quick_params={"sizes": (8, 16)},
        supports_protocols=True,
        exporter=ExporterBinding(kind="election", extract=_export_measurements),
    )
)

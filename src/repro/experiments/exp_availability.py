"""Availability experiment: steady-state uptime under a chaos plan.

Every figure of the paper measures a *single* crash → re-election episode;
the argument that motivates them -- "every leaderless interval is downtime,
so faster elections mean higher availability" -- is the end-to-end claim the
paper implies but never measures.  This experiment closes that gap: each
registered (liveness-guaranteeing) protocol runs the *same* deterministic
chaos plan from :data:`repro.chaos.plans.CHAOS_CATALOG` over a long horizon,
with a client workload proposing throughout, and the report compares the
availability fraction, outage recovery latencies, and the client-side
proposal counts.

Any chaos plan can be selected (``--plan NAME`` on the CLI) and any network
condition from :mod:`repro.cluster.catalog` can be layered underneath
(``--scenario NAME``), so the same harness answers "how much uptime does
ESCAPE buy under partition flaps on a two-region WAN?".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro import protocols as protocol_registry
from repro.chaos.plans import DEFAULT_HORIZON_MS, ChaosPlan, build_plan
from repro.chaos.scenario import ChaosScenario
from repro.cluster.catalog import get_condition
from repro.common.errors import ConfigurationError
from repro.common.types import Milliseconds
from repro.experiments.base import ProgressCallback, run_scenario_set
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, ExporterBinding
from repro.metrics.records import AvailabilitySet
from repro.metrics.tables import render_table

#: The default plan: the steady-state cost of elections themselves.
DEFAULT_PLAN: str = "repeated-leader-kill"

#: The protocols compared (the paper's three-way comparison), validated
#: against the registry.
PROTOCOLS: tuple[str, ...] = protocol_registry.PAPER_PROTOCOLS

#: Five servers: the paper's testbed size (Section VI-A).
DEFAULT_CLUSTER_SIZE: int = 5

#: Shortened horizon for ``--quick`` smoke passes.
QUICK_HORIZON_MS: Milliseconds = 30_000.0


@dataclass(frozen=True)
class AvailabilityResult:
    """Availability measurements per protocol under one chaos plan."""

    plan: ChaosPlan
    protocols: tuple[str, ...]
    cluster_size: int
    runs: int
    condition: str | None
    by_protocol: Mapping[str, AvailabilitySet]

    def set_for(self, protocol: str) -> AvailabilitySet:
        """Measurements for one protocol."""
        return self.by_protocol[protocol]

    def availability_for(self, protocol: str) -> float:
        """Mean available fraction for one protocol."""
        return self.set_for(protocol).mean_availability()

    def downtime_saved_vs_raft(self, protocol: str) -> float:
        """Leaderless-time reduction of *protocol* vs Raft, in percent."""
        raft = self.set_for("raft").mean_leaderless_ms()
        if raft <= 0.0:
            return 0.0
        other = self.set_for(protocol).mean_leaderless_ms()
        return 100.0 * (raft - other) / raft


def build_scenarios(
    plan: ChaosPlan,
    protocols: Sequence[str] = PROTOCOLS,
    cluster_size: int = DEFAULT_CLUSTER_SIZE,
    condition: str | None = None,
    workload_interval_ms: Milliseconds = 250.0,
) -> dict[str, ChaosScenario]:
    """One scenario per protocol, all sharing the same chaos plan.

    A paired design: every protocol faces the identical fault timeline, so
    differences in the availability fraction are election behaviour, not
    luck.  Protocols that livelock by design are rejected up front -- a
    sweep must stabilise a first leader before the window can open.
    """
    base = ChaosScenario(
        protocol="raft",
        cluster_size=cluster_size,
        plan=plan,
        workload_interval_ms=workload_interval_ms,
    )
    if condition is not None:
        resolved = get_condition(condition)
        base = replace(base, latency=resolved.latency, fault=resolved.fault)
    scenarios: dict[str, ChaosScenario] = {}
    for protocol in protocols:
        if not protocol_registry.get(protocol).guarantees_liveness:
            raise ConfigurationError(
                f"protocol {protocol!r} does not guarantee leader election "
                "(it livelocks by design) and cannot run an availability "
                "sweep"
            )
        scenarios[protocol] = base.with_protocol(protocol)
    return scenarios


def run(
    runs: int = 10,
    seed: int = 0,
    plan: str | ChaosPlan = DEFAULT_PLAN,
    protocols: Sequence[str] = PROTOCOLS,
    cluster_size: int = DEFAULT_CLUSTER_SIZE,
    horizon_ms: Milliseconds = DEFAULT_HORIZON_MS,
    condition: str | None = None,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
) -> AvailabilityResult:
    """Execute the availability sweep (optionally fanned out over *workers*).

    Args:
        plan: a catalog plan name (built for *horizon_ms* with *seed* jitter)
            or a pre-built :class:`ChaosPlan` (its own horizon wins).
        condition: optional named network condition from
            :mod:`repro.cluster.catalog` layered under the chaos plan.
    """
    resolved_plan = (
        plan if isinstance(plan, ChaosPlan) else build_plan(plan, horizon_ms, seed)
    )
    scenarios = build_scenarios(
        resolved_plan, protocols, cluster_size, condition=condition
    )
    by_protocol = run_scenario_set(
        scenarios,
        runs=runs,
        seed=seed,
        progress=progress,
        workers=workers,
        set_factory=AvailabilitySet,
    )
    return AvailabilityResult(
        plan=resolved_plan,
        protocols=tuple(protocols),
        cluster_size=cluster_size,
        runs=runs,
        condition=condition,
        by_protocol=by_protocol,
    )


def report(result: AvailabilityResult) -> str:
    """Render the per-protocol availability table.

    One row per protocol (display labels from the registry): availability
    fraction, mean leaderless time per run, outage count and mean recovery
    latency, applied disruptions, and the client's accepted/dropped proposal
    counts.  A downtime-reduction column appears when Raft is present as the
    baseline.
    """
    with_reduction = "raft" in result.protocols
    headers = [
        "protocol",
        "availability",
        "leaderless ms/run",
        "outages/run",
        "mean recovery (ms)",
        "disruptions/run",
        "proposals ok",
        "dropped",
    ]
    if with_reduction:
        headers.insert(2, "downtime saved vs Raft")
    rows = []
    for protocol in result.protocols:
        availability_set = result.set_for(protocol)
        recovery = availability_set.mean_recovery_ms()
        row: list[object] = [
            protocol_registry.title(protocol),
            f"{100.0 * availability_set.mean_availability():.2f}%",
            f"{availability_set.mean_leaderless_ms():.0f}",
            f"{availability_set.mean_outages():.1f}",
            f"{recovery:.0f}" if recovery is not None else "-",
            f"{availability_set.mean_disruptions():.1f}",
            availability_set.total_proposed(),
            availability_set.total_dropped(),
        ]
        if with_reduction:
            row.insert(2, f"{result.downtime_saved_vs_raft(protocol):+.1f}%")
        rows.append(row)
    condition_note = f", condition={result.condition}" if result.condition else ""
    return render_table(
        headers=headers,
        rows=rows,
        title=(
            "Steady-state availability — "
            f"{result.plan.describe()} "
            f"(s={result.cluster_size}, {result.runs} runs per protocol"
            f"{condition_note})"
        ),
    )


def registry_run(*, scenario: str | None = None, **kwargs) -> AvailabilityResult:
    """Registry adapter: ``scenario`` is the layered network condition."""
    return run(condition=scenario, **kwargs)


def _export_measurements(result: AvailabilityResult) -> Mapping[str, AvailabilitySet]:
    """Exporter binding: the per-protocol availability sets."""
    return result.by_protocol


SPEC = register(
    ExperimentSpec(
        name="avail",
        title="Steady-state availability under chaos plans",
        paper_ref="Sections I-II (implied, never measured)",
        description=(
            "every liveness protocol runs the same chaos fault timeline "
            "with a client workload; uptime is the end-to-end quantity "
            "faster elections are supposed to buy"
        ),
        run=registry_run,
        reporter=report,
        default_runs=10,
        params={
            "cluster_size": DEFAULT_CLUSTER_SIZE,
            "horizon_ms": DEFAULT_HORIZON_MS,
        },
        quick_params={"horizon_ms": QUICK_HORIZON_MS},
        supports_scenario=True,
        supports_protocols=True,
        supports_plan=True,
        exporter=ExporterBinding(
            kind="availability", extract=_export_measurements
        ),
    )
)

"""Figure 4: average Raft leader-election time vs timeout randomness.

Figure 4 averages the same sweep as Figure 3.  The paper's observation is the
*trade-off*: a small amount of randomness leaves frequent split votes (long
elections); a large amount avoids split votes but inflates the detection
period, so the average first drops and then climbs again as the range widens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.types import Milliseconds
from repro.experiments.base import ProgressCallback
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, ExporterBinding
from repro.experiments.fig03_randomization import (
    PAPER_TIMEOUT_RANGES,
    RandomizationResult,
    range_label,
    run as run_fig03,
)
from repro.metrics.tables import render_table


@dataclass(frozen=True)
class RandomizationAverageResult:
    """Average election time (and its decomposition) per timeout range."""

    timeout_ranges: tuple[tuple[Milliseconds, Milliseconds], ...]
    runs: int
    average_total_ms: tuple[float, ...]
    average_detection_ms: tuple[float, ...]
    average_election_ms: tuple[float, ...]

    def as_series(self) -> list[tuple[str, float]]:
        """(range label, average election time) pairs -- the Figure 4 series."""
        return [
            (range_label(timeout_range), average)
            for timeout_range, average in zip(self.timeout_ranges, self.average_total_ms)
        ]


def from_fig03(result: RandomizationResult) -> RandomizationAverageResult:
    """Derive the Figure 4 averages from an existing Figure 3 sweep."""
    totals = []
    detections = []
    elections = []
    for timeout_range in result.timeout_ranges:
        measurements = result.measurements_for(timeout_range).converged
        totals.append(measurements.mean_total_ms())
        detection = measurements.detections_ms()
        election = measurements.elections_ms()
        detections.append(sum(detection) / len(detection))
        elections.append(sum(election) / len(election))
    return RandomizationAverageResult(
        timeout_ranges=result.timeout_ranges,
        runs=result.runs,
        average_total_ms=tuple(totals),
        average_detection_ms=tuple(detections),
        average_election_ms=tuple(elections),
    )


def run(
    runs: int = 100,
    seed: int = 0,
    timeout_ranges: Sequence[tuple[Milliseconds, Milliseconds]] = PAPER_TIMEOUT_RANGES,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
) -> RandomizationAverageResult:
    """Execute the sweep and reduce it to the Figure 4 averages."""
    return from_fig03(
        run_fig03(
            runs=runs,
            seed=seed,
            timeout_ranges=timeout_ranges,
            progress=progress,
            workers=workers,
        )
    )


def report(result: RandomizationAverageResult) -> str:
    """Render the Figure 4 series as a table."""
    rows = []
    for index, timeout_range in enumerate(result.timeout_ranges):
        rows.append(
            [
                range_label(timeout_range),
                f"{result.average_detection_ms[index]:.0f}",
                f"{result.average_election_ms[index]:.0f}",
                f"{result.average_total_ms[index]:.0f}",
            ]
        )
    return render_table(
        headers=["timeout range (ms)", "detection (ms)", "election (ms)", "total (ms)"],
        rows=rows,
        title=(
            "Figure 4 — average Raft leader election time vs timeout randomness "
            f"({result.runs} runs per range)"
        ),
    )


def _export_rows(result: RandomizationAverageResult) -> list[dict[str, object]]:
    """Exporter binding: one aggregate row per timeout range."""
    return [
        {
            "timeout_range": range_label(timeout_range),
            "detection_ms": result.average_detection_ms[index],
            "election_ms": result.average_election_ms[index],
            "total_ms": result.average_total_ms[index],
        }
        for index, timeout_range in enumerate(result.timeout_ranges)
    ]


SPEC = register(
    ExperimentSpec(
        name="fig4",
        title="Average Raft election time vs timeout randomness",
        paper_ref="Figure 4 / Section III",
        description=(
            "the Figure 3 sweep averaged: the randomness trade-off between "
            "split votes and an inflated detection period"
        ),
        run=run,
        reporter=report,
        default_runs=100,
        params={"timeout_ranges": PAPER_TIMEOUT_RANGES},
        exporter=ExporterBinding(kind="rows", extract=_export_rows),
    )
)

"""Persisting experiment results to CSV and JSON.

Sweeps are expensive; these helpers let the CLI (and user scripts) save raw
per-run measurements and aggregate series to disk so figures can be re-plotted
or re-analysed without re-running the simulation.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Mapping

from repro.common.errors import ConfigurationError
from repro.metrics.records import (
    AvailabilityMeasurement,
    AvailabilitySet,
    ElectionMeasurement,
    MeasurementSet,
)

#: Column order of the per-run CSV export.
CSV_FIELDS = (
    "label",
    "protocol",
    "cluster_size",
    "seed",
    "converged",
    "crash_time_ms",
    "detection_ms",
    "election_ms",
    "total_ms",
    "campaign_count",
    "split_vote",
    "winner_id",
    "winner_term",
)


def measurement_to_row(measurement: ElectionMeasurement, label: str = "") -> dict[str, object]:
    """Flatten one measurement into a CSV/JSON-friendly dict."""
    return {
        "label": label,
        "protocol": measurement.protocol,
        "cluster_size": measurement.cluster_size,
        "seed": measurement.seed,
        "converged": measurement.converged,
        "crash_time_ms": round(measurement.crash_time_ms, 3),
        "detection_ms": round(measurement.detection_ms, 3),
        "election_ms": round(measurement.election_ms, 3),
        "total_ms": round(measurement.total_ms, 3),
        "campaign_count": measurement.campaign_count,
        "split_vote": measurement.split_vote,
        "winner_id": measurement.winner_id,
        "winner_term": measurement.winner_term,
    }


def write_measurements_csv(
    path: str | Path,
    measurement_sets: Mapping[str, MeasurementSet] | Mapping[str, Iterable[ElectionMeasurement]],
) -> Path:
    """Write every per-run measurement of a sweep to one CSV file.

    Args:
        path: destination file (parent directories are created).
        measurement_sets: mapping from cell label (e.g. ``"escape@32"``) to its
            measurements.

    Returns:
        The resolved path written to.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for label, measurements in measurement_sets.items():
            for measurement in measurements:
                writer.writerow(measurement_to_row(measurement, label))
    return destination


def read_measurements_csv(path: str | Path) -> list[dict[str, object]]:
    """Read back a CSV produced by :func:`write_measurements_csv`."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no such results file: {source}")
    with source.open() as handle:
        return list(csv.DictReader(handle))


def write_summary_json(
    path: str | Path,
    measurement_sets: Mapping[str, MeasurementSet],
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write aggregate statistics (per cell label) to a JSON file.

    The JSON carries, per label: run count, convergence fraction, split-vote
    fraction, and the mean/min/max of the total election time -- the numbers
    EXPERIMENTS.md quotes.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, object] = {"metadata": dict(metadata or {}), "cells": {}}
    cells: dict[str, object] = {}
    for label, measurements in measurement_sets.items():
        totals = measurements.totals_ms()
        cells[label] = {
            "runs": len(measurements),
            "convergence": measurements.convergence_fraction(),
            "split_vote_fraction": measurements.split_vote_fraction(),
            "mean_total_ms": sum(totals) / len(totals) if totals else None,
            "min_total_ms": min(totals) if totals else None,
            "max_total_ms": max(totals) if totals else None,
        }
    payload["cells"] = cells
    destination.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return destination


def read_summary_json(path: str | Path) -> dict[str, object]:
    """Read back a JSON summary produced by :func:`write_summary_json`."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no such summary file: {source}")
    return json.loads(source.read_text())


# --------------------------------------------------------------------------- #
# Availability records (the chaos `avail` experiment)
# --------------------------------------------------------------------------- #
#: Column order of the per-run availability CSV export.
AVAILABILITY_CSV_FIELDS = (
    "label",
    "protocol",
    "cluster_size",
    "seed",
    "plan",
    "start_ms",
    "end_ms",
    "available_ms",
    "leaderless_ms",
    "unavailability",
    "disruption_count",
    "skipped_disruptions",
    "outage_count",
    "mean_recovery_ms",
    "max_recovery_ms",
    "proposals_proposed",
    "proposals_dropped",
)


def availability_to_row(
    measurement: AvailabilityMeasurement, label: str = ""
) -> dict[str, object]:
    """Flatten one availability measurement into a CSV-friendly dict.

    The per-outage interval list does not fit a flat row; use the JSON writer
    for a lossless export.
    """
    mean_recovery = measurement.mean_recovery_ms
    max_recovery = measurement.max_recovery_ms
    return {
        "label": label,
        "protocol": measurement.protocol,
        "cluster_size": measurement.cluster_size,
        "seed": measurement.seed,
        "plan": measurement.plan,
        "start_ms": round(measurement.start_ms, 3),
        "end_ms": round(measurement.end_ms, 3),
        "available_ms": round(measurement.available_ms, 3),
        "leaderless_ms": round(measurement.leaderless_ms, 3),
        "unavailability": round(measurement.unavailability, 6),
        "disruption_count": measurement.disruption_count,
        "skipped_disruptions": measurement.skipped_disruptions,
        "outage_count": measurement.outage_count,
        "mean_recovery_ms": (
            round(mean_recovery, 3) if mean_recovery is not None else None
        ),
        "max_recovery_ms": (
            round(max_recovery, 3) if max_recovery is not None else None
        ),
        "proposals_proposed": measurement.proposals_proposed,
        "proposals_dropped": measurement.proposals_dropped,
    }


def write_availability_csv(
    path: str | Path,
    availability_sets: Mapping[str, AvailabilitySet]
    | Mapping[str, Iterable[AvailabilityMeasurement]],
) -> Path:
    """Write every per-run availability measurement of a sweep to one CSV."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=AVAILABILITY_CSV_FIELDS)
        writer.writeheader()
        for label, measurements in availability_sets.items():
            for measurement in measurements:
                writer.writerow(availability_to_row(measurement, label))
    return destination


def read_availability_csv(path: str | Path) -> list[dict[str, object]]:
    """Read back a CSV produced by :func:`write_availability_csv`."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no such results file: {source}")
    with source.open() as handle:
        return list(csv.DictReader(handle))


def _availability_to_json(measurement: AvailabilityMeasurement) -> dict[str, object]:
    return {
        "protocol": measurement.protocol,
        "cluster_size": measurement.cluster_size,
        "seed": measurement.seed,
        "plan": measurement.plan,
        "start_ms": measurement.start_ms,
        "end_ms": measurement.end_ms,
        "available_ms": measurement.available_ms,
        "leaderless_ms": measurement.leaderless_ms,
        "unavailability": measurement.unavailability,
        "disruption_count": measurement.disruption_count,
        "skipped_disruptions": measurement.skipped_disruptions,
        "outage_count": measurement.outage_count,
        "recovery_ms": list(measurement.recovery_ms),
        "proposals_proposed": measurement.proposals_proposed,
        "proposals_dropped": measurement.proposals_dropped,
        "leaderless_intervals": [list(pair) for pair in measurement.leaderless_intervals],
        "extra": dict(measurement.extra),
    }


def _availability_from_json(payload: Mapping[str, object]) -> AvailabilityMeasurement:
    return AvailabilityMeasurement(
        protocol=str(payload["protocol"]),
        cluster_size=int(payload["cluster_size"]),  # type: ignore[arg-type]
        seed=int(payload["seed"]),  # type: ignore[arg-type]
        plan=str(payload["plan"]),
        start_ms=float(payload["start_ms"]),  # type: ignore[arg-type]
        end_ms=float(payload["end_ms"]),  # type: ignore[arg-type]
        available_ms=float(payload["available_ms"]),  # type: ignore[arg-type]
        leaderless_ms=float(payload["leaderless_ms"]),  # type: ignore[arg-type]
        unavailability=float(payload["unavailability"]),  # type: ignore[arg-type]
        disruption_count=int(payload["disruption_count"]),  # type: ignore[arg-type]
        skipped_disruptions=int(payload["skipped_disruptions"]),  # type: ignore[arg-type]
        outage_count=int(payload["outage_count"]),  # type: ignore[arg-type]
        recovery_ms=tuple(payload["recovery_ms"]),  # type: ignore[arg-type]
        proposals_proposed=int(payload["proposals_proposed"]),  # type: ignore[arg-type]
        proposals_dropped=int(payload["proposals_dropped"]),  # type: ignore[arg-type]
        leaderless_intervals=tuple(
            (float(start), float(end))
            for start, end in payload["leaderless_intervals"]  # type: ignore[union-attr]
        ),
        extra=dict(payload["extra"]),  # type: ignore[arg-type]
    )


def write_availability_json(
    path: str | Path,
    availability_sets: Mapping[str, AvailabilitySet]
    | Mapping[str, Iterable[AvailabilityMeasurement]],
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write every availability measurement, losslessly, to a JSON file.

    Unlike the CSV flattening this keeps the raw per-outage intervals and
    recovery latencies, so :func:`read_availability_json` reconstructs the
    original :class:`AvailabilityMeasurement` records exactly (floats
    round-trip via JSON's double precision).
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, object] = {
        "metadata": dict(metadata or {}),
        "cells": {
            label: [_availability_to_json(m) for m in measurements]
            for label, measurements in availability_sets.items()
        },
    }
    destination.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return destination


def read_availability_json(
    path: str | Path,
) -> dict[str, AvailabilitySet]:
    """Read a JSON availability export back into per-label sets."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no such results file: {source}")
    payload = json.loads(source.read_text())
    return {
        label: AvailabilitySet(
            (_availability_from_json(entry) for entry in entries), label=label
        )
        for label, entries in payload["cells"].items()
    }

"""Persisting experiment results to CSV and JSON.

Sweeps are expensive; these helpers let the CLI (and user scripts) save raw
per-run measurements and aggregate series to disk so figures can be re-plotted
or re-analysed without re-running the simulation.

The registry-generic surface is :func:`save_run` / :func:`load_run`: given
the :class:`~repro.experiments.spec.ExperimentRun` envelope of *any*
registered experiment, ``save_run`` writes the raw measurements (CSV), a
lossless JSON export and the rendered report through the spec's exporter
binding, and ``load_run`` reconstructs the measurement payload exactly.
The per-shape writers (:func:`write_measurements_csv`,
:func:`write_availability_json`, :func:`write_rows_csv`, ...) remain public
for scripts that work below the envelope level.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.common.errors import ConfigurationError
from repro.metrics.records import (
    AvailabilityMeasurement,
    AvailabilitySet,
    ElectionMeasurement,
    MeasurementSet,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec is data-only)
    from repro.experiments.spec import ExperimentRun

#: Column order of the per-run CSV export.
CSV_FIELDS = (
    "label",
    "protocol",
    "cluster_size",
    "seed",
    "converged",
    "crash_time_ms",
    "detection_ms",
    "election_ms",
    "total_ms",
    "campaign_count",
    "split_vote",
    "winner_id",
    "winner_term",
)


def measurement_to_row(measurement: ElectionMeasurement, label: str = "") -> dict[str, object]:
    """Flatten one measurement into a CSV/JSON-friendly dict."""
    return {
        "label": label,
        "protocol": measurement.protocol,
        "cluster_size": measurement.cluster_size,
        "seed": measurement.seed,
        "converged": measurement.converged,
        "crash_time_ms": round(measurement.crash_time_ms, 3),
        "detection_ms": round(measurement.detection_ms, 3),
        "election_ms": round(measurement.election_ms, 3),
        "total_ms": round(measurement.total_ms, 3),
        "campaign_count": measurement.campaign_count,
        "split_vote": measurement.split_vote,
        "winner_id": measurement.winner_id,
        "winner_term": measurement.winner_term,
    }


def write_measurements_csv(
    path: str | Path,
    measurement_sets: Mapping[str, MeasurementSet] | Mapping[str, Iterable[ElectionMeasurement]],
) -> Path:
    """Write every per-run measurement of a sweep to one CSV file.

    Args:
        path: destination file (parent directories are created).
        measurement_sets: mapping from cell label (e.g. ``"escape@32"``) to its
            measurements.

    Returns:
        The resolved path written to.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for label, measurements in measurement_sets.items():
            for measurement in measurements:
                writer.writerow(measurement_to_row(measurement, label))
    return destination


def read_measurements_csv(path: str | Path) -> list[dict[str, object]]:
    """Read back a CSV produced by :func:`write_measurements_csv`."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no such results file: {source}")
    with source.open() as handle:
        return list(csv.DictReader(handle))


def write_summary_json(
    path: str | Path,
    measurement_sets: Mapping[str, MeasurementSet],
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write aggregate statistics (per cell label) to a JSON file.

    The JSON carries, per label: run count, convergence fraction, split-vote
    fraction, and the mean/min/max of the total election time -- the numbers
    EXPERIMENTS.md quotes.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, object] = {"metadata": dict(metadata or {}), "cells": {}}
    cells: dict[str, object] = {}
    for label, measurements in measurement_sets.items():
        totals = measurements.totals_ms()
        cells[label] = {
            "runs": len(measurements),
            "convergence": measurements.convergence_fraction(),
            "split_vote_fraction": measurements.split_vote_fraction(),
            "mean_total_ms": sum(totals) / len(totals) if totals else None,
            "min_total_ms": min(totals) if totals else None,
            "max_total_ms": max(totals) if totals else None,
        }
    payload["cells"] = cells
    destination.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return destination


def read_summary_json(path: str | Path) -> dict[str, object]:
    """Read back a JSON summary produced by :func:`write_summary_json`."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no such summary file: {source}")
    return json.loads(source.read_text())


# --------------------------------------------------------------------------- #
# Availability records (the chaos `avail` experiment)
# --------------------------------------------------------------------------- #
#: Column order of the per-run availability CSV export.
AVAILABILITY_CSV_FIELDS = (
    "label",
    "protocol",
    "cluster_size",
    "seed",
    "plan",
    "start_ms",
    "end_ms",
    "available_ms",
    "leaderless_ms",
    "unavailability",
    "disruption_count",
    "skipped_disruptions",
    "outage_count",
    "mean_recovery_ms",
    "max_recovery_ms",
    "proposals_proposed",
    "proposals_dropped",
)


def availability_to_row(
    measurement: AvailabilityMeasurement, label: str = ""
) -> dict[str, object]:
    """Flatten one availability measurement into a CSV-friendly dict.

    The per-outage interval list does not fit a flat row; use the JSON writer
    for a lossless export.
    """
    mean_recovery = measurement.mean_recovery_ms
    max_recovery = measurement.max_recovery_ms
    return {
        "label": label,
        "protocol": measurement.protocol,
        "cluster_size": measurement.cluster_size,
        "seed": measurement.seed,
        "plan": measurement.plan,
        "start_ms": round(measurement.start_ms, 3),
        "end_ms": round(measurement.end_ms, 3),
        "available_ms": round(measurement.available_ms, 3),
        "leaderless_ms": round(measurement.leaderless_ms, 3),
        "unavailability": round(measurement.unavailability, 6),
        "disruption_count": measurement.disruption_count,
        "skipped_disruptions": measurement.skipped_disruptions,
        "outage_count": measurement.outage_count,
        "mean_recovery_ms": (
            round(mean_recovery, 3) if mean_recovery is not None else None
        ),
        "max_recovery_ms": (
            round(max_recovery, 3) if max_recovery is not None else None
        ),
        "proposals_proposed": measurement.proposals_proposed,
        "proposals_dropped": measurement.proposals_dropped,
    }


def write_availability_csv(
    path: str | Path,
    availability_sets: Mapping[str, AvailabilitySet]
    | Mapping[str, Iterable[AvailabilityMeasurement]],
) -> Path:
    """Write every per-run availability measurement of a sweep to one CSV."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=AVAILABILITY_CSV_FIELDS)
        writer.writeheader()
        for label, measurements in availability_sets.items():
            for measurement in measurements:
                writer.writerow(availability_to_row(measurement, label))
    return destination


def read_availability_csv(path: str | Path) -> list[dict[str, object]]:
    """Read back a CSV produced by :func:`write_availability_csv`."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no such results file: {source}")
    with source.open() as handle:
        return list(csv.DictReader(handle))


def _availability_to_json(measurement: AvailabilityMeasurement) -> dict[str, object]:
    return {
        "protocol": measurement.protocol,
        "cluster_size": measurement.cluster_size,
        "seed": measurement.seed,
        "plan": measurement.plan,
        "start_ms": measurement.start_ms,
        "end_ms": measurement.end_ms,
        "available_ms": measurement.available_ms,
        "leaderless_ms": measurement.leaderless_ms,
        "unavailability": measurement.unavailability,
        "disruption_count": measurement.disruption_count,
        "skipped_disruptions": measurement.skipped_disruptions,
        "outage_count": measurement.outage_count,
        "recovery_ms": list(measurement.recovery_ms),
        "proposals_proposed": measurement.proposals_proposed,
        "proposals_dropped": measurement.proposals_dropped,
        "leaderless_intervals": [list(pair) for pair in measurement.leaderless_intervals],
        "extra": dict(measurement.extra),
    }


def _availability_from_json(payload: Mapping[str, object]) -> AvailabilityMeasurement:
    return AvailabilityMeasurement(
        protocol=str(payload["protocol"]),
        cluster_size=int(payload["cluster_size"]),  # type: ignore[arg-type]
        seed=int(payload["seed"]),  # type: ignore[arg-type]
        plan=str(payload["plan"]),
        start_ms=float(payload["start_ms"]),  # type: ignore[arg-type]
        end_ms=float(payload["end_ms"]),  # type: ignore[arg-type]
        available_ms=float(payload["available_ms"]),  # type: ignore[arg-type]
        leaderless_ms=float(payload["leaderless_ms"]),  # type: ignore[arg-type]
        unavailability=float(payload["unavailability"]),  # type: ignore[arg-type]
        disruption_count=int(payload["disruption_count"]),  # type: ignore[arg-type]
        skipped_disruptions=int(payload["skipped_disruptions"]),  # type: ignore[arg-type]
        outage_count=int(payload["outage_count"]),  # type: ignore[arg-type]
        recovery_ms=tuple(payload["recovery_ms"]),  # type: ignore[arg-type]
        proposals_proposed=int(payload["proposals_proposed"]),  # type: ignore[arg-type]
        proposals_dropped=int(payload["proposals_dropped"]),  # type: ignore[arg-type]
        leaderless_intervals=tuple(
            (float(start), float(end))
            for start, end in payload["leaderless_intervals"]  # type: ignore[union-attr]
        ),
        extra=dict(payload["extra"]),  # type: ignore[arg-type]
    )


def write_availability_json(
    path: str | Path,
    availability_sets: Mapping[str, AvailabilitySet]
    | Mapping[str, Iterable[AvailabilityMeasurement]],
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write every availability measurement, losslessly, to a JSON file.

    Unlike the CSV flattening this keeps the raw per-outage intervals and
    recovery latencies, so :func:`read_availability_json` reconstructs the
    original :class:`AvailabilityMeasurement` records exactly (floats
    round-trip via JSON's double precision).
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, object] = {
        "metadata": dict(metadata or {}),
        "cells": {
            label: [_availability_to_json(m) for m in measurements]
            for label, measurements in availability_sets.items()
        },
    }
    destination.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return destination


def read_availability_json(
    path: str | Path,
) -> dict[str, AvailabilitySet]:
    """Read a JSON availability export back into per-label sets."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no such results file: {source}")
    payload = json.loads(source.read_text())
    return {
        label: AvailabilitySet(
            (_availability_from_json(entry) for entry in entries), label=label
        )
        for label, entries in payload["cells"].items()
    }


# --------------------------------------------------------------------------- #
# Lossless election-measurement JSON (the generic export path's raw format)
# --------------------------------------------------------------------------- #
def _measurement_to_json(measurement: ElectionMeasurement) -> dict[str, object]:
    return {
        "protocol": measurement.protocol,
        "cluster_size": measurement.cluster_size,
        "seed": measurement.seed,
        "converged": measurement.converged,
        "crash_time_ms": measurement.crash_time_ms,
        "detection_ms": measurement.detection_ms,
        "election_ms": measurement.election_ms,
        "total_ms": measurement.total_ms,
        "campaign_count": measurement.campaign_count,
        "split_vote": measurement.split_vote,
        "winner_id": measurement.winner_id,
        "winner_term": measurement.winner_term,
        "extra": dict(measurement.extra),
    }


def _tuplify(value: object) -> object:
    """Restore JSON arrays as tuples (the harness stores immutable extras)."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    if isinstance(value, dict):
        return {key: _tuplify(item) for key, item in value.items()}
    return value


def _measurement_from_json(payload: Mapping[str, object]) -> ElectionMeasurement:
    winner_id = payload["winner_id"]
    winner_term = payload["winner_term"]
    return ElectionMeasurement(
        protocol=str(payload["protocol"]),
        cluster_size=int(payload["cluster_size"]),  # type: ignore[arg-type]
        seed=int(payload["seed"]),  # type: ignore[arg-type]
        converged=bool(payload["converged"]),
        crash_time_ms=float(payload["crash_time_ms"]),  # type: ignore[arg-type]
        detection_ms=float(payload["detection_ms"]),  # type: ignore[arg-type]
        election_ms=float(payload["election_ms"]),  # type: ignore[arg-type]
        total_ms=float(payload["total_ms"]),  # type: ignore[arg-type]
        campaign_count=int(payload["campaign_count"]),  # type: ignore[arg-type]
        split_vote=bool(payload["split_vote"]),
        winner_id=None if winner_id is None else int(winner_id),  # type: ignore[arg-type]
        winner_term=None if winner_term is None else int(winner_term),  # type: ignore[arg-type]
        extra=_tuplify(dict(payload["extra"])),  # type: ignore[arg-type]
    )


def write_measurements_json(
    path: str | Path,
    measurement_sets: Mapping[str, MeasurementSet]
    | Mapping[str, Iterable[ElectionMeasurement]],
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write every per-run election measurement, losslessly, to a JSON file.

    Unlike the CSV flattening (which rounds for readability) this keeps every
    field bit-exact, so :func:`read_measurements_json` reconstructs the
    original :class:`ElectionMeasurement` records.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, object] = {
        "metadata": dict(metadata or {}),
        "cells": {
            label: [_measurement_to_json(m) for m in measurements]
            for label, measurements in measurement_sets.items()
        },
    }
    destination.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str))
    return destination


def read_measurements_json(path: str | Path) -> dict[str, MeasurementSet]:
    """Read a JSON election export back into per-label measurement sets."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no such results file: {source}")
    payload = json.loads(source.read_text())
    return {
        label: MeasurementSet(
            (_measurement_from_json(entry) for entry in entries), label=label
        )
        for label, entries in payload["cells"].items()
    }


# --------------------------------------------------------------------------- #
# Flat aggregate rows (experiments whose results are cells, not raw episodes)
# --------------------------------------------------------------------------- #
def aggregate_to_row(label: str, aggregate) -> dict[str, object]:
    """Flatten one streaming :class:`~repro.metrics.streaming.ElectionAggregate`
    into a scalar ``"rows"``-kind dict.

    The streaming sweep path never retains episodes, so its export is one
    aggregate row per cell -- counts, fractions and the summary statistics of
    the converged total election time (``None`` when nothing converged).
    """
    summary = aggregate.total_summary() if aggregate.converged else None
    return {
        "label": label,
        "runs": aggregate.runs,
        "converged": aggregate.converged,
        "convergence": round(aggregate.convergence_fraction(), 6),
        "split_vote_fraction": round(aggregate.split_vote_fraction(), 6),
        "mean_campaigns": (
            round(aggregate.mean_campaigns(), 6) if aggregate.runs else None
        ),
        "mean_total_ms": round(summary.mean, 3) if summary else None,
        "p50_total_ms": round(summary.median, 3) if summary else None,
        "p95_total_ms": round(summary.p95, 3) if summary else None,
        "p99_total_ms": round(summary.p99, 3) if summary else None,
        "min_total_ms": round(summary.minimum, 3) if summary else None,
        "max_total_ms": round(summary.maximum, 3) if summary else None,
        "std_total_ms": round(summary.std_dev, 3) if summary else None,
    }


def write_rows_csv(path: str | Path, rows: Sequence[Mapping[str, object]]) -> Path:
    """Write a sequence of uniform scalar-valued dicts to one CSV file."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    fieldnames = list(rows[0]) if rows else []
    with destination.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return destination


def read_rows_csv(path: str | Path) -> list[dict[str, object]]:
    """Read back a CSV produced by :func:`write_rows_csv` (values as text)."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no such results file: {source}")
    with source.open() as handle:
        return list(csv.DictReader(handle))


def write_rows_json(
    path: str | Path,
    rows: Sequence[Mapping[str, object]],
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write aggregate rows, losslessly (types preserved), to a JSON file."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    payload = {"metadata": dict(metadata or {}), "cells": [dict(row) for row in rows]}
    destination.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str))
    return destination


def read_rows_json(path: str | Path) -> list[dict[str, object]]:
    """Read back the rows written by :func:`write_rows_json`."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no such results file: {source}")
    return [dict(row) for row in json.loads(source.read_text())["cells"]]


# --------------------------------------------------------------------------- #
# Registry-generic persistence (the CLI's --output path)
# --------------------------------------------------------------------------- #
def save_run(run: "ExperimentRun", directory: str | Path) -> dict[str, Path]:
    """Persist one experiment run through its spec's exporter binding.

    Writes three files into *directory* (created if needed), prefixed with
    the experiment name so ``all --output DIR`` can share one directory:

    * ``<name>.csv`` -- the raw measurements (or aggregate rows) flattened;
    * ``<name>.json`` -- a lossless export plus the run's metadata
      (seed, runs, workers, resolved parameters, notes, and the wall-clock
      phase profile from :class:`repro.obs.profiling.Profiler`);
    * ``<name>.report.txt`` -- the rendered report the CLI printed.

    Measurement ``extra`` payloads -- including the telemetry snapshot state
    a ``telemetry=True`` scenario attaches -- ride the JSON export verbatim
    and are restored by :func:`load_run` (arrays come back as tuples, which
    :meth:`repro.obs.telemetry.TelemetrySnapshot.from_state` accepts).

    Returns:
        Mapping of ``{"csv": ..., "json": ..., "report": ...}`` paths.

    Raises:
        ConfigurationError: when the experiment's spec declares no exporter.
    """
    from repro.experiments import registry

    spec = registry.get(run.name)
    if spec.exporter is None:
        raise ConfigurationError(
            f"experiment {run.name!r} declares no exporter binding; "
            "it cannot be persisted through the generic export path"
        )
    destination = Path(directory)
    destination.mkdir(parents=True, exist_ok=True)
    payload = spec.exporter.extract(run.result)
    metadata = dict(run.metadata(), export_kind=spec.exporter.kind)
    csv_path = destination / f"{run.name}.csv"
    json_path = destination / f"{run.name}.json"
    if spec.exporter.kind == "election":
        write_measurements_csv(csv_path, payload)
        write_measurements_json(json_path, payload, metadata=metadata)
    elif spec.exporter.kind == "availability":
        write_availability_csv(csv_path, payload)
        write_availability_json(json_path, payload, metadata=metadata)
    else:  # "rows" -- validated by ExporterBinding.__post_init__
        write_rows_csv(csv_path, payload)
        write_rows_json(json_path, payload, metadata=metadata)
    report_path = destination / f"{run.name}.report.txt"
    report_path.write_text(run.report + "\n")
    return {"csv": csv_path, "json": json_path, "report": report_path}


def load_run(name: str, directory: str | Path) -> tuple[dict[str, object], object]:
    """Load the lossless JSON export written by :func:`save_run`.

    Returns:
        ``(metadata, payload)``: the run metadata dict, and the payload in
        the shape the exporter binding extracted -- per-label
        :class:`MeasurementSet`/:class:`AvailabilitySet` mappings for the
        ``"election"``/``"availability"`` kinds, a list of row dicts for
        ``"rows"``.
    """
    source = Path(directory) / f"{name}.json"
    if not source.exists():
        raise ConfigurationError(f"no such results file: {source}")
    metadata = json.loads(source.read_text())["metadata"]
    kind = metadata.get("export_kind")
    if kind == "election":
        return metadata, read_measurements_json(source)
    if kind == "availability":
        return metadata, read_availability_json(source)
    if kind == "rows":
        return metadata, read_rows_json(source)
    raise ConfigurationError(
        f"results file {source} carries unknown export kind {kind!r}"
    )

"""Persisting experiment results to CSV and JSON.

Sweeps are expensive; these helpers let the CLI (and user scripts) save raw
per-run measurements and aggregate series to disk so figures can be re-plotted
or re-analysed without re-running the simulation.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Mapping

from repro.common.errors import ConfigurationError
from repro.metrics.records import ElectionMeasurement, MeasurementSet

#: Column order of the per-run CSV export.
CSV_FIELDS = (
    "label",
    "protocol",
    "cluster_size",
    "seed",
    "converged",
    "crash_time_ms",
    "detection_ms",
    "election_ms",
    "total_ms",
    "campaign_count",
    "split_vote",
    "winner_id",
    "winner_term",
)


def measurement_to_row(measurement: ElectionMeasurement, label: str = "") -> dict[str, object]:
    """Flatten one measurement into a CSV/JSON-friendly dict."""
    return {
        "label": label,
        "protocol": measurement.protocol,
        "cluster_size": measurement.cluster_size,
        "seed": measurement.seed,
        "converged": measurement.converged,
        "crash_time_ms": round(measurement.crash_time_ms, 3),
        "detection_ms": round(measurement.detection_ms, 3),
        "election_ms": round(measurement.election_ms, 3),
        "total_ms": round(measurement.total_ms, 3),
        "campaign_count": measurement.campaign_count,
        "split_vote": measurement.split_vote,
        "winner_id": measurement.winner_id,
        "winner_term": measurement.winner_term,
    }


def write_measurements_csv(
    path: str | Path,
    measurement_sets: Mapping[str, MeasurementSet] | Mapping[str, Iterable[ElectionMeasurement]],
) -> Path:
    """Write every per-run measurement of a sweep to one CSV file.

    Args:
        path: destination file (parent directories are created).
        measurement_sets: mapping from cell label (e.g. ``"escape@32"``) to its
            measurements.

    Returns:
        The resolved path written to.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for label, measurements in measurement_sets.items():
            for measurement in measurements:
                writer.writerow(measurement_to_row(measurement, label))
    return destination


def read_measurements_csv(path: str | Path) -> list[dict[str, object]]:
    """Read back a CSV produced by :func:`write_measurements_csv`."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no such results file: {source}")
    with source.open() as handle:
        return list(csv.DictReader(handle))


def write_summary_json(
    path: str | Path,
    measurement_sets: Mapping[str, MeasurementSet],
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write aggregate statistics (per cell label) to a JSON file.

    The JSON carries, per label: run count, convergence fraction, split-vote
    fraction, and the mean/min/max of the total election time -- the numbers
    EXPERIMENTS.md quotes.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, object] = {"metadata": dict(metadata or {}), "cells": {}}
    cells: dict[str, object] = {}
    for label, measurements in measurement_sets.items():
        totals = measurements.totals_ms()
        cells[label] = {
            "runs": len(measurements),
            "convergence": measurements.convergence_fraction(),
            "split_vote_fraction": measurements.split_vote_fraction(),
            "mean_total_ms": sum(totals) / len(totals) if totals else None,
            "min_total_ms": min(totals) if totals else None,
            "max_total_ms": max(totals) if totals else None,
        }
    payload["cells"] = cells
    destination.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return destination


def read_summary_json(path: str | Path) -> dict[str, object]:
    """Read back a JSON summary produced by :func:`write_summary_json`."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"no such summary file: {source}")
    return json.loads(source.read_text())

"""Throughput experiment: commit latency and goodput under elections.

The paper's figures measure election time; what a client feels is commit
latency and requests lost while the cluster re-elects.  This experiment runs
every compared protocol under the *same* chaos plan while a registered
workload (see :mod:`repro.workload.specs`) issues and tracks client
requests, and reports the client-side serving quantities: sustained ops/sec,
p50/p99/p99.9 commit latency, the throughput dip carved out by election
windows, drops while leaderless, and ops lost per failover
(proposed-but-never-committed, verified against the surviving log).

Every capability of the harness applies: ``--plan`` selects the fault
timeline, ``--scenario`` layers a network condition underneath,
``--protocols`` changes the comparison, ``--streaming``/``--checkpoint``
switch to the memory-bounded mergeable-aggregate path, and ``--trace-out``
archives one traced episode per cell.  Latencies feed
:class:`~repro.metrics.streaming.StreamingSummary`, so results are
bit-identical at any ``--workers`` count and across both engines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro import protocols as protocol_registry
from repro.chaos.plans import DEFAULT_HORIZON_MS, ChaosPlan, build_plan
from repro.cluster.catalog import get_condition
from repro.common.errors import ConfigurationError
from repro.common.types import Milliseconds
from repro.experiments.base import ProgressCallback
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, ExporterBinding
from repro.metrics.tables import render_table
from repro.obs.trace import archive_election_traces
from repro.workload import WorkloadAggregate, WorkloadSet
from repro.workload import specs as workload_specs
from repro.workload.scenario import ThroughputScenario

#: The default plan: the steady-state cost of elections themselves.
DEFAULT_PLAN: str = "repeated-leader-kill"

#: The protocols compared (the paper's three-way comparison).
PROTOCOLS: tuple[str, ...] = protocol_registry.PAPER_PROTOCOLS

#: The default workload pair: one closed-loop and one open-loop shape.
DEFAULT_WORKLOADS: tuple[str, ...] = ("closed-loop", "open-poisson")

#: Five servers: the paper's testbed size (Section VI-A).
DEFAULT_CLUSTER_SIZE: int = 5

#: Shortened horizon for ``--quick`` smoke passes.
QUICK_HORIZON_MS: Milliseconds = 30_000.0


def throughput_label(protocol: str, workload: str) -> str:
    """Label for one (protocol, workload) cell, e.g. ``"escape/closed-loop"``."""
    return f"{protocol}/{workload}"


@dataclass(frozen=True)
class ThroughputResult:
    """Workload aggregates per (protocol, workload) cell under one plan.

    Both data paths land here: the streaming sweep produces the aggregates
    directly, the raw path converts its measurement sets via
    :meth:`WorkloadAggregate.from_measurements` -- so reports and exports
    are path-independent (bit-identical while the latency sketches stay in
    their exact regime).
    """

    plan: ChaosPlan
    protocols: tuple[str, ...]
    workloads: tuple[str, ...]
    cluster_size: int
    runs: int
    condition: str | None
    by_label: Mapping[str, WorkloadAggregate]
    #: Which data path produced the aggregates (provenance only).
    streaming: bool = False

    def aggregate_for(self, protocol: str, workload: str) -> WorkloadAggregate:
        """The aggregate for one (protocol, workload) cell."""
        return self.by_label[throughput_label(protocol, workload)]

    def ops_per_s_for(self, protocol: str, workload: str) -> float:
        """Sustained committed throughput for one cell."""
        return self.aggregate_for(protocol, workload).ops_per_s()


def build_scenarios(
    plan: ChaosPlan,
    protocols: Sequence[str] = PROTOCOLS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    cluster_size: int = DEFAULT_CLUSTER_SIZE,
    condition: str | None = None,
) -> dict[str, ThroughputScenario]:
    """One scenario per (protocol, workload) cell, sharing one chaos plan.

    A paired design twice over: every protocol faces the identical fault
    timeline, and every workload shape runs against every protocol, so cell
    differences are protocol behaviour, not luck.  Protocols that livelock
    by design are rejected up front.
    """
    base = ThroughputScenario(
        protocol="raft", cluster_size=cluster_size, plan=plan
    )
    if condition is not None:
        resolved = get_condition(condition)
        base = replace(base, latency=resolved.latency, fault=resolved.fault)
    scenarios: dict[str, ThroughputScenario] = {}
    for workload in workloads:
        workload_specs.get(workload)
        for protocol in protocols:
            if not protocol_registry.get(protocol).guarantees_liveness:
                raise ConfigurationError(
                    f"protocol {protocol!r} does not guarantee leader "
                    "election (it livelocks by design) and cannot serve a "
                    "workload"
                )
            scenarios[throughput_label(protocol, workload)] = replace(
                base, protocol=protocol, workload=workload
            )
    return scenarios


def run(
    runs: int = 5,
    seed: int = 0,
    plan: str | ChaosPlan = DEFAULT_PLAN,
    protocols: Sequence[str] = PROTOCOLS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    cluster_size: int = DEFAULT_CLUSTER_SIZE,
    horizon_ms: Milliseconds = DEFAULT_HORIZON_MS,
    condition: str | None = None,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
    streaming: bool = False,
    checkpoint: str | None = None,
    trace: str | None = None,
) -> ThroughputResult:
    """Execute the throughput sweep (optionally fanned out over *workers*).

    Args:
        plan: a catalog plan name (built for *horizon_ms* with *seed*
            jitter) or a pre-built :class:`ChaosPlan` (its own horizon wins).
        workloads: registered workload names, one sweep row each.
        condition: optional named network condition from
            :mod:`repro.cluster.catalog` layered under the chaos plan.
        streaming: aggregate worker-side into mergeable partials; with
            *checkpoint* (a directory) the sweep resumes bit-identically
            after a kill.
        trace: directory into which one traced episode per cell is archived
            afterwards (JSONL + telemetry snapshots).
    """
    from repro.experiments.runner import run_sweep

    resolved_plan = (
        plan if isinstance(plan, ChaosPlan) else build_plan(plan, horizon_ms, seed)
    )
    scenarios = build_scenarios(
        resolved_plan, protocols, workloads, cluster_size, condition=condition
    )
    if streaming:
        by_label = run_sweep(
            scenarios,
            runs=runs,
            seed=seed,
            progress=progress,
            workers=workers,
            streaming=True,
            aggregate_factory=WorkloadAggregate,
            checkpoint=checkpoint,
        )
    else:
        if checkpoint is not None:
            raise ConfigurationError(
                "checkpointing requires the streaming path; "
                "drop streaming=False or the checkpoint"
            )
        raw = run_sweep(
            scenarios,
            runs=runs,
            seed=seed,
            progress=progress,
            workers=workers,
            set_factory=WorkloadSet,
        )
        by_label = {
            label: WorkloadAggregate.from_measurements(
                workload_set.measurements, label
            )
            for label, workload_set in raw.items()
        }
    if trace is not None:
        archive_election_traces(scenarios, seed, trace)
    return ThroughputResult(
        plan=resolved_plan,
        protocols=tuple(protocols),
        workloads=tuple(workloads),
        cluster_size=cluster_size,
        runs=runs,
        condition=condition,
        by_label=by_label,
        streaming=streaming,
    )


def report(result: ThroughputResult) -> str:
    """Render the per-cell serving table.

    One row per (workload, protocol): sustained ops/sec, commit-latency
    percentiles, the election-window throughput dip, client drops while
    leaderless and ops lost per failover.  Deliberately derived from the
    aggregates alone, so the streaming and in-memory paths render identical
    reports whenever their aggregates agree.
    """
    headers = [
        "workload",
        "protocol",
        "ops/s",
        "p50 (ms)",
        "p99 (ms)",
        "p99.9 (ms)",
        "dip",
        "dropped/run",
        "lost/failover",
        "outages/run",
    ]
    rows = []
    for workload in result.workloads:
        for protocol in result.protocols:
            aggregate = result.aggregate_for(protocol, workload)
            with_latency = aggregate.latency_ms.count > 0
            rows.append(
                [
                    workload,
                    protocol_registry.title(protocol),
                    f"{aggregate.ops_per_s():.1f}",
                    f"{aggregate.p50_ms():.0f}" if with_latency else "-",
                    f"{aggregate.p99_ms():.0f}" if with_latency else "-",
                    f"{aggregate.p999_ms():.0f}" if with_latency else "-",
                    f"{aggregate.election_dip_percent():.1f}%",
                    f"{aggregate.dropped_per_run():.1f}",
                    f"{aggregate.lost_per_failover():.2f}",
                    f"{aggregate.outages_per_run():.1f}",
                ]
            )
    condition_note = f", condition={result.condition}" if result.condition else ""
    return render_table(
        headers=headers,
        rows=rows,
        title=(
            "Throughput under elections — "
            f"{result.plan.describe()} "
            f"(s={result.cluster_size}, {result.runs} runs per cell"
            f"{condition_note})"
        ),
    )


def registry_run(*, scenario: str | None = None, **kwargs) -> ThroughputResult:
    """Registry adapter: ``scenario`` is the layered network condition."""
    return run(condition=scenario, **kwargs)


def workload_aggregate_to_row(
    label: str, aggregate: WorkloadAggregate
) -> dict[str, object]:
    """Flatten one :class:`WorkloadAggregate` into a scalar ``rows`` dict."""
    with_latency = aggregate.latency_ms.count > 0
    return {
        "label": label,
        "runs": aggregate.runs,
        "proposed": aggregate.proposed,
        "committed": aggregate.committed,
        "retries": aggregate.retries,
        "dropped": aggregate.dropped,
        "rejected": aggregate.rejected,
        "lost": aggregate.lost,
        "outages": aggregate.outages,
        "ops_per_s": round(aggregate.ops_per_s(), 3),
        "dip_percent": round(aggregate.election_dip_percent(), 3),
        "lost_per_failover": round(aggregate.lost_per_failover(), 6),
        "p50_ms": round(aggregate.p50_ms(), 3) if with_latency else None,
        "p99_ms": round(aggregate.p99_ms(), 3) if with_latency else None,
        "p999_ms": round(aggregate.p999_ms(), 3) if with_latency else None,
        "mean_ms": (
            round(aggregate.latency_ms.mean, 3) if with_latency else None
        ),
        "max_ms": (
            round(aggregate.latency_ms.maximum, 3) if with_latency else None
        ),
    }


def _export_rows(result: ThroughputResult) -> list[dict[str, object]]:
    """Exporter binding: one aggregate row per (protocol, workload) cell."""
    return [
        workload_aggregate_to_row(label, aggregate)
        for label, aggregate in result.by_label.items()
    ]


SPEC = register(
    ExperimentSpec(
        name="throughput",
        title="Commit latency and goodput under elections",
        paper_ref="Sections I-II (implied, never measured)",
        description=(
            "registered workloads issue tracked client requests while every "
            "protocol rides the same chaos plan; reports ops/sec, p50/p99/"
            "p999 commit latency, election-window dips and failover losses"
        ),
        run=registry_run,
        reporter=report,
        default_runs=5,
        params={
            "cluster_size": DEFAULT_CLUSTER_SIZE,
            "horizon_ms": DEFAULT_HORIZON_MS,
            "workloads": DEFAULT_WORKLOADS,
        },
        quick_params={"horizon_ms": QUICK_HORIZON_MS},
        supports_scenario=True,
        supports_protocols=True,
        supports_plan=True,
        supports_streaming=True,
        supports_trace=True,
        exporter=ExporterBinding(kind="rows", extract=_export_rows),
    )
)

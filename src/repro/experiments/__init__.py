"""Experiment harness: a plugin registry of the paper's evaluation figures.

Every module under this package describes one experiment and registers a
frozen :class:`~repro.experiments.spec.ExperimentSpec` (name, title, paper
figure/section, capability flags, default + quick-mode parameter sets, run
callable, reporter, exporter binding) with
:mod:`repro.experiments.registry`.  The registry is the single source of
truth for "which experiments exist": the CLI (``python -m repro.experiments``)
derives its choices, help text, capability validation and quick-mode
overrides from it, ``--output DIR`` persists any result through the spec's
exporter binding, and EXPERIMENTS.md embeds the generated registry table.

Programmatic use goes through one entry point::

    from repro.experiments import run_experiment

    run = run_experiment("fig9", runs=100, workers=0)
    print(run.report)          # the table the CLI prints
    run.result                 # the experiment's raw result object
    run.elapsed_s, run.seed    # run metadata

All sweeps execute through the parallel engine in
:mod:`repro.experiments.runner`: pass ``workers=N`` (or ``--workers N`` on
the CLI) to fan the episodes out over N processes with bit-for-bit identical
results.

See EXPERIMENTS.md for the registry table and the paper-vs-measured
comparison, and ``python -m repro.experiments --list`` for the live registry.
"""

# Importing an experiment module registers its spec; the import order below
# is the registration order, which the CLI surfaces as its choice order
# (paper figures first, then the extension experiments and ablations).
from repro.experiments import fig03_randomization
from repro.experiments import fig04_randomization_average
from repro.experiments import fig09_scale
from repro.experiments import fig09_xl_scale
from repro.experiments import fig10_competing_candidates
from repro.experiments import fig11_message_loss
from repro.experiments import exp_wan
from repro.experiments import exp_availability
from repro.experiments import exp_throughput
from repro.experiments import ablation_ppf
from repro.experiments import ablation_k_sweep
from repro.experiments import adapter_redis
from repro.experiments import registry
from repro.experiments.registry import run_experiment
from repro.experiments.spec import ExperimentRun, ExperimentSpec, ExporterBinding

__all__ = [
    "ExperimentRun",
    "ExperimentSpec",
    "ExporterBinding",
    "ablation_k_sweep",
    "ablation_ppf",
    "adapter_redis",
    "exp_availability",
    "exp_throughput",
    "exp_wan",
    "fig03_randomization",
    "fig04_randomization_average",
    "fig09_scale",
    "fig09_xl_scale",
    "fig10_competing_candidates",
    "fig11_message_loss",
    "registry",
    "run_experiment",
]

"""Experiment harness: one module per figure of the paper's evaluation.

Every module exposes:

* ``run(...)`` -- execute the sweep and return a structured result object;
* ``report(result)`` -- render the same rows/series the paper plots as a
  plain-text table;
* sensible defaults small enough for a laptop, with ``runs`` (and, where
  relevant, the list of cluster sizes) exposed so the paper's full 1000-run
  sweeps can be reproduced with ``python -m repro.experiments <name> --runs
  1000``.

All sweeps execute through the parallel engine in
:mod:`repro.experiments.runner`: pass ``workers=N`` to any ``run(...)`` (or
``--workers N`` on the CLI) to fan the episodes out over N processes with
bit-for-bit identical results.

Index (see DESIGN.md §3 for the full mapping):

==========================================  =========================================
Module                                      Paper artefact
==========================================  =========================================
:mod:`repro.experiments.fig03_randomization`        Figure 3 (CDF vs timeout randomness)
:mod:`repro.experiments.fig04_randomization_average` Figure 4 (average vs randomness)
:mod:`repro.experiments.fig09_scale`                Figure 9 (CDFs + average vs scale)
:mod:`repro.experiments.fig10_competing_candidates` Figure 10 (forced contention phases)
:mod:`repro.experiments.fig11_message_loss`         Figure 11 (message loss, 3 protocols)
:mod:`repro.experiments.ablation_ppf`               Ablation: SCA without PPF under churn
:mod:`repro.experiments.ablation_k_sweep`           Ablation: Eq. 1 priority gap ``k``
:mod:`repro.experiments.exp_wan`                    WAN region splits (Section II-B scenario)
:mod:`repro.experiments.exp_availability`           Steady-state availability under chaos plans
==========================================  =========================================

The WAN experiment additionally accepts any named network condition from
:mod:`repro.cluster.catalog` (CLI: ``--scenario NAME``); the availability
experiment accepts both a network condition and a named chaos plan from
:data:`repro.chaos.plans.CHAOS_CATALOG` (CLI: ``--plan NAME``).
"""

from repro.experiments import (
    ablation_k_sweep,
    ablation_ppf,
    adapter_redis,
    exp_availability,
    exp_wan,
    fig03_randomization,
    fig04_randomization_average,
    fig09_scale,
    fig10_competing_candidates,
    fig11_message_loss,
)

__all__ = [
    "ablation_k_sweep",
    "ablation_ppf",
    "adapter_redis",
    "exp_availability",
    "exp_wan",
    "fig03_randomization",
    "fig04_randomization_average",
    "fig09_scale",
    "fig10_competing_candidates",
    "fig11_message_loss",
]

"""Figure 3: Raft leader-election time vs election-timeout randomness.

Setup (Section III of the paper): a 5-server Raft cluster, 100-200 ms network
latency, leader crash, 1000 runs for each of six election-timeout ranges
(1500-1800, 1500-2000, 1500-3000, 1500-4000, 1500-5000, 1500-6000 ms).  The
figure plots the cumulative distribution of the election time for each range;
with little randomness a noticeable fraction of elections split votes and take
longer than 3500 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster.scenarios import ElectionScenario
from repro.common.types import Milliseconds
from repro.experiments.base import ProgressCallback, run_scenario_set
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, ExporterBinding
from repro.metrics.records import MeasurementSet
from repro.metrics.stats import cumulative_distribution, fraction_at_or_below, summarize
from repro.metrics.tables import render_table
from repro.obs.trace import archive_election_traces

#: The six timeout ranges swept by the paper.
PAPER_TIMEOUT_RANGES: tuple[tuple[Milliseconds, Milliseconds], ...] = (
    (1500.0, 1800.0),
    (1500.0, 2000.0),
    (1500.0, 3000.0),
    (1500.0, 4000.0),
    (1500.0, 5000.0),
    (1500.0, 6000.0),
)

#: Cluster size used in Section III.
CLUSTER_SIZE = 5


@dataclass(frozen=True)
class RandomizationResult:
    """Result of the Figure 3 sweep: one measurement set per timeout range."""

    timeout_ranges: tuple[tuple[Milliseconds, Milliseconds], ...]
    runs: int
    by_range: Mapping[str, MeasurementSet]

    def measurements_for(self, timeout_range: tuple[Milliseconds, Milliseconds]) -> MeasurementSet:
        """Measurements collected for one timeout range."""
        return self.by_range[range_label(timeout_range)]

    def cdf_for(
        self, timeout_range: tuple[Milliseconds, Milliseconds]
    ) -> list[tuple[float, float]]:
        """The cumulative-distribution series plotted by Figure 3."""
        return cumulative_distribution(self.measurements_for(timeout_range).totals_ms())


def range_label(timeout_range: tuple[Milliseconds, Milliseconds]) -> str:
    """Label used for one timeout range, e.g. ``"1500-3000"``."""
    low, high = timeout_range
    return f"{low:.0f}-{high:.0f}"


def build_scenarios(
    timeout_ranges: Sequence[tuple[Milliseconds, Milliseconds]] = PAPER_TIMEOUT_RANGES,
    cluster_size: int = CLUSTER_SIZE,
) -> dict[str, ElectionScenario]:
    """One Raft scenario per timeout range."""
    return {
        range_label(timeout_range): ElectionScenario(
            protocol="raft",
            cluster_size=cluster_size,
            raft_timeout_range=timeout_range,
        )
        for timeout_range in timeout_ranges
    }


def run(
    runs: int = 100,
    seed: int = 0,
    timeout_ranges: Sequence[tuple[Milliseconds, Milliseconds]] = PAPER_TIMEOUT_RANGES,
    cluster_size: int = CLUSTER_SIZE,
    progress: ProgressCallback | None = None,
    workers: int | None = 1,
    trace: str | None = None,
) -> RandomizationResult:
    """Execute the Figure 3 sweep (optionally fanned out over *workers*).

    With *trace* set to a directory, one traced episode per timeout range is
    re-run afterwards and archived there as JSONL (plus telemetry snapshots);
    see :func:`repro.obs.trace.archive_election_traces`.
    """
    scenarios = build_scenarios(timeout_ranges, cluster_size)
    by_range = run_scenario_set(
        scenarios, runs=runs, seed=seed, progress=progress, workers=workers
    )
    if trace is not None:
        archive_election_traces(scenarios, seed, trace)
    return RandomizationResult(
        timeout_ranges=tuple(timeout_ranges), runs=runs, by_range=by_range
    )


def report(result: RandomizationResult) -> str:
    """Render the Figure 3 series (plus split-vote rates) as a table."""
    rows = []
    for timeout_range in result.timeout_ranges:
        measurements = result.measurements_for(timeout_range)
        totals = measurements.totals_ms()
        summary = summarize(totals)
        rows.append(
            [
                range_label(timeout_range),
                f"{summary.mean:.0f}",
                f"{summary.median:.0f}",
                f"{summary.p95:.0f}",
                f"{100 * measurements.split_vote_fraction():.1f}%",
                f"{100 * (1 - fraction_at_or_below(totals, 3500.0)):.1f}%",
            ]
        )
    return render_table(
        headers=[
            "timeout range (ms)",
            "mean (ms)",
            "p50 (ms)",
            "p95 (ms)",
            "split votes",
            "> 3500 ms",
        ],
        rows=rows,
        title=(
            "Figure 3 — Raft leader election time in a "
            f"{CLUSTER_SIZE}-server cluster vs timeout randomness "
            f"({result.runs} runs per range)"
        ),
    )


def _export_measurements(result: RandomizationResult) -> Mapping[str, MeasurementSet]:
    """Exporter binding: the per-range measurement sets."""
    return result.by_range


SPEC = register(
    ExperimentSpec(
        name="fig3",
        title="Raft election-time CDF vs timeout randomness",
        paper_ref="Figure 3 / Section III",
        description=(
            "5-server Raft cluster, leader crash, six election-timeout "
            "ranges; the split-vote tail the paper motivates ESCAPE with"
        ),
        run=run,
        reporter=report,
        default_runs=100,
        params={
            "timeout_ranges": PAPER_TIMEOUT_RANGES,
            "cluster_size": CLUSTER_SIZE,
        },
        supports_trace=True,
        exporter=ExporterBinding(kind="election", extract=_export_measurements),
    )
)

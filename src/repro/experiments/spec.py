"""The :class:`ExperimentSpec` descriptor and the :class:`ExperimentRun` envelope.

A spec bundles everything the rest of the codebase needs to know about one
experiment: a uniform run callable, the reporter that renders its result, the
default and quick-mode parameter sets, which sweep-wide options it understands
(``--scenario`` / ``--protocols`` / ``--plan``), and how its result is
persisted (the exporter binding consumed by
:func:`repro.experiments.export.save_run`).

Specs are frozen dataclasses whose callable fields are module-level functions
(pickled by reference), mirroring :class:`repro.protocols.ProtocolSpec`:
registering an eleventh experiment is a one-module change and the CLI, the
``all`` runner, the export path and the docs table pick it up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.common.errors import ConfigurationError
from repro.common.frozen import FrozenDict

__all__ = [
    "CAPABILITIES",
    "EXPORT_KINDS",
    "ExperimentRun",
    "ExperimentSpec",
    "ExporterBinding",
    "Reporter",
    "RunCallable",
]

#: Executes the sweep.  Must be a module-level callable accepting keyword
#: arguments: always ``runs`` and ``seed``; ``progress`` and ``workers`` when
#: the spec declares ``supports_workers``; ``scenario`` / ``protocols`` /
#: ``plan`` when the corresponding capability flag is set (and the caller
#: supplied one); plus every key of the spec's parameter set.
RunCallable = Callable[..., object]

#: Renders a run's result object as the plain-text report the CLI prints.
Reporter = Callable[[object], str]

#: The sweep-wide options an experiment can opt into, in CLI order.
#: ``streaming`` selects the sweep engine's memory-bounded data path
#: (worker-side aggregation, O(labels) parent memory, checkpointable).
#: ``trace`` accepts a directory (CLI ``--trace-out``) into which the
#: experiment archives one traced episode per scenario label as JSONL (see
#: :func:`repro.obs.trace.archive_election_traces`).
CAPABILITIES = ("scenario", "protocols", "plan", "streaming", "trace")

#: How an exporter binding's extracted payload is persisted:
#: ``"election"`` -- a mapping of label -> :class:`~repro.metrics.records.MeasurementSet`;
#: ``"availability"`` -- a mapping of label -> :class:`~repro.metrics.records.AvailabilitySet`;
#: ``"rows"`` -- a flat sequence of scalar-valued dicts (aggregate cells).
EXPORT_KINDS = ("election", "availability", "rows")


@dataclass(frozen=True)
class ExporterBinding:
    """How one experiment's result is reduced to a persistable payload.

    Attributes:
        kind: one of :data:`EXPORT_KINDS`; selects the CSV/JSON writers.
        extract: module-level function mapping the experiment's result object
            to the payload the *kind*'s writers accept.
    """

    kind: str
    extract: Callable[[object], object]

    def __post_init__(self) -> None:
        if self.kind not in EXPORT_KINDS:
            raise ConfigurationError(
                f"exporter kind {self.kind!r} must be one of {EXPORT_KINDS}"
            )
        if not callable(self.extract):
            raise ConfigurationError("exporter extract must be callable")


@dataclass(frozen=True)
class ExperimentSpec:
    """Descriptor for one registered experiment.

    Attributes:
        name: registry key and CLI name (e.g. ``"fig9"``); must be non-empty
            and free of whitespace and commas.
        title: display label used in the registry table.
        paper_ref: the paper figure/section this experiment reproduces
            (``"--"`` for extensions the paper only implies).
        description: one-line summary shown in ``--list`` help output.
        run: the uniform run callable (see :data:`RunCallable`).
        reporter: renders the result as the report the CLI prints.
        default_runs: the run count ``run_experiment`` uses when the caller
            does not pass one (the module's documented default).
        params: default parameter set forwarded to *run* as keyword
            arguments; the only keys ``run_experiment`` accepts as overrides.
        quick_params: overrides applied on top of *params* in quick mode
            (must be a subset of *params*' keys).
        supports_scenario: understands the ``scenario`` keyword (a named
            network condition from :mod:`repro.cluster.catalog`).
        supports_protocols: understands the ``protocols`` keyword (names
            from :mod:`repro.protocols`).
        supports_plan: understands the ``plan`` keyword (a chaos plan from
            :data:`repro.chaos.plans.CHAOS_CATALOG`).
        supports_streaming: understands the ``streaming`` keyword (and the
            companion ``checkpoint`` directory): the experiment can run its
            sweep on the streaming engine -- worker-side mergeable
            aggregates, O(labels) parent memory, resumable from a
            JSON-lines checkpoint (see :mod:`repro.experiments.runner`).
        supports_trace: understands the ``trace_out`` keyword (CLI
            ``--trace-out DIR``): after the sweep the experiment archives
            one traced episode per label as JSONL plus a manifest and
            telemetry snapshots (see :mod:`repro.obs.trace`).
        supports_workers: whether *run* takes the sweep engine's
            ``progress``/``workers`` keywords; ``False`` for in-process
            models that would only pay pool start-up (the CLI notes that
            ``--workers`` is ignored).
        min_runs: optional floor on the run count (e.g. the Redis adapter
            needs enough runs for stable collision rates); requests below it
            are raised with a note in the envelope.
        capability_overrides: which declared parameter a capability value
            supersedes at run time (e.g. ``{"scenario": "conditions"}`` for
            the WAN experiment, whose adapter narrows the condition grid to
            the one named scenario) -- the run envelope's recorded
            parameters drop the superseded default so archived metadata
            never claims a grid the run did not execute.
        exporter: binding consumed by the generic export path; every
            built-in experiment has one so ``--output DIR`` works uniformly.
    """

    name: str
    title: str
    run: RunCallable
    reporter: Reporter
    paper_ref: str = "--"
    description: str = ""
    default_runs: int = 30
    params: Mapping[str, object] = field(default_factory=FrozenDict)
    quick_params: Mapping[str, object] = field(default_factory=FrozenDict)
    supports_scenario: bool = False
    supports_protocols: bool = False
    supports_plan: bool = False
    supports_streaming: bool = False
    supports_trace: bool = False
    supports_workers: bool = True
    min_runs: int | None = None
    capability_overrides: Mapping[str, str] = field(default_factory=FrozenDict)
    exporter: ExporterBinding | None = None

    def __post_init__(self) -> None:
        if not self.name or any(ch.isspace() or ch == "," for ch in self.name):
            raise ConfigurationError(
                f"experiment name {self.name!r} must be non-empty and free of "
                "whitespace and commas"
            )
        # Names become file names in the generic export path (--output DIR
        # writes <name>.csv etc.), so path syntax is rejected outright.
        if "/" in self.name or "\\" in self.name or ".." in self.name:
            raise ConfigurationError(
                f"experiment name {self.name!r} must not contain path "
                "separators or '..'"
            )
        if not callable(self.run) or not callable(self.reporter):
            raise ConfigurationError(
                f"experiment {self.name!r} needs callable run and reporter"
            )
        if self.default_runs < 1:
            raise ConfigurationError(
                f"experiment {self.name!r}: default_runs must be >= 1"
            )
        if self.min_runs is not None and self.min_runs < 1:
            raise ConfigurationError(
                f"experiment {self.name!r}: min_runs must be >= 1"
            )
        # Freeze the parameter mappings: a caller-held dict cannot mutate the
        # spec after registration, and the spec stays hashable/picklable for
        # the sweep engine's process pool (the lint S1 contract).
        object.__setattr__(self, "params", FrozenDict(self.params))
        object.__setattr__(self, "quick_params", FrozenDict(self.quick_params))
        object.__setattr__(
            self, "capability_overrides", FrozenDict(self.capability_overrides)
        )
        stray = set(self.quick_params) - set(self.params)
        if stray:
            raise ConfigurationError(
                f"experiment {self.name!r}: quick_params {sorted(stray)} do "
                "not override any declared default parameter"
            )
        for option, superseded in self.capability_overrides.items():
            if option not in CAPABILITIES:
                raise ConfigurationError(
                    f"experiment {self.name!r}: capability_overrides key "
                    f"{option!r} is not one of {CAPABILITIES}"
                )
            if superseded not in self.params:
                raise ConfigurationError(
                    f"experiment {self.name!r}: capability_overrides[{option!r}] "
                    f"names unknown parameter {superseded!r}"
                )

    @property
    def capabilities(self) -> tuple[str, ...]:
        """The sweep-wide options this spec opted into, in CLI order."""
        return tuple(
            option
            for option in CAPABILITIES
            if getattr(self, f"supports_{option}")
        )

    def resolved_params(
        self, quick: bool = False, **overrides: object
    ) -> dict[str, object]:
        """The parameter set a run with these settings receives.

        Raises:
            ConfigurationError: listing the declared parameters when an
                override names an unknown one.
        """
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise ConfigurationError(
                f"experiment {self.name!r} has no parameter(s) "
                f"{', '.join(sorted(repr(key) for key in unknown))}; "
                f"declared: {', '.join(sorted(self.params)) or '(none)'}"
            )
        resolved = dict(self.params)
        if quick:
            resolved.update(self.quick_params)
        resolved.update(overrides)
        return resolved


@dataclass(frozen=True)
class ExperimentRun:
    """Structured envelope returned by one programmatic experiment run.

    Everything is plain data (the raw result object, the rendered report and
    the run metadata), so envelopes pickle cleanly and can be archived next
    to the exported measurements.
    """

    name: str
    title: str
    result: object
    report: str
    runs: int
    seed: int
    quick: bool
    workers: int | None
    elapsed_s: float
    parameters: Mapping[str, object] = field(default_factory=dict)
    notes: tuple[str, ...] = ()
    #: The resolved simulation engine the run executed on (engines are
    #: bit-identical by contract, so this is provenance for the *timing*
    #: metadata, never for the results).
    engine: str = "classic"
    #: Wall-clock seconds per pipeline phase (``build``/``sweep``/``report``)
    #: recorded by :class:`repro.obs.profiling.Profiler`; timing metadata
    #: only, like ``elapsed_s`` (which equals the ``sweep`` phase).
    profile: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", dict(self.parameters))
        object.__setattr__(self, "profile", dict(self.profile))

    def metadata(self) -> dict[str, object]:
        """The run's metadata as one JSON-friendly dict (export headers)."""
        return {
            "experiment": self.name,
            "title": self.title,
            "runs": self.runs,
            "seed": self.seed,
            "quick": self.quick,
            "workers": self.workers,
            "engine": self.engine,
            "elapsed_s": round(self.elapsed_s, 3),
            "profile": {
                phase: round(seconds, 3)
                for phase, seconds in self.profile.items()
            },
            "parameters": {
                key: value for key, value in sorted(self.parameters.items())
            },
            "notes": list(self.notes),
        }

"""Server roles and role transitions.

Raft deploys three server states -- leader, follower, candidate -- with the
transitions shown in Figure 1 of the paper.  The enum is shared by Raft,
ESCAPE and Z-Raft nodes.
"""

from __future__ import annotations

import enum


class Role(enum.Enum):
    """The role a server currently assumes."""

    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# The transitions permitted by the protocol.  ``LEADER -> CANDIDATE`` is absent
# on purpose: a deposed leader always steps down to follower first.
ALLOWED_TRANSITIONS: frozenset[tuple[Role, Role]] = frozenset(
    {
        (Role.FOLLOWER, Role.CANDIDATE),
        (Role.CANDIDATE, Role.CANDIDATE),  # new campaign after a failed one
        (Role.CANDIDATE, Role.LEADER),
        (Role.CANDIDATE, Role.FOLLOWER),
        (Role.LEADER, Role.FOLLOWER),
        (Role.FOLLOWER, Role.FOLLOWER),  # term updates while staying follower
    }
)


def is_valid_transition(old: Role, new: Role) -> bool:
    """Whether the protocol permits moving from *old* to *new*."""
    return (old, new) in ALLOWED_TRANSITIONS

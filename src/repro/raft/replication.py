"""Leader-side replication bookkeeping (``nextIndex`` / ``matchIndex``).

The :class:`ReplicationProgress` tracks, for every follower, the next log
index to send and the highest index known to be replicated, and computes the
commit index as the highest index stored on a quorum -- restricted, per Raft's
commitment rule, to entries of the current term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.common.errors import ProtocolError
from repro.common.types import LogIndex, ServerId, Term
from repro.storage.log import ReplicatedLog


@dataclass
class PeerProgress:
    """Replication progress of a single follower."""

    next_index: LogIndex
    match_index: LogIndex = 0

    def record_success(self, match_index: LogIndex) -> None:
        """A successful AppendEntries response confirmed *match_index*."""
        self.match_index = max(self.match_index, match_index)
        self.next_index = max(self.next_index, self.match_index + 1)

    def record_failure(self, follower_last_index: LogIndex) -> None:
        """A failed consistency check: rewind ``next_index``.

        The follower includes its last log index in the reply, letting the
        leader skip the entire missing suffix in one step instead of
        decrementing one index per round trip.
        """
        self.next_index = max(1, min(self.next_index - 1, follower_last_index + 1))


class ReplicationProgress:
    """Tracks every follower's progress and derives the commit index."""

    def __init__(self, leader_id: ServerId, peers: Iterable[ServerId], last_log_index: LogIndex) -> None:
        self._leader_id = leader_id
        self._peers: dict[ServerId, PeerProgress] = {
            peer: PeerProgress(next_index=last_log_index + 1) for peer in peers
        }
        self._leader_match_index: LogIndex = last_log_index

    @property
    def peers(self) -> Mapping[ServerId, PeerProgress]:
        """Progress per follower (read-only view)."""
        return dict(self._peers)

    def progress_of(self, peer: ServerId) -> PeerProgress:
        """The progress record of one follower."""
        try:
            return self._peers[peer]
        except KeyError as exc:
            raise ProtocolError(f"S{peer} is not a tracked follower") from exc

    def next_index(self, peer: ServerId) -> LogIndex:
        """The next log index to send to *peer*."""
        return self.progress_of(peer).next_index

    def match_index(self, peer: ServerId) -> LogIndex:
        """The highest index known replicated on *peer*."""
        return self.progress_of(peer).match_index

    def record_local_append(self, last_log_index: LogIndex) -> None:
        """The leader appended up to *last_log_index* locally."""
        self._leader_match_index = max(self._leader_match_index, last_log_index)

    def record_success(self, peer: ServerId, match_index: LogIndex) -> None:
        """Record a successful AppendEntries response from *peer*."""
        self.progress_of(peer).record_success(match_index)

    def record_failure(self, peer: ServerId, follower_last_index: LogIndex) -> None:
        """Record a failed AppendEntries response from *peer*."""
        self.progress_of(peer).record_failure(follower_last_index)

    def commit_index_for_quorum(
        self, quorum_size: int, log: ReplicatedLog, current_term: Term
    ) -> LogIndex:
        """Highest index replicated on a quorum whose entry is from *current_term*.

        Raft only commits entries of the leader's current term by counting
        replicas; earlier-term entries become committed implicitly.  This is
        the rule that prevents the "figure 8" scenario of the Raft paper.
        """
        match_indexes = sorted(
            [self._leader_match_index]
            + [progress.match_index for progress in self._peers.values()],
            reverse=True,
        )
        if quorum_size > len(match_indexes):
            return 0
        candidate_index = match_indexes[quorum_size - 1]
        while candidate_index > 0:
            if log.has_entry(candidate_index) and log.term_at(candidate_index) == current_term:
                return candidate_index
            candidate_index -= 1
        return 0

    def stale_followers(self, last_log_index: LogIndex) -> list[ServerId]:
        """Followers whose known match index is behind the leader's log tail."""
        return [
            peer
            for peer, progress in self._peers.items()
            if progress.match_index < last_log_index
        ]

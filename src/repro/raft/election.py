"""Vote tallying for election campaigns."""

from __future__ import annotations

from repro.common.errors import ProtocolError
from repro.common.types import ServerId, Term
from repro.common.validation import require_positive


class VoteTally:
    """Counts the votes a candidate has collected in its current campaign.

    A fresh tally is started for every campaign term; votes recorded for any
    other term are rejected, which is how stale (delayed) vote replies are
    ignored.
    """

    def __init__(self, quorum_size: int) -> None:
        require_positive(quorum_size, "quorum_size")
        self._quorum_size = quorum_size
        self._term: Term | None = None
        self._voters: set[ServerId] = set()

    @property
    def quorum_size(self) -> int:
        """Number of votes needed to win (majority of the full membership)."""
        return self._quorum_size

    @property
    def term(self) -> Term | None:
        """The campaign term currently being tallied (``None`` before any)."""
        return self._term

    @property
    def votes(self) -> frozenset[ServerId]:
        """Servers that granted their vote in the current campaign."""
        return frozenset(self._voters)

    @property
    def count(self) -> int:
        """Number of votes collected so far in the current campaign."""
        return len(self._voters)

    def start_campaign(self, term: Term) -> None:
        """Reset the tally for a new campaign in *term*."""
        if self._term is not None and term <= self._term:
            raise ProtocolError(
                f"campaign term must increase: {term} <= {self._term}"
            )
        self._term = term
        self._voters = set()

    def record_vote(self, term: Term, voter: ServerId) -> bool:
        """Record a granted vote.

        Returns:
            ``True`` if the vote counted (correct term, not a duplicate).
        """
        if self._term is None or term != self._term:
            return False
        if voter in self._voters:
            return False
        self._voters.add(voter)
        return True

    def has_quorum(self) -> bool:
        """Whether the collected votes reach the quorum."""
        return len(self._voters) >= self._quorum_size

    def votes_needed(self) -> int:
        """How many more votes are required to reach the quorum."""
        return max(0, self._quorum_size - len(self._voters))

"""Election-timeout policies.

Raft draws a fresh randomized timeout before every wait (the paper sweeps the
range in Figure 3); ESCAPE replaces the draw with the deterministic timeout
carried by the server's current configuration (Eq. 1).  The scripted policy is
used by the Figure 10 harness to *force* simultaneous timeouts and therefore a
controlled number of competing-candidate phases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.common.config import RaftTimeoutConfig
from repro.common.types import Milliseconds
from repro.common.validation import require_ordered_pair, require_positive


@runtime_checkable
class ElectionTimeoutPolicy(Protocol):
    """Chooses how long a server waits before starting an election campaign."""

    def next_timeout_ms(
        self, rng: random.Random, attempt: int
    ) -> Milliseconds:  # pragma: no cover - protocol signature
        """Timeout for the next wait.

        Args:
            rng: the node's private random stream.
            attempt: how many consecutive timeouts the node has already
                experienced without hearing from a leader (0 for the first).
        """
        ...


@dataclass(frozen=True)
class RandomizedTimeoutPolicy:
    """Raft's standard policy: uniform draw from ``[low_ms, high_ms]``."""

    low_ms: Milliseconds = 1500.0
    high_ms: Milliseconds = 3000.0

    def __post_init__(self) -> None:
        require_positive(self.low_ms, "low_ms")
        require_ordered_pair(self.low_ms, self.high_ms, "timeout range")

    @classmethod
    def from_config(cls, config: RaftTimeoutConfig) -> "RandomizedTimeoutPolicy":
        """Build the policy from a :class:`RaftTimeoutConfig`."""
        return cls(config.timeout_min_ms, config.timeout_max_ms)

    def next_timeout_ms(self, rng: random.Random, attempt: int) -> Milliseconds:
        return rng.uniform(self.low_ms, self.high_ms)


@dataclass(frozen=True)
class FixedTimeoutPolicy:
    """Always waits exactly *timeout_ms* (used by ESCAPE-style configurations)."""

    timeout_ms: Milliseconds

    def __post_init__(self) -> None:
        require_positive(self.timeout_ms, "timeout_ms")

    def next_timeout_ms(self, rng: random.Random, attempt: int) -> Milliseconds:
        return self.timeout_ms


@dataclass(frozen=True)
class ScriptedTimeoutPolicy:
    """Replays a fixed sequence of timeouts, then defers to a fallback policy.

    The Figure 10 harness uses this to make chosen followers time out at the
    same instant for the first *k* waits, which forces *k* phases of competing
    candidates in Raft.  Index *attempt* selects the scripted value, so the
    first timeout after losing the leader uses ``script[0]``, the second
    ``script[1]``, and so on.
    """

    script: tuple[Milliseconds, ...]
    fallback: ElectionTimeoutPolicy = field(
        default_factory=lambda: RandomizedTimeoutPolicy()
    )

    def __post_init__(self) -> None:
        for value in self.script:
            require_positive(value, "scripted timeout")

    def next_timeout_ms(self, rng: random.Random, attempt: int) -> Milliseconds:
        if 0 <= attempt < len(self.script):
            return self.script[attempt]
        return self.fallback.next_timeout_ms(rng, attempt)


@dataclass(frozen=True)
class ScriptOnlyPolicy:
    """Replays a fixed sequence of timeouts and then opts out.

    Past the end of the script the policy returns ``0.0``, which callers treat
    as "no override": :class:`repro.escape.node.EscapeNode` then falls back to
    the timeout carried by its configuration.  The Figure 10 harness installs
    this policy on the contending followers so the *first* waits collide while
    later waits revert to protocol-chosen values.
    """

    script: tuple[Milliseconds, ...]

    def __post_init__(self) -> None:
        for value in self.script:
            require_positive(value, "scripted timeout")

    def next_timeout_ms(self, rng: random.Random, attempt: int) -> Milliseconds:
        if 0 <= attempt < len(self.script):
            return self.script[attempt]
        return 0.0


@dataclass(frozen=True)
class OffsetTimeoutPolicy:
    """A base policy plus a constant offset, useful for composing scenarios."""

    base: ElectionTimeoutPolicy
    offset_ms: Milliseconds = 0.0

    def next_timeout_ms(self, rng: random.Random, attempt: int) -> Milliseconds:
        return self.base.next_timeout_ms(rng, attempt) + self.offset_ms


def scripted_then_random(
    script: Sequence[Milliseconds],
    low_ms: Milliseconds,
    high_ms: Milliseconds,
) -> ScriptedTimeoutPolicy:
    """Convenience constructor used by the contention scenarios."""
    return ScriptedTimeoutPolicy(
        script=tuple(script), fallback=RandomizedTimeoutPolicy(low_ms, high_ms)
    )

"""The environment abstraction separating protocol logic from IO.

A :class:`~repro.raft.node.RaftNode` interacts with the outside world only
through an :class:`Environment`:

* reading the current time,
* sending a message to one peer or broadcasting to many,
* arming and cancelling timers,
* drawing random numbers from its private stream, and
* emitting trace events.

Two implementations exist: the simulator's
:class:`repro.cluster.environment.SimNodeEnvironment` and the real-time
:class:`repro.runtime.environment.AsyncNodeEnvironment`.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from repro.common.types import Milliseconds, ServerId


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable timer returned by :meth:`Environment.set_timer`."""

    def cancel(self) -> None:  # pragma: no cover - protocol signature
        """Prevent the timer from firing.  Must be idempotent."""
        ...


@runtime_checkable
class Environment(Protocol):
    """Everything a protocol node may do to the outside world."""

    def now(self) -> Milliseconds:  # pragma: no cover - protocol signature
        """Current time in milliseconds (simulated or wall-clock)."""
        ...

    def send(self, dst: ServerId, message: Any) -> None:  # pragma: no cover
        """Send one message to one peer (fire-and-forget)."""
        ...

    def broadcast(
        self,
        targets: Sequence[ServerId],
        payload_factory: Callable[[ServerId], Any],
    ) -> None:  # pragma: no cover
        """Send one logical broadcast.

        The payload factory is invoked per target so leaders can piggyback
        per-follower data (log entries, ESCAPE configurations); the transport
        applies broadcast-level fault injection (Section VI-D's loss model)
        to the broadcast as a whole.
        """
        ...

    def set_timer(
        self, delay_ms: Milliseconds, callback: Callable[[], None], label: str = ""
    ) -> TimerHandle:  # pragma: no cover
        """Arm a one-shot timer."""
        ...

    def cancel_timer(self, handle: TimerHandle) -> None:  # pragma: no cover
        """Cancel a previously armed timer (safe to call twice)."""
        ...

    @property
    def rng(self) -> random.Random:  # pragma: no cover
        """This node's private random stream (timeout draws)."""
        ...

    def trace(self, category: str, **detail: Any) -> None:  # pragma: no cover
        """Emit a structured trace event attributed to this node."""
        ...

"""Baseline Raft implementation (leader election + log replication).

The node core is *sans-IO*: :class:`~repro.raft.node.RaftNode` never touches
sockets, threads or clocks directly.  It talks to an
:class:`~repro.raft.environment.Environment` (provided by the discrete-event
simulator or the asyncio runtime) and exposes explicit extension hooks that
:class:`repro.escape.node.EscapeNode` and :class:`repro.zraft.node.ZRaftNode`
override -- mirroring the paper's argument that ESCAPE changes only the
election mechanism and leaves log replication untouched.
"""

from repro.raft.environment import Environment, TimerHandle
from repro.raft.listeners import NodeListener, NodeListenerBase
from repro.raft.messages import (
    AppendEntriesRequest,
    AppendEntriesResponse,
    RequestVoteRequest,
    RequestVoteResponse,
)
from repro.raft.node import RaftNode
from repro.raft.state import Role
from repro.raft.timers import (
    ElectionTimeoutPolicy,
    FixedTimeoutPolicy,
    RandomizedTimeoutPolicy,
    ScriptedTimeoutPolicy,
)

__all__ = [
    "AppendEntriesRequest",
    "AppendEntriesResponse",
    "ElectionTimeoutPolicy",
    "Environment",
    "FixedTimeoutPolicy",
    "NodeListener",
    "NodeListenerBase",
    "RaftNode",
    "RandomizedTimeoutPolicy",
    "RequestVoteRequest",
    "RequestVoteResponse",
    "Role",
    "ScriptedTimeoutPolicy",
    "TimerHandle",
]

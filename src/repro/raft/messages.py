"""Raft RPC messages.

Raft uses exactly two RPCs: ``RequestVote`` (leader election) and
``AppendEntries`` (log replication and heartbeats).  ESCAPE extends both --
see :mod:`repro.escape.messages` -- by subclassing these dataclasses, so a
handler written against the base types also accepts the extended ones (the
paper's Lemma 2: an ESCAPE campaign is indistinguishable from a Raft campaign
on the receiving side).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import LogIndex, ServerId, Term
from repro.storage.log import LogEntry


@dataclass(frozen=True, slots=True)
class RpcMessage:
    """Base class for every protocol message; all carry the sender's term."""

    term: Term


@dataclass(frozen=True, slots=True)
class RequestVoteRequest(RpcMessage):
    """A candidate's vote solicitation.

    Attributes:
        term: the candidate's (already incremented) campaign term.
        candidate_id: who is asking for the vote.
        last_log_index: index of the candidate's last log entry.
        last_log_term: term of the candidate's last log entry.
    """

    candidate_id: ServerId = 0
    last_log_index: LogIndex = 0
    last_log_term: Term = 0


@dataclass(frozen=True, slots=True)
class RequestVoteResponse(RpcMessage):
    """A voter's reply to :class:`RequestVoteRequest`.

    Attributes:
        term: the voter's current term (lets a stale candidate step down).
        voter_id: who replied.
        vote_granted: whether the vote was granted.
    """

    voter_id: ServerId = 0
    vote_granted: bool = False


@dataclass(frozen=True, slots=True)
class AppendEntriesRequest(RpcMessage):
    """The leader's replication/heartbeat RPC.

    Attributes:
        term: the leader's term.
        leader_id: the sending leader.
        prev_log_index: index immediately preceding the carried entries.
        prev_log_term: term of the entry at ``prev_log_index``.
        entries: the entries to replicate (empty for a pure heartbeat).
        leader_commit: the leader's commit index.
    """

    leader_id: ServerId = 0
    prev_log_index: LogIndex = 0
    prev_log_term: Term = 0
    entries: tuple[LogEntry, ...] = field(default_factory=tuple)
    leader_commit: LogIndex = 0

    @property
    def is_heartbeat(self) -> bool:
        """True when the request carries no entries."""
        return not self.entries


@dataclass(frozen=True, slots=True)
class AppendEntriesResponse(RpcMessage):
    """A follower's reply to :class:`AppendEntriesRequest`.

    Attributes:
        term: the follower's current term.
        follower_id: who replied.
        success: whether the consistency check passed and entries were merged.
        match_index: on success, the highest log index now known to match the
            leader's log; on failure, the follower's last log index, which the
            leader uses to rewind ``nextIndex`` quickly.
    """

    follower_id: ServerId = 0
    success: bool = False
    match_index: LogIndex = 0

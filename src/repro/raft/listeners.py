"""Observer interface for protocol events.

The cluster harness attaches listeners to every node to measure exactly the
quantities the paper's figures decompose: when the leader crash was *detected*
(first election timeout), when each campaign started, when a new leader
emerged, and whether votes split.  Applications can attach their own listeners
for logging or metrics export.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.common.types import LogIndex, Milliseconds, ServerId, Term
from repro.raft.state import Role


@runtime_checkable
class NodeListener(Protocol):
    """Callbacks invoked synchronously by a node as protocol events happen."""

    def on_role_change(
        self,
        node_id: ServerId,
        old_role: Role,
        new_role: Role,
        term: Term,
        time_ms: Milliseconds,
    ) -> None:  # pragma: no cover - protocol signature
        ...

    def on_election_timeout(
        self, node_id: ServerId, term: Term, attempt: int, time_ms: Milliseconds
    ) -> None:  # pragma: no cover
        ...

    def on_election_started(
        self, node_id: ServerId, term: Term, time_ms: Milliseconds
    ) -> None:  # pragma: no cover
        ...

    def on_vote_granted(
        self,
        voter_id: ServerId,
        candidate_id: ServerId,
        term: Term,
        time_ms: Milliseconds,
    ) -> None:  # pragma: no cover
        ...

    def on_leader_elected(
        self,
        leader_id: ServerId,
        term: Term,
        votes: int,
        time_ms: Milliseconds,
    ) -> None:  # pragma: no cover
        ...

    def on_entry_committed(
        self,
        node_id: ServerId,
        index: LogIndex,
        term: Term,
        time_ms: Milliseconds,
    ) -> None:  # pragma: no cover
        ...


class NodeListenerBase:
    """No-op implementation of :class:`NodeListener`; subclass what you need."""

    def on_role_change(
        self,
        node_id: ServerId,
        old_role: Role,
        new_role: Role,
        term: Term,
        time_ms: Milliseconds,
    ) -> None:
        return None

    def on_election_timeout(
        self, node_id: ServerId, term: Term, attempt: int, time_ms: Milliseconds
    ) -> None:
        return None

    def on_election_started(
        self, node_id: ServerId, term: Term, time_ms: Milliseconds
    ) -> None:
        return None

    def on_vote_granted(
        self,
        voter_id: ServerId,
        candidate_id: ServerId,
        term: Term,
        time_ms: Milliseconds,
    ) -> None:
        return None

    def on_leader_elected(
        self,
        leader_id: ServerId,
        term: Term,
        votes: int,
        time_ms: Milliseconds,
    ) -> None:
        return None

    def on_entry_committed(
        self,
        node_id: ServerId,
        index: LogIndex,
        term: Term,
        time_ms: Milliseconds,
    ) -> None:
        return None

"""The sans-IO Raft node.

:class:`RaftNode` implements the full protocol described in Section II of the
paper: randomized election timeouts, ``RequestVote``/``AppendEntries`` RPCs,
the three vote-granting requirements, log replication with the consistency
check and quorum commitment, and heartbeat-based leadership maintenance.

The class exposes a small set of protected extension hooks (all prefixed
``_hook_``) that :class:`repro.escape.node.EscapeNode` overrides to implement
the paper's contribution without touching the replication logic -- mirroring
the paper's Lemma 2 argument that ESCAPE elections are indistinguishable from
Raft elections on the receiving side.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.common.config import ClusterConfig, ProtocolConfig
from repro.common.errors import NotLeaderError, ProtocolError
from repro.common.types import LogIndex, Milliseconds, ServerId, Term
from repro.raft.election import VoteTally
from repro.raft.environment import Environment, TimerHandle
from repro.raft.listeners import NodeListener
from repro.raft.messages import (
    AppendEntriesRequest,
    AppendEntriesResponse,
    RequestVoteRequest,
    RequestVoteResponse,
    RpcMessage,
)
from repro.raft.replication import ReplicationProgress
from repro.raft.state import Role, is_valid_transition
from repro.raft.timers import ElectionTimeoutPolicy, RandomizedTimeoutPolicy
from repro.statemachine.base import StateMachine
from repro.statemachine.kvstore import KeyValueStore
from repro.storage.log import LogEntry
from repro.storage.persistent import InMemoryStore, PersistentState


class RaftNode:
    """A single Raft server.

    Args:
        node_id: this server's identifier (``S<i>``).
        cluster: static cluster membership.
        env: the environment providing time, transport, timers and randomness.
        store: durable state (defaults to a fresh in-memory store).
        state_machine: the replicated state machine (defaults to a
            :class:`~repro.statemachine.kvstore.KeyValueStore`).
        timeout_policy: election-timeout policy (defaults to Raft's randomized
            policy built from ``protocol_config.raft_timeouts``).
        protocol_config: heartbeat interval and related timing knobs.
        listeners: observers notified of protocol events.
    """

    protocol_name = "raft"

    def __init__(
        self,
        node_id: ServerId,
        cluster: ClusterConfig,
        env: Environment,
        store: PersistentState | None = None,
        state_machine: StateMachine | None = None,
        timeout_policy: ElectionTimeoutPolicy | None = None,
        protocol_config: ProtocolConfig | None = None,
        listeners: Iterable[NodeListener] = (),
    ) -> None:
        if node_id not in cluster:
            raise ProtocolError(f"S{node_id} is not a member of the cluster")
        self.node_id = node_id
        self.cluster = cluster
        self.env = env
        self.config = protocol_config or ProtocolConfig.paper_defaults()
        self.store = store if store is not None else InMemoryStore()
        self.state_machine = state_machine if state_machine is not None else KeyValueStore()
        self.timeout_policy: ElectionTimeoutPolicy = (
            timeout_policy
            if timeout_policy is not None
            else RandomizedTimeoutPolicy.from_config(self.config.raft_timeouts)
        )
        self._listeners: list[NodeListener] = list(listeners)

        # Persistent state (reloaded from the store so a recovered node keeps
        # its promises).
        self.current_term: Term = self.store.load_term()
        self.voted_for: ServerId | None = self.store.load_voted_for()
        self.log = self.store.load_log()

        # Volatile state.
        self.role: Role = Role.FOLLOWER
        self.leader_id: ServerId | None = None
        self.commit_index: LogIndex = 0
        self.last_applied: LogIndex = 0
        self.votes = VoteTally(cluster.quorum_size)
        self.progress: ReplicationProgress | None = None
        self.apply_results: dict[LogIndex, Any] = {}

        # Timers and counters.
        self._election_timer: TimerHandle | None = None
        self._heartbeat_timer: TimerHandle | None = None
        self._vote_retry_timer: TimerHandle | None = None
        self._timeout_attempt = 0
        self._running = False
        self.stats: dict[str, int] = {
            "elections_started": 0,
            "votes_granted": 0,
            "heartbeats_sent": 0,
            "append_entries_received": 0,
        }

        # Message dispatch by exact payload type; subclassed RPCs (ESCAPE
        # extends the Raft messages) are resolved through the isinstance
        # chain on first sight and memoised.  Bound here so subclass handler
        # overrides are picked up.
        self._message_handlers: dict[type, Callable[[ServerId, Any], None]] = {
            RequestVoteRequest: self._handle_request_vote,
            RequestVoteResponse: self._handle_request_vote_response,
            AppendEntriesRequest: self._handle_append_entries,
            AppendEntriesResponse: self._handle_append_entries_response,
        }
        # Bound-method alias: the dispatch dict is only ever mutated in place
        # (memoising newly seen subclassed RPC types), so the bound ``get``
        # stays valid for the node's lifetime.
        self._dispatch_get = self._message_handlers.get

        # Hot-path caches.  Membership is static, so the peer tuple is fixed
        # for the node's lifetime.  The two hook flags let the heartbeat path
        # skip no-op subclass hooks; they are per-class facts, not per-call.
        self._peer_ids: tuple[ServerId, ...] = cluster.peers_of(node_id)
        cls = type(self)
        self._decorate_is_default = (
            cls._hook_decorate_append_request is RaftNode._hook_decorate_append_request
        )
        self._timeout_hook_is_default = (
            cls._hook_election_timeout_ms is RaftNode._hook_election_timeout_ms
        )
        self._grant_hook_is_default = (
            cls._hook_may_grant_vote is RaftNode._hook_may_grant_vote
        )
        self._heartbeat_hook_is_default = (
            cls._hook_on_leader_heartbeat is RaftNode._hook_on_leader_heartbeat
        )
        self._response_hook_is_default = (
            cls._hook_on_append_response is RaftNode._hook_on_append_response
        )
        self._round_hook_is_default = (
            cls._hook_before_heartbeat_round is RaftNode._hook_before_heartbeat_round
        )
        self._trace_on: bool = getattr(env, "trace_enabled", True)
        self._append_response_memo: tuple[
            Term, bool, LogIndex, AppendEntriesResponse
        ] | None = None
        self._vote_response_memo: tuple[Term, bool, RequestVoteResponse] | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def is_running(self) -> bool:
        """Whether the node is started and not crashed."""
        return self._running

    @property
    def peers(self) -> tuple[ServerId, ...]:
        """Every other member of the cluster."""
        return self._peer_ids

    def add_listener(self, listener: NodeListener) -> None:
        """Attach an observer for protocol events."""
        self._listeners.append(listener)

    def start(self) -> None:
        """Join the cluster as a follower and start the election timer."""
        if self._running:
            raise ProtocolError(f"S{self.node_id} is already running")
        self._running = True
        self.role = Role.FOLLOWER
        self.leader_id = None
        self._timeout_attempt = 0
        self.env.trace("node.start", term=self.current_term)
        self._reset_election_timer()

    def stop(self) -> None:
        """Stop the node (models a crash): timers are cancelled, state kept."""
        self._running = False
        self._cancel_election_timer()
        self._cancel_heartbeat_timer()
        self._cancel_vote_retry_timer()
        self.env.trace("node.stop", term=self.current_term, role=str(self.role))

    def recover(self) -> None:
        """Restart after a crash: reload durable state and rejoin as follower.

        Volatile leadership state is discarded; the persisted term, vote and
        log survive, exactly as they would across a real process restart.
        """
        if self._running:
            raise ProtocolError(f"S{self.node_id} is still running")
        self.current_term = self.store.load_term()
        self.voted_for = self.store.load_voted_for()
        self.log = self.store.load_log()
        self.commit_index = min(self.commit_index, self.log.last_index)
        self.role = Role.FOLLOWER
        self.leader_id = None
        self.progress = None
        self._timeout_attempt = 0
        self._running = True
        self.env.trace("node.recover", term=self.current_term)
        self._reset_election_timer()

    # ------------------------------------------------------------------ #
    # Client interface
    # ------------------------------------------------------------------ #
    def propose(self, command: Any) -> LogIndex:
        """Append a client command to the leader's log and start replicating it.

        Returns:
            The log index assigned to the command.

        Raises:
            NotLeaderError: if this node is not currently the leader.
        """
        if self.role is not Role.LEADER:
            raise NotLeaderError(self.node_id, self.leader_id)
        entry = self.log.append_command(self.current_term, command)
        self.store.save_log(self.log)
        assert self.progress is not None
        self.progress.record_local_append(entry.index)
        self.env.trace("log.propose", index=entry.index, term=entry.term)
        if self.cluster.quorum_size == 1:
            self._advance_commit_index()
        else:
            self._replicate_to_followers()
        return entry.index

    def result_for(self, index: LogIndex) -> Any:
        """Result produced by the state machine for the entry at *index*.

        Raises:
            ProtocolError: if the entry has not been applied yet.
        """
        if index not in self.apply_results:
            raise ProtocolError(f"entry {index} has not been applied on S{self.node_id}")
        return self.apply_results[index]

    # ------------------------------------------------------------------ #
    # Message dispatch
    # ------------------------------------------------------------------ #
    def on_message(self, src: ServerId, message: RpcMessage) -> None:
        """Entry point for every message delivered to this node."""
        if not self._running:
            return
        handler = self._dispatch_get(type(message))
        if handler is None:
            handler = self._resolve_message_handler(message)
            self._message_handlers[type(message)] = handler
        handler(src, message)

    def _resolve_message_handler(
        self, message: RpcMessage
    ) -> Callable[[ServerId, Any], None]:
        """Map a not-yet-seen message type to its handler (isinstance chain)."""
        if isinstance(message, RequestVoteRequest):
            return self._handle_request_vote
        if isinstance(message, RequestVoteResponse):
            return self._handle_request_vote_response
        if isinstance(message, AppendEntriesRequest):
            return self._handle_append_entries
        if isinstance(message, AppendEntriesResponse):
            return self._handle_append_entries_response
        raise ProtocolError(f"unknown message type {type(message).__name__}")

    # ------------------------------------------------------------------ #
    # Leader election: timeouts and campaigns
    # ------------------------------------------------------------------ #
    def _on_election_timeout(self) -> None:
        if not self._running or self.role is Role.LEADER:
            return
        attempt = self._timeout_attempt
        self._timeout_attempt += 1
        if self._trace_on:
            self.env.trace("election.timeout", term=self.current_term, attempt=attempt)
        for listener in self._listeners:
            listener.on_election_timeout(
                self.node_id, self.current_term, attempt, self.env.now()
            )
        self._start_election()

    def _start_election(self) -> None:
        """Transition to candidate and broadcast vote requests (one campaign)."""
        new_term = self._hook_next_election_term()
        if new_term <= self.current_term:
            raise ProtocolError(
                f"campaign term must increase: {new_term} <= {self.current_term}"
            )
        self.current_term = new_term
        self.voted_for = self.node_id
        self.store.save_term_and_vote(self.current_term, self.voted_for)
        self._change_role(Role.CANDIDATE)
        self.leader_id = None
        self.votes.start_campaign(new_term)
        self.votes.record_vote(new_term, self.node_id)
        self.stats["elections_started"] += 1
        if self._trace_on:
            self.env.trace("election.start", term=new_term)
        for listener in self._listeners:
            listener.on_election_started(self.node_id, new_term, self.env.now())
        self._reset_election_timer()
        request = self._hook_make_vote_request()
        self.env.broadcast(self._peer_ids, lambda dst: request)
        self._schedule_vote_retry()
        if self.votes.has_quorum():
            # Single-node cluster: the candidate's own vote is already a quorum.
            self._become_leader()

    def _schedule_vote_retry(self) -> None:
        """Arm the within-campaign RequestVote retransmission timer."""
        self._cancel_vote_retry_timer()
        self._vote_retry_timer = self.env.set_timer(
            self.config.vote_retry_interval_ms,
            self._retry_vote_requests,
            label="vote-retry",
        )

    def _retry_vote_requests(self) -> None:
        """Retransmit the campaign's RequestVote to peers that have not granted.

        Raft candidates keep soliciting votes until the campaign ends; the
        retransmission makes a campaign robust to lost broadcasts (duplicate
        requests are harmless because voters answer them idempotently).
        """
        if not self._running or self.role is not Role.CANDIDATE:
            return
        voted = self.votes.votes
        pending = [peer for peer in self._peer_ids if peer not in voted]
        if pending:
            request = self._hook_make_vote_request()
            self.env.broadcast(pending, lambda dst: request)
            if self._trace_on:
                self.env.trace(
                    "election.vote_retry", term=self.current_term, pending=len(pending)
                )
        self._schedule_vote_retry()

    def _handle_request_vote(self, src: ServerId, request: RequestVoteRequest) -> None:
        if request.term < self.current_term:
            # Memo inlined (see _make_vote_response): during an election storm
            # the stale-term rejection runs once per lagging candidate.
            memo = self._vote_response_memo
            if memo is not None and memo[0] == self.current_term and memo[1] is False:
                response = memo[2]
            else:
                response = self._make_vote_response(granted=False)
            self.env.send(src, response)
            return
        if request.term > self.current_term:
            self._observe_higher_term(request.term)
        not_yet_voted = self.voted_for is None or self.voted_for == request.candidate_id
        if not_yet_voted or self._trace_on:
            # The log comparison and the grant hook only influence the verdict
            # when the vote is still available -- but the election.vote trace
            # records their values, so they are always computed while tracing
            # (hooks are pure reads by contract, so skipping them off-trace
            # cannot change any node's state).
            log_ok = self.log.candidate_is_acceptable(
                request.last_log_term, request.last_log_index
            )
            extra_ok = self._grant_hook_is_default or self._hook_may_grant_vote(request)
            granted = (
                log_ok and not_yet_voted and extra_ok and self.role is not Role.LEADER
            )
        else:
            granted = False
        if granted:
            self.voted_for = request.candidate_id
            self.store.save_term_and_vote(self.current_term, self.voted_for)
            self.stats["votes_granted"] += 1
            # Granting a vote counts as hearing from a viable leader candidate,
            # so the follower's failure-detection timer restarts.
            self._reset_election_timer()
            for listener in self._listeners:
                listener.on_vote_granted(
                    self.node_id, request.candidate_id, self.current_term, self.env.now()
                )
        if self._trace_on:
            self.env.trace(
                "election.vote",
                candidate=request.candidate_id,
                term=self.current_term,
                granted=granted,
                log_ok=log_ok,
                not_yet_voted=not_yet_voted,
                extra_ok=extra_ok,
            )
        memo = self._vote_response_memo
        if memo is not None and memo[0] == self.current_term and memo[1] is granted:
            self.env.send(src, memo[2])
        else:
            self.env.send(src, self._make_vote_response(granted=granted))

    def _make_vote_response(self, granted: bool) -> RequestVoteResponse:
        """Build (or reuse) the frozen vote response for the current term.

        During an election storm a voter answers many candidates in the same
        term with ``vote_granted=False``; the responses are frozen value
        objects, so one instance per ``(term, granted)`` is indistinguishable
        from a fresh one.
        """
        term = self.current_term
        memo = self._vote_response_memo
        if memo is not None and memo[0] == term and memo[1] is granted:
            return memo[2]
        response = RequestVoteResponse(
            term=term, voter_id=self.node_id, vote_granted=granted
        )
        self._vote_response_memo = (term, granted, response)
        return response

    def _handle_request_vote_response(
        self, src: ServerId, response: RequestVoteResponse
    ) -> None:
        if response.term > self.current_term:
            self._observe_higher_term(response.term)
            return
        if self.role is not Role.CANDIDATE or response.term != self.current_term:
            return
        if not response.vote_granted:
            return
        self.votes.record_vote(response.term, response.voter_id)
        if self.votes.has_quorum():
            self._become_leader()

    # ------------------------------------------------------------------ #
    # Log replication: AppendEntries
    # ------------------------------------------------------------------ #
    def _handle_append_entries(self, src: ServerId, request: AppendEntriesRequest) -> None:
        self.stats["append_entries_received"] += 1
        if request.term < self.current_term:
            self.env.send(
                src,
                self._hook_make_append_response(
                    request, success=False, match_index=self.log.last_index
                ),
            )
            return
        if request.term > self.current_term:
            self._observe_higher_term(request.term)
        # Same term: a candidate that sees a legitimate leader steps down.
        if self.role is not Role.FOLLOWER:
            self._change_role(Role.FOLLOWER)
        self.leader_id = request.leader_id
        self._timeout_attempt = 0
        # The hook runs before the timer reset so a configuration carried by
        # this heartbeat (ESCAPE's PPF piggyback) takes effect for the very
        # next election-timeout wait.
        if not self._heartbeat_hook_is_default:
            self._hook_on_leader_heartbeat(request)
        self._reset_election_timer()

        prev_log_index = request.prev_log_index
        if prev_log_index and not self.log.matches(prev_log_index, request.prev_log_term):
            self.env.trace(
                "log.reject",
                leader=request.leader_id,
                prev_index=request.prev_log_index,
                prev_term=request.prev_log_term,
            )
            response = self._hook_make_append_response(
                request, success=False, match_index=self.log.last_index
            )
            self.env.send(src, response)
            return

        if request.entries:
            changed = self.log.merge_entries(request.prev_log_index, list(request.entries))
            if changed:
                self.store.save_log(self.log)
        if request.leader_commit > self.commit_index:
            self.commit_index = min(request.leader_commit, self.log.last_index)
            self._apply_committed_entries()
        match_index = prev_log_index + len(request.entries)
        response = self._hook_make_append_response(
            request, success=True, match_index=match_index
        )
        self.env.send(src, response)

    def _handle_append_entries_response(
        self, src: ServerId, response: AppendEntriesResponse
    ) -> None:
        if response.term > self.current_term:
            self._observe_higher_term(response.term)
            return
        if self.role is not Role.LEADER or response.term != self.current_term:
            return
        assert self.progress is not None
        if not self._response_hook_is_default:
            self._hook_on_append_response(src, response)
        if response.success:
            self.progress.record_success(src, response.match_index)
            self._advance_commit_index()
        else:
            self.progress.record_failure(src, response.match_index)

    # ------------------------------------------------------------------ #
    # Role transitions
    # ------------------------------------------------------------------ #
    def _become_leader(self) -> None:
        self._change_role(Role.LEADER)
        self.leader_id = self.node_id
        self._timeout_attempt = 0
        self._cancel_election_timer()
        self.progress = ReplicationProgress(
            self.node_id, self.peers, self.log.last_index
        )
        if self._trace_on:
            self.env.trace("election.won", term=self.current_term, votes=self.votes.count)
        for listener in self._listeners:
            listener.on_leader_elected(
                self.node_id, self.current_term, self.votes.count, self.env.now()
            )
        self._hook_on_become_leader()
        self._send_heartbeats()

    def _observe_higher_term(self, term: Term) -> None:
        """Adopt a higher term seen in any message (Raft rule / paper Eq. 3)."""
        if term <= self.current_term:
            return
        self.current_term = term
        self.voted_for = None
        self.store.save_term_and_vote(self.current_term, self.voted_for)
        if self.role is not Role.FOLLOWER:
            self._change_role(Role.FOLLOWER)
            self.leader_id = None
            self._reset_election_timer()
        self._hook_on_term_adopted(term)

    def _change_role(self, new_role: Role) -> None:
        old_role = self.role
        if old_role is new_role:
            return
        if not is_valid_transition(old_role, new_role):
            raise ProtocolError(
                f"S{self.node_id}: invalid role transition {old_role} -> {new_role}"
            )
        self.role = new_role
        if old_role is Role.CANDIDATE:
            self._cancel_vote_retry_timer()
        if old_role is Role.LEADER:
            self._cancel_heartbeat_timer()
            self.progress = None
        if new_role is not Role.LEADER and self._election_timer is None and self._running:
            self._reset_election_timer()
        if self._trace_on:
            self.env.trace(
                "role.change", old=str(old_role), new=str(new_role), term=self.current_term
            )
        for listener in self._listeners:
            listener.on_role_change(
                self.node_id, old_role, new_role, self.current_term, self.env.now()
            )

    # ------------------------------------------------------------------ #
    # Leader: heartbeats and replication
    # ------------------------------------------------------------------ #
    def _send_heartbeats(self) -> None:
        if not self._running or self.role is not Role.LEADER:
            return
        if not self._round_hook_is_default:
            self._hook_before_heartbeat_round()
        self.stats["heartbeats_sent"] += 1
        self.env.broadcast(self._peer_ids, self._append_entries_factory())
        self._heartbeat_timer = self.env.set_timer(
            self.config.heartbeat_interval_ms, self._send_heartbeats, label="heartbeat"
        )

    def _replicate_to_followers(self) -> None:
        """Push fresh entries immediately (without waiting for the heartbeat)."""
        if self.role is not Role.LEADER:
            return
        self.env.broadcast(self._peer_ids, self._append_entries_factory())

    def _append_entries_factory(self) -> Callable[[ServerId], AppendEntriesRequest]:
        """Payload factory for one broadcast round of AppendEntries.

        Followers that share a ``next_index`` receive value-identical base
        requests, so each distinct index is built once per round; the decorate
        hook still runs per follower (ESCAPE piggybacks per-follower
        configurations) unless the subclass left it at the no-op default.
        """
        progress = self.progress
        assert progress is not None
        cache: dict[LogIndex, AppendEntriesRequest] = {}
        build = self._build_append_entries
        next_index = progress.next_index
        if self._decorate_is_default:

            def factory(follower: ServerId) -> AppendEntriesRequest:
                index = next_index(follower)
                request = cache.get(index)
                if request is None:
                    request = cache[index] = build(index)
                return request

            return factory
        decorate = self._hook_decorate_append_request

        def factory(follower: ServerId) -> AppendEntriesRequest:
            index = next_index(follower)
            request = cache.get(index)
            if request is None:
                request = cache[index] = build(index)
            return decorate(request, follower)

        return factory

    def _build_append_entries(self, next_index: LogIndex) -> AppendEntriesRequest:
        """The base AppendEntries for a follower whose next index is known."""
        prev_index = next_index - 1
        log = self.log
        prev_term = log.term_at(prev_index) if prev_index <= log.last_index else 0
        entries = tuple(
            log.entries_from(next_index, limit=self.config.max_entries_per_append)
        )
        return AppendEntriesRequest(
            term=self.current_term,
            leader_id=self.node_id,
            prev_log_index=prev_index,
            prev_log_term=prev_term,
            entries=entries,
            leader_commit=self.commit_index,
        )

    def _build_append_entries_for(self, follower: ServerId) -> AppendEntriesRequest:
        assert self.progress is not None
        request = self._build_append_entries(self.progress.next_index(follower))
        return self._hook_decorate_append_request(request, follower)

    def _advance_commit_index(self) -> None:
        assert self.progress is not None
        if self.commit_index >= self.log.last_index:
            # The quorum rule can never yield an index beyond the leader's own
            # log tail, so there is nothing further to commit.
            return
        new_commit = self.progress.commit_index_for_quorum(
            self.cluster.quorum_size, self.log, self.current_term
        )
        if new_commit > self.commit_index:
            self.commit_index = new_commit
            self._apply_committed_entries()

    def _apply_committed_entries(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self.log.entry_at(self.last_applied)
            result = self.state_machine.apply(entry.command)
            self.apply_results[entry.index] = result
            if self._trace_on:
                self.env.trace("log.apply", index=entry.index, term=entry.term)
            for listener in self._listeners:
                listener.on_entry_committed(
                    self.node_id, entry.index, entry.term, self.env.now()
                )

    # ------------------------------------------------------------------ #
    # Timers
    # ------------------------------------------------------------------ #
    def _reset_election_timer(self) -> None:
        timer = self._election_timer
        if timer is not None:
            self.env.cancel_timer(timer)
        policy = self.timeout_policy
        if self._timeout_hook_is_default and type(policy) is RandomizedTimeoutPolicy:
            # Inlined RandomizedTimeoutPolicy.next_timeout_ms: bit-identical
            # to rng.uniform(low, high) == low + (high - low) * rng.random().
            low = policy.low_ms
            timeout = low + (policy.high_ms - low) * self.env.rng.random()
        else:
            timeout = self._hook_election_timeout_ms()
        self._election_timer = self.env.set_timer(
            timeout, self._on_election_timeout, label="election-timeout"
        )

    def _cancel_election_timer(self) -> None:
        if self._election_timer is not None:
            self.env.cancel_timer(self._election_timer)
            self._election_timer = None

    def _cancel_heartbeat_timer(self) -> None:
        if self._heartbeat_timer is not None:
            self.env.cancel_timer(self._heartbeat_timer)
            self._heartbeat_timer = None

    def _cancel_vote_retry_timer(self) -> None:
        if self._vote_retry_timer is not None:
            self.env.cancel_timer(self._vote_retry_timer)
            self._vote_retry_timer = None

    # ------------------------------------------------------------------ #
    # Extension hooks overridden by ESCAPE and Z-Raft
    # ------------------------------------------------------------------ #
    def _hook_next_election_term(self) -> Term:
        """Term used for the next campaign.  Raft: ``current_term + 1``."""
        return self.current_term + 1

    def _hook_election_timeout_ms(self) -> Milliseconds:
        """Length of the next election-timeout wait."""
        return self.timeout_policy.next_timeout_ms(self.env.rng, self._timeout_attempt)

    def _hook_may_grant_vote(self, request: RequestVoteRequest) -> bool:
        """Protocol-specific extra vote checks (ESCAPE: configuration clock)."""
        return True

    def _hook_make_vote_request(self) -> RequestVoteRequest:
        """Build this candidate's vote solicitation."""
        return RequestVoteRequest(
            term=self.current_term,
            candidate_id=self.node_id,
            last_log_index=self.log.last_index,
            last_log_term=self.log.last_term,
        )

    def _hook_decorate_append_request(
        self, request: AppendEntriesRequest, follower: ServerId
    ) -> AppendEntriesRequest:
        """Let subclasses piggyback data on an outgoing AppendEntries."""
        return request

    def _hook_make_append_response(
        self, request: AppendEntriesRequest, success: bool, match_index: LogIndex
    ) -> AppendEntriesResponse:
        """Build the reply to an AppendEntries request.

        Replies are value-frozen, so the steady heartbeat stream (same term,
        same match index) reuses one instance instead of allocating per reply.
        """
        memo = self._append_response_memo
        if (
            memo is not None
            and memo[0] == self.current_term
            and memo[1] is success
            and memo[2] == match_index
        ):
            return memo[3]
        response = AppendEntriesResponse(
            term=self.current_term,
            follower_id=self.node_id,
            success=success,
            match_index=match_index,
        )
        self._append_response_memo = (self.current_term, success, match_index, response)
        return response

    def _hook_on_leader_heartbeat(self, request: AppendEntriesRequest) -> None:
        """Called on the follower whenever a legitimate leader is heard."""
        return None

    def _hook_on_append_response(
        self, src: ServerId, response: AppendEntriesResponse
    ) -> None:
        """Called on the leader for every AppendEntries reply (PPF tracking)."""
        return None

    def _hook_before_heartbeat_round(self) -> None:
        """Called on the leader right before each heartbeat broadcast."""
        return None

    def _hook_on_become_leader(self) -> None:
        """Called when this node wins an election."""
        return None

    def _hook_on_term_adopted(self, term: Term) -> None:
        """Called after adopting a higher term from a received message."""
        return None

    # ------------------------------------------------------------------ #
    # Debugging helpers
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """One-line summary used by examples and debugging sessions."""
        return (
            f"S{self.node_id}[{self.protocol_name}] role={self.role} "
            f"term={self.current_term} log=({self.log.last_index},{self.log.last_term}) "
            f"commit={self.commit_index}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"

"""Real-time asyncio runtime for the protocol nodes.

The same sans-IO nodes that the discrete-event simulator drives can run on
real sockets and wall-clock timers.  This package provides:

* :mod:`repro.runtime.codec` -- JSON serialisation of every protocol message;
* :mod:`repro.runtime.transport` -- a UDP/JSON transport with an optional
  artificial latency and loss injector (a NetEm stand-in on localhost);
* :mod:`repro.runtime.environment` -- the asyncio implementation of the node
  :class:`~repro.raft.environment.Environment`;
* :mod:`repro.runtime.cluster` -- a convenience launcher that runs a whole
  Raft/ESCAPE/Z-Raft cluster inside one event loop on localhost.

The runtime exists to demonstrate the protocols end-to-end on a real network
stack (see ``examples/live_asyncio_cluster.py``); the quantitative experiments
use the simulator, which exercises the identical protocol code.
"""

from repro.runtime.cluster import LocalAsyncCluster
from repro.runtime.codec import decode_message, encode_message
from repro.runtime.environment import AsyncNodeEnvironment
from repro.runtime.transport import UdpJsonTransport

__all__ = [
    "AsyncNodeEnvironment",
    "LocalAsyncCluster",
    "UdpJsonTransport",
    "decode_message",
    "encode_message",
]

"""Run a whole consensus cluster on localhost UDP inside one event loop.

:class:`LocalAsyncCluster` is the live counterpart of
:class:`repro.cluster.builder.SimulatedCluster`: it instantiates the same node
classes, but wires them to UDP sockets and wall-clock timers.  It is used by
``examples/live_asyncio_cluster.py`` and by a (small, time-bounded)
integration test.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro import protocols
from repro.common.config import ClusterConfig, ProtocolConfig, RaftTimeoutConfig, ScaParameters
from repro.common.errors import ClusterError
from repro.common.rng import SeedSequence
from repro.common.types import Milliseconds, ServerId
from repro.raft.node import RaftNode
from repro.raft.state import Role
from repro.runtime.environment import AsyncNodeEnvironment
from repro.runtime.transport import UdpJsonTransport
from repro.statemachine.kvstore import KeyValueStore
from repro.storage.persistent import InMemoryStore


class LocalAsyncCluster:
    """A consensus cluster running live on localhost UDP.

    Node construction goes through the same protocol registry
    (:mod:`repro.protocols`) as the simulated builder, so the two runtimes
    provably build identical nodes for a given protocol name.

    Args:
        protocol: any name registered in :mod:`repro.protocols`.
        size: number of servers.
        base_port: UDP port of ``S1``; ``S<i>`` binds ``base_port + i - 1``.
        seed: seed for every node's private random stream.
        heartbeat_interval_ms / election timeouts: real-time deployments want
            much tighter timers than the paper's geo-emulation, so the
            defaults here are scaled down (50 ms heartbeats, 200-400 ms
            timeouts, SCA base 200 ms / k 60 ms) to keep the examples snappy.
        latency_range_ms: optional artificial one-way latency injected by the
            transport (``None`` = raw loopback latency).
        loss_rate: optional i.i.d. message loss injected by the transport.
    """

    def __init__(
        self,
        protocol: str = "escape",
        size: int = 5,
        base_port: int = 29100,
        seed: int = 0,
        heartbeat_interval_ms: Milliseconds = 50.0,
        raft_timeout_range: tuple[Milliseconds, Milliseconds] = (200.0, 400.0),
        sca: ScaParameters | None = None,
        latency_range_ms: tuple[Milliseconds, Milliseconds] | None = None,
        loss_rate: float = 0.0,
    ) -> None:
        self.spec = protocols.get(protocol)
        self.protocol = self.spec.name
        self.config = ClusterConfig.of_size(size)
        self._seed = seed
        self._protocol_config = ProtocolConfig(
            heartbeat_interval_ms=heartbeat_interval_ms,
            vote_retry_interval_ms=max(heartbeat_interval_ms, 50.0),
            raft_timeouts=RaftTimeoutConfig(*raft_timeout_range),
            sca=sca if sca is not None else ScaParameters(base_time_ms=200.0, k_ms=60.0),
        )
        self._address_book: dict[ServerId, tuple[str, int]] = {
            server_id: ("127.0.0.1", base_port + server_id - 1)
            for server_id in self.config.server_ids
        }
        self._latency_range_ms = latency_range_ms
        self._loss_rate = loss_rate
        self.transports: dict[ServerId, UdpJsonTransport] = {}
        self.nodes: dict[ServerId, RaftNode] = {}
        self.trace_log: list[tuple[float, ServerId, str, dict[str, Any]]] = []
        self._started = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind every socket and start every node."""
        if self._started:
            raise ClusterError("cluster is already started")
        seeds = SeedSequence(self._seed)
        for server_id in self.config.server_ids:
            node_holder: dict[str, RaftNode] = {}

            def deliver(src: ServerId, message: Any, holder: dict[str, RaftNode] = node_holder) -> None:
                node = holder.get("node")
                if node is not None:
                    node.on_message(src, message)

            transport = UdpJsonTransport(
                node_id=server_id,
                address_book=self._address_book,
                on_message=deliver,
                latency_range_ms=self._latency_range_ms,
                loss_rate=self._loss_rate,
                rng=seeds.stream("transport", server_id),
            )
            await transport.start()
            env = AsyncNodeEnvironment(
                node_id=server_id,
                transport=transport,
                rng=seeds.stream("node", server_id),
                trace_log=self.trace_log,
            )
            node = self.spec.build_node(
                node_id=server_id,
                cluster=self.config,
                env=env,
                store=InMemoryStore(),
                state_machine=KeyValueStore(),
                protocol_config=self._protocol_config,
            )
            node_holder["node"] = node
            self.transports[server_id] = transport
            self.nodes[server_id] = node
        for node in self.nodes.values():
            node.start()
        self._started = True

    async def shutdown(self) -> None:
        """Stop every node and close every socket."""
        for node in self.nodes.values():
            if node.is_running:
                node.stop()
        for transport in self.transports.values():
            transport.close()
        # Give the loop one tick to flush closing transports.
        await asyncio.sleep(0)
        self._started = False

    # ------------------------------------------------------------------ #
    # Leadership helpers
    # ------------------------------------------------------------------ #
    def leader(self) -> RaftNode | None:
        """The running leader with the highest term, if any."""
        leaders = [
            node
            for node in self.nodes.values()
            if node.is_running and node.role is Role.LEADER
        ]
        if not leaders:
            return None
        return max(leaders, key=lambda node: node.current_term)

    async def wait_for_leader(
        self, timeout_ms: Milliseconds = 10_000.0, exclude: ServerId | None = None
    ) -> RaftNode:
        """Wait (polling) until a leader other than *exclude* emerges."""
        deadline = asyncio.get_running_loop().time() + timeout_ms / 1000.0
        while True:
            leader = self.leader()
            if leader is not None and leader.node_id != exclude:
                return leader
            if asyncio.get_running_loop().time() > deadline:
                raise ClusterError(f"no leader emerged within {timeout_ms} ms")
            await asyncio.sleep(0.01)

    def crash(self, server_id: ServerId) -> None:
        """Crash one node: stop it and close its socket."""
        node = self.nodes[server_id]
        if node.is_running:
            node.stop()
        self.transports[server_id].close()

    async def crash_leader_and_wait(
        self, timeout_ms: Milliseconds = 10_000.0
    ) -> tuple[ServerId, RaftNode, Milliseconds]:
        """Crash the current leader and wait for its successor.

        Returns:
            ``(crashed_leader_id, new_leader, failover_ms)``.
        """
        leader = self.leader()
        if leader is None:
            raise ClusterError("no leader to crash")
        crashed = leader.node_id
        started = asyncio.get_running_loop().time()
        self.crash(crashed)
        new_leader = await self.wait_for_leader(timeout_ms=timeout_ms, exclude=crashed)
        failover_ms = (asyncio.get_running_loop().time() - started) * 1000.0
        return crashed, new_leader, failover_ms

    # ------------------------------------------------------------------ #
    # Client helpers
    # ------------------------------------------------------------------ #
    async def propose_and_wait(
        self, command: Any, timeout_ms: Milliseconds = 5_000.0
    ) -> Any:
        """Propose a command on the leader and wait until it is applied there."""
        leader = await self.wait_for_leader(timeout_ms=timeout_ms)
        index = leader.propose(command)
        deadline = asyncio.get_running_loop().time() + timeout_ms / 1000.0
        while leader.last_applied < index:
            if asyncio.get_running_loop().time() > deadline:
                raise ClusterError(f"command at index {index} was not applied in time")
            await asyncio.sleep(0.005)
        return leader.result_for(index)

"""The asyncio implementation of the node environment."""

from __future__ import annotations

import asyncio
import logging
import random
import time
from typing import Any, Callable, Sequence

from repro.common.rng import derive_seed
from repro.common.types import Milliseconds, ServerId
from repro.runtime.transport import UdpJsonTransport

logger = logging.getLogger("repro.runtime")


class _AsyncTimerHandle:
    """Adapter giving ``asyncio.TimerHandle`` the library's ``cancel()`` shape."""

    __slots__ = ("_handle",)

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle

    def cancel(self) -> None:
        self._handle.cancel()


class AsyncNodeEnvironment:
    """Wall-clock / UDP environment for one protocol node.

    Args:
        node_id: the owning server.
        transport: the node's UDP transport (used for sends and broadcasts).
        rng: the node's private random stream (election-timeout draws).
        trace_log: optional list that trace events are appended to
            (``(time_ms, node_id, category, detail)`` tuples); when ``None``
            traces go to the ``repro.runtime`` logger at DEBUG level.
    """

    def __init__(
        self,
        node_id: ServerId,
        transport: UdpJsonTransport,
        rng: random.Random | None = None,
        trace_log: list[tuple[float, ServerId, str, dict[str, Any]]] | None = None,
    ) -> None:
        self.node_id = node_id
        self._transport = transport
        self._rng = rng if rng is not None else random.Random(
            derive_seed(0, "runtime", "node", node_id)
        )
        self._trace_log = trace_log
        self._origin = time.monotonic()

    @property
    def rng(self) -> random.Random:
        return self._rng

    def now(self) -> Milliseconds:
        """Milliseconds since this environment was created (monotonic)."""
        return (time.monotonic() - self._origin) * 1000.0

    def send(self, dst: ServerId, message: Any) -> None:
        self._transport.send(dst, message)

    def broadcast(
        self,
        targets: Sequence[ServerId],
        payload_factory: Callable[[ServerId], Any],
    ) -> None:
        for dst in targets:
            self._transport.send(dst, payload_factory(dst))

    def set_timer(
        self,
        delay_ms: Milliseconds,
        callback: Callable[[], None],
        label: str = "",
    ) -> _AsyncTimerHandle:
        loop = asyncio.get_running_loop()
        return _AsyncTimerHandle(loop.call_later(delay_ms / 1000.0, callback))

    def cancel_timer(self, handle: _AsyncTimerHandle) -> None:
        handle.cancel()

    def trace(self, category: str, **detail: Any) -> None:
        if self._trace_log is not None:
            self._trace_log.append((self.now(), self.node_id, category, detail))
        else:
            logger.debug("S%s %s %s", self.node_id, category, detail)

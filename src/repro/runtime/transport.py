"""UDP/JSON transport for the asyncio runtime.

Each node owns one UDP socket bound to ``127.0.0.1:<port>``; the address book
maps server ids to ports.  The transport can optionally inject an artificial
per-message delay (a NetEm stand-in for the paper's 100-200 ms latency) and
an i.i.d. loss probability, so the live runtime can demonstrate the same
conditions the simulator measures.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Mapping

from repro.common.errors import NetworkError
from repro.common.rng import derive_seed
from repro.common.types import Milliseconds, ServerId
from repro.runtime.codec import decode_datagram, encode_datagram

DeliveryCallback = Callable[[ServerId, Any], None]


class _NodeDatagramProtocol(asyncio.DatagramProtocol):
    """Receives datagrams for one node and forwards them to its callback."""

    def __init__(self, owner: "UdpJsonTransport") -> None:
        self._owner = owner

    def datagram_received(self, data: bytes, addr: tuple[str, int]) -> None:
        self._owner._on_datagram(data)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover - OS dependent
        self._owner.errors += 1


class UdpJsonTransport:
    """One node's UDP endpoint.

    Args:
        node_id: the owning server.
        address_book: server id → ``(host, port)`` for every cluster member.
        on_message: callback invoked with ``(src, message)`` for each datagram.
        latency_range_ms: optional artificial one-way delay range.
        loss_rate: optional i.i.d. probability of dropping an outgoing message.
        rng: randomness source for latency/loss decisions.
    """

    def __init__(
        self,
        node_id: ServerId,
        address_book: Mapping[ServerId, tuple[str, int]],
        on_message: DeliveryCallback,
        latency_range_ms: tuple[Milliseconds, Milliseconds] | None = None,
        loss_rate: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        if node_id not in address_book:
            raise NetworkError(f"S{node_id} is missing from the address book")
        self.node_id = node_id
        self._address_book = dict(address_book)
        self._on_message = on_message
        self._latency_range_ms = latency_range_ms
        self._loss_rate = loss_rate
        self._rng = rng if rng is not None else random.Random(
            derive_seed(0, "runtime", "transport", node_id)
        )
        self._transport: asyncio.DatagramTransport | None = None
        self.sent = 0
        self.received = 0
        self.dropped = 0
        self.errors = 0

    async def start(self) -> None:
        """Bind the UDP socket and start receiving."""
        loop = asyncio.get_running_loop()
        host, port = self._address_book[self.node_id]
        transport, _protocol = await loop.create_datagram_endpoint(
            lambda: _NodeDatagramProtocol(self), local_addr=(host, port)
        )
        self._transport = transport

    def close(self) -> None:
        """Close the UDP socket."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    @property
    def is_open(self) -> bool:
        """Whether the socket is currently bound."""
        return self._transport is not None

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    def send(self, dst: ServerId, message: Any) -> None:
        """Send one message to one peer (fire-and-forget)."""
        if self._transport is None:
            return
        if dst not in self._address_book:
            raise NetworkError(f"S{dst} is missing from the address book")
        if self._loss_rate > 0.0 and self._rng.random() < self._loss_rate:
            self.dropped += 1
            return
        data = encode_datagram(self.node_id, message)
        delay_ms = self._sample_delay_ms()
        if delay_ms <= 0:
            self._really_send(dst, data)
        else:
            loop = asyncio.get_running_loop()
            loop.call_later(delay_ms / 1000.0, self._really_send, dst, data)

    def _really_send(self, dst: ServerId, data: bytes) -> None:
        if self._transport is None:
            return
        self._transport.sendto(data, self._address_book[dst])
        self.sent += 1

    def _sample_delay_ms(self) -> Milliseconds:
        if self._latency_range_ms is None:
            return 0.0
        low, high = self._latency_range_ms
        return self._rng.uniform(low, high)

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #
    def _on_datagram(self, data: bytes) -> None:
        try:
            src, message = decode_datagram(data)
        except Exception:
            self.errors += 1
            return
        self.received += 1
        self._on_message(src, message)

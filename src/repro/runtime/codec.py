"""JSON codec for protocol messages.

The simulator passes message objects by reference; the asyncio runtime needs a
wire format.  Every RPC dataclass (Raft and ESCAPE) is encoded as a JSON
object carrying a ``type`` discriminator plus its fields; nested value objects
(log entries, configurations, config statuses) are encoded structurally.
Commands inside log entries must themselves be JSON-serialisable (the
key-value commands in :mod:`repro.statemachine.kvstore` provide ``to_dict``).
"""

from __future__ import annotations

import json
from typing import Any

from repro.common.errors import ProtocolError
from repro.escape.configuration import ConfigStatus, Configuration
from repro.escape.messages import (
    EscapeAppendEntriesRequest,
    EscapeAppendEntriesResponse,
    EscapeRequestVoteRequest,
)
from repro.raft.messages import (
    AppendEntriesRequest,
    AppendEntriesResponse,
    RequestVoteRequest,
    RequestVoteResponse,
)
from repro.storage.log import LogEntry

#: Message classes the codec understands, keyed by their wire discriminator.
MESSAGE_TYPES: dict[str, type] = {
    "RequestVoteRequest": RequestVoteRequest,
    "RequestVoteResponse": RequestVoteResponse,
    "AppendEntriesRequest": AppendEntriesRequest,
    "AppendEntriesResponse": AppendEntriesResponse,
    "EscapeRequestVoteRequest": EscapeRequestVoteRequest,
    "EscapeAppendEntriesRequest": EscapeAppendEntriesRequest,
    "EscapeAppendEntriesResponse": EscapeAppendEntriesResponse,
}


def _encode_entry(entry: LogEntry) -> dict[str, Any]:
    command = entry.command
    if hasattr(command, "to_dict"):
        # Key-value commands (and any user command following the same
        # convention) provide their own JSON representation; the state machine
        # accepts the dict form on the receiving side.
        command = command.to_dict()
    return {"term": entry.term, "index": entry.index, "command": command}


def _decode_entry(payload: dict[str, Any]) -> LogEntry:
    return LogEntry(
        term=int(payload["term"]),
        index=int(payload["index"]),
        command=payload.get("command"),
    )


def _encode_configuration(configuration: Configuration | None) -> dict[str, Any] | None:
    if configuration is None:
        return None
    return {
        "priority": configuration.priority,
        "timer_period_ms": configuration.timer_period_ms,
        "conf_clock": configuration.conf_clock,
    }


def _decode_configuration(payload: dict[str, Any] | None) -> Configuration | None:
    if payload is None:
        return None
    return Configuration(
        priority=int(payload["priority"]),
        timer_period_ms=float(payload["timer_period_ms"]),
        conf_clock=int(payload["conf_clock"]),
    )


def _encode_config_status(status: ConfigStatus | None) -> dict[str, Any] | None:
    if status is None:
        return None
    return {
        "log_index": status.log_index,
        "timer_period_ms": status.timer_period_ms,
        "conf_clock": status.conf_clock,
    }


def _decode_config_status(payload: dict[str, Any] | None) -> ConfigStatus | None:
    if payload is None:
        return None
    return ConfigStatus(
        log_index=int(payload["log_index"]),
        timer_period_ms=float(payload["timer_period_ms"]),
        conf_clock=int(payload["conf_clock"]),
    )


def encode_message(message: Any) -> dict[str, Any]:
    """Encode a protocol message as a JSON-serialisable dict."""
    name = type(message).__name__
    if name not in MESSAGE_TYPES:
        raise ProtocolError(f"cannot encode message type {name}")
    payload: dict[str, Any] = {"type": name, "term": message.term}
    if isinstance(message, RequestVoteRequest):
        payload.update(
            candidate_id=message.candidate_id,
            last_log_index=message.last_log_index,
            last_log_term=message.last_log_term,
        )
        if isinstance(message, EscapeRequestVoteRequest):
            payload.update(conf_clock=message.conf_clock, priority=message.priority)
    elif isinstance(message, RequestVoteResponse):
        payload.update(voter_id=message.voter_id, vote_granted=message.vote_granted)
    elif isinstance(message, AppendEntriesRequest):
        payload.update(
            leader_id=message.leader_id,
            prev_log_index=message.prev_log_index,
            prev_log_term=message.prev_log_term,
            entries=[_encode_entry(entry) for entry in message.entries],
            leader_commit=message.leader_commit,
        )
        if isinstance(message, EscapeAppendEntriesRequest):
            payload.update(new_config=_encode_configuration(message.new_config))
    elif isinstance(message, AppendEntriesResponse):
        payload.update(
            follower_id=message.follower_id,
            success=message.success,
            match_index=message.match_index,
        )
        if isinstance(message, EscapeAppendEntriesResponse):
            payload.update(config_status=_encode_config_status(message.config_status))
    return payload


def decode_message(payload: dict[str, Any]) -> Any:
    """Rebuild a protocol message from its JSON representation."""
    name = payload.get("type")
    if name not in MESSAGE_TYPES:
        raise ProtocolError(f"cannot decode message type {name!r}")
    term = int(payload["term"])
    if name == "RequestVoteRequest":
        return RequestVoteRequest(
            term=term,
            candidate_id=int(payload["candidate_id"]),
            last_log_index=int(payload["last_log_index"]),
            last_log_term=int(payload["last_log_term"]),
        )
    if name == "EscapeRequestVoteRequest":
        return EscapeRequestVoteRequest(
            term=term,
            candidate_id=int(payload["candidate_id"]),
            last_log_index=int(payload["last_log_index"]),
            last_log_term=int(payload["last_log_term"]),
            conf_clock=int(payload["conf_clock"]),
            priority=int(payload["priority"]),
        )
    if name == "RequestVoteResponse":
        return RequestVoteResponse(
            term=term,
            voter_id=int(payload["voter_id"]),
            vote_granted=bool(payload["vote_granted"]),
        )
    if name in ("AppendEntriesRequest", "EscapeAppendEntriesRequest"):
        entries = tuple(_decode_entry(item) for item in payload.get("entries", []))
        common = dict(
            term=term,
            leader_id=int(payload["leader_id"]),
            prev_log_index=int(payload["prev_log_index"]),
            prev_log_term=int(payload["prev_log_term"]),
            entries=entries,
            leader_commit=int(payload["leader_commit"]),
        )
        if name == "AppendEntriesRequest":
            return AppendEntriesRequest(**common)
        return EscapeAppendEntriesRequest(
            **common, new_config=_decode_configuration(payload.get("new_config"))
        )
    if name in ("AppendEntriesResponse", "EscapeAppendEntriesResponse"):
        common = dict(
            term=term,
            follower_id=int(payload["follower_id"]),
            success=bool(payload["success"]),
            match_index=int(payload["match_index"]),
        )
        if name == "AppendEntriesResponse":
            return AppendEntriesResponse(**common)
        return EscapeAppendEntriesResponse(
            **common, config_status=_decode_config_status(payload.get("config_status"))
        )
    raise ProtocolError(f"unhandled message type {name!r}")  # pragma: no cover


def encode_datagram(src: int, message: Any) -> bytes:
    """Encode an on-the-wire datagram: the sender id plus the message."""
    return json.dumps({"src": src, "message": encode_message(message)}).encode("utf-8")


def decode_datagram(data: bytes) -> tuple[int, Any]:
    """Decode an on-the-wire datagram back into ``(src, message)``."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("malformed datagram") from exc
    return int(payload["src"]), decode_message(payload["message"])

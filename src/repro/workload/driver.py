"""The workload driver: resolving a :class:`WorkloadSpec` against a cluster.

:class:`WorkloadDriver` is the runtime half of the workload subsystem: it
schedules client requests on the simulated cluster's own event scheduler and
tracks every op from ``propose()`` to state-machine apply.  Three modes:

* ``legacy-interval`` replays the original
  :class:`~repro.cluster.workload.ClientWorkload` loop *exactly* -- same
  event label, same scheduling pattern, same command shape, no commit
  tracking -- so the fig11/avail experiments that predate this subsystem
  keep producing byte-identical reports.
* ``closed`` runs ``spec.clients`` closed-loop clients, each keeping at most
  one request in flight and thinking for an exponential ``think_time_ms``
  between completions (a client also moves on after ``request_timeout_ms``;
  its request may still commit later and is accounted either way).
* ``open`` issues requests on a deterministic arrival process (Poisson,
  fixed-gap or bursts) regardless of completions.

Tracked modes attach one listener to every node and match
``on_entry_committed(index, term)`` events against the ``(index, term)`` the
leader assigned at proposal time -- the Raft identity of an op, immune to the
entry being overwritten after a failover.  :meth:`finalize` resolves every
still-pending op against the surviving log (committed-but-unobserved vs
lost-at-failover) and replays that log into a fresh
:class:`~repro.statemachine.kvstore.KeyValueStore` to cross-check the
cluster's applied state -- the ground-truth verification the ISSUE asks for.

All randomness draws from named :class:`~repro.common.rng.SeedSequence`
streams and all scheduling goes through the simulated scheduler, so a driver
is bit-deterministic per seed on either engine.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Callable

from repro.common.errors import NotLeaderError, SimulationError
from repro.common.rng import SeedSequence
from repro.raft.listeners import NodeListenerBase
from repro.statemachine.kvstore import KeyValueStore, PutCommand
from repro.workload import specs as workload_specs
from repro.workload.specs import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.cluster.builder import SimulatedCluster
    from repro.raft.node import RaftNode

__all__ = ["WorkloadDriver"]


class _Op:
    """One logical client request, from first attempt to resolution."""

    __slots__ = ("sequence", "command", "client", "attempts", "proposed_ms", "released")

    def __init__(self, sequence: int, command: object, client: int | None) -> None:
        self.sequence = sequence
        self.command = command
        self.client = client
        self.attempts = 0
        self.proposed_ms = 0.0
        #: Whether the issuing closed-loop client has already moved on.
        self.released = client is None


class _CommitListener(NodeListenerBase):
    """Forwards every node's apply events to the driver's commit matcher."""

    def __init__(self, driver: "WorkloadDriver") -> None:
        self._driver = driver

    def on_entry_committed(
        self, node_id: int, index: int, term: int, time_ms: float
    ) -> None:
        self._driver._on_commit(index, term, time_ms)


class WorkloadDriver:
    """Drives one :class:`WorkloadSpec` against a simulated cluster.

    Args:
        cluster: the cluster under test.
        spec: a :class:`WorkloadSpec` or a registered workload name.
        seed: root seed for the driver's own random streams (think times,
            arrival gaps, key/value sampling); scenario runners pass the
            episode seed so the workload is part of the episode's identity.
        leader_selector: how the client finds the leader before each attempt;
            defaults to the cluster's global leader view.  Chaos scenarios
            pass a quorum-aware selector so requests during a partition count
            as dropped instead of landing on a stale leader.

    Counter semantics (the legacy trio keeps the exact
    :class:`~repro.cluster.workload.ClientWorkload` meaning):

    ``proposed``
        successful ``propose()`` calls.
    ``rejected``
        ops abandoned after ``NotLeaderError`` exhausted the retry budget.
    ``dropped``
        ops abandoned because no (quorum-capable) leader existed at issue
        time.
    ``retries``
        extra attempts after a ``NotLeaderError`` (tracked modes only).
    ``committed``
        proposed ops whose ``(index, term)`` reached the state machine.
    ``lost``
        proposed ops whose entry did not survive failover (resolved against
        the surviving log in :meth:`finalize`).
    """

    def __init__(
        self,
        cluster: "SimulatedCluster",
        spec: WorkloadSpec | str,
        seed: int = 0,
        leader_selector: Callable[[], object] | None = None,
    ) -> None:
        self._cluster = cluster
        self._spec = workload_specs.get(spec) if isinstance(spec, str) else spec
        self._leader_selector = leader_selector or cluster.leader
        self._scheduler = cluster.world.scheduler
        self._sequence = 0
        self._active = False
        self._finalized = False
        self.proposed = 0
        self.rejected = 0
        self.dropped = 0
        self.retries = 0
        self.committed = 0
        self.lost = 0
        self._latencies: list[float] = []
        #: In-flight proposals keyed by their Raft identity ``(index, term)``.
        self._pending: dict[tuple[int, int], _Op] = {}
        seeds = SeedSequence(seed)
        spec_value = self._spec
        if spec_value.mode == "closed":
            self._think_rngs = [
                seeds.stream("workload", "client", client)
                for client in range(spec_value.clients)
            ]
        self._arrival_rng = seeds.stream("workload", "arrivals")
        self._key_rng = seeds.stream("workload", "keys")
        self._value_rng = seeds.stream("workload", "values")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> WorkloadSpec:
        """The resolved workload spec this driver runs."""
        return self._spec

    @property
    def is_active(self) -> bool:
        """Whether the workload is currently issuing requests."""
        return self._active

    @property
    def latencies_ms(self) -> tuple[float, ...]:
        """Commit latency of every op observed committing, in commit order."""
        return tuple(self._latencies)

    @property
    def pending_count(self) -> int:
        """Proposed ops not yet resolved (committed / lost)."""
        return len(self._pending)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Begin issuing requests according to the spec's mode."""
        if self._active:
            return
        self._active = True
        if self._spec.mode == "legacy-interval":
            self._schedule_legacy_tick()
            return
        listener = _CommitListener(self)
        for node in self._cluster.nodes.values():
            node.add_listener(listener)
        if self._spec.mode == "closed":
            for client in range(self._spec.clients):
                self._schedule_think(client)
        else:
            self._schedule_arrival()

    def stop(self) -> None:
        """Stop issuing new requests (already scheduled ticks do nothing)."""
        self._active = False

    def finalize(self) -> None:
        """Stop and resolve every still-pending op against the surviving log.

        A pending op whose ``(index, term)`` is committed in the surviving
        log counts as ``committed`` (its apply event simply fell outside the
        measured window); everything else proposed-but-never-committed
        counts as ``lost``.  The surviving log is then replayed into a fresh
        state machine and cross-checked against the cluster's applied state.

        Raises:
            SimulationError: when the replayed log disagrees with the
                cluster's state machine (a replication bug, never a workload
                property).
        """
        self.stop()
        if self._finalized or not self._spec.tracked:
            self._finalized = True
            return
        self._finalized = True
        scan = self._scan_node()
        if scan is None:
            self.lost += len(self._pending)
            self._pending.clear()
            return
        for (index, term), _ in self._pending.items():
            if (
                index <= scan.commit_index
                and scan.log.has_entry(index)
                and scan.log.term_at(index) == term
            ):
                # Committed in the surviving log but applied outside the
                # window our listener observed; count it, without a latency
                # sample (there is no apply timestamp to measure against).
                self.committed += 1
            else:
                self.lost += 1
        self._pending.clear()
        self._verify_ground_truth(scan)

    def _scan_node(self) -> "RaftNode | None":
        """The running node with the longest committed prefix (ties: lowest id)."""
        running = self._cluster.running_nodes()
        if not running:
            return None
        return max(running, key=lambda node: (node.commit_index, -node.node_id))

    def _verify_ground_truth(self, scan: "RaftNode") -> None:
        """Replay the committed log into a fresh KV store and cross-check."""
        if not isinstance(scan.state_machine, KeyValueStore):
            return
        replay = KeyValueStore()
        for index in range(1, scan.commit_index + 1):
            replay.apply(scan.log.entry_at(index).command)
        if replay.snapshot() != scan.state_machine.snapshot():
            raise SimulationError(
                f"workload ground truth diverged on node {scan.node_id}: "
                f"replaying {scan.commit_index} committed entries does not "
                "reproduce its state machine"
            )

    # ------------------------------------------------------------------ #
    # Legacy mode (byte-identical ClientWorkload loop)
    # ------------------------------------------------------------------ #
    def _schedule_legacy_tick(self) -> None:
        self._scheduler.call_after(
            self._spec.interval_ms, self._legacy_tick, label="workload"
        )

    def _legacy_tick(self) -> None:
        if not self._active:
            return
        leader = self._leader_selector()
        if leader is None:
            self.dropped += 1
        else:
            sequence = self._sequence
            self._sequence += 1
            command = PutCommand(
                key=f"key-{sequence % self._spec.keyspace.keys}", value=sequence
            )
            try:
                leader.propose(command)
                self.proposed += 1
            except NotLeaderError:
                self.rejected += 1
        self._schedule_legacy_tick()

    # ------------------------------------------------------------------ #
    # Closed loop
    # ------------------------------------------------------------------ #
    def _schedule_think(self, client: int) -> None:
        gap = self._think_rngs[client].expovariate(1.0 / self._spec.think_time_ms)
        self._scheduler.call_after(
            gap, partial(self._client_tick, client), label="workload-think"
        )

    def _client_tick(self, client: int) -> None:
        if not self._active:
            return
        self._issue(client)

    def _release(self, client: int) -> None:
        """The client's in-flight request resolved; think, then go again."""
        if not self._active:
            return
        self._schedule_think(client)

    # ------------------------------------------------------------------ #
    # Open loop
    # ------------------------------------------------------------------ #
    def _schedule_arrival(self) -> None:
        spec = self._spec
        if spec.arrival == "burst":
            delay = spec.burst_interval_ms
        elif spec.arrival == "poisson":
            delay = self._arrival_rng.expovariate(spec.rate_per_s / 1000.0)
        else:
            delay = 1000.0 / spec.rate_per_s
        self._scheduler.call_after(delay, self._arrival_tick, label="workload-arrival")

    def _arrival_tick(self) -> None:
        if not self._active:
            return
        count = self._spec.burst_size if self._spec.arrival == "burst" else 1
        for _ in range(count):
            self._issue(None)
        self._schedule_arrival()

    # ------------------------------------------------------------------ #
    # Shared issue path (tracked modes)
    # ------------------------------------------------------------------ #
    def _issue(self, client: int | None) -> None:
        sequence = self._sequence
        self._sequence += 1
        self._attempt(_Op(sequence, self._build_command(sequence), client))

    def _attempt(self, op: _Op) -> None:
        leader = self._leader_selector()
        if leader is None:
            # No quorum-capable leader: lost at the client, terminally -- the
            # availability experiments read this as the client-side view of a
            # leaderless interval, and a retry would only re-measure it.
            self.dropped += 1
            self._resolve_client(op)
            return
        try:
            index = leader.propose(op.command)
        except NotLeaderError:
            if op.attempts < self._spec.max_retries:
                op.attempts += 1
                self.retries += 1
                self._scheduler.call_after(
                    self._spec.retry_backoff_ms,
                    partial(self._retry, op),
                    label="workload-retry",
                )
            else:
                self.rejected += 1
                self._resolve_client(op)
            return
        self.proposed += 1
        op.proposed_ms = self._cluster.world.now()
        key = (index, leader.current_term)
        self._pending[key] = op
        if op.client is not None:
            self._scheduler.call_after(
                self._spec.request_timeout_ms,
                partial(self._request_timeout, key),
                label="workload-timeout",
            )

    def _retry(self, op: _Op) -> None:
        if not self._active:
            # The window closed while backing off; the op resolves as
            # rejected (it never reached a leader).
            self.rejected += 1
            return
        self._attempt(op)

    def _build_command(self, sequence: int) -> PutCommand:
        keyspace = self._spec.keyspace
        if keyspace.mode == "round-robin":
            key = sequence % keyspace.keys
        elif keyspace.mode == "uniform":
            key = self._key_rng.randrange(keyspace.keys)
        else:  # hotspot
            hot = max(1, int(keyspace.keys * keyspace.hot_fraction))
            if self._key_rng.random() < keyspace.hot_share:
                key = self._key_rng.randrange(hot)
            else:
                key = hot + self._key_rng.randrange(keyspace.keys - hot)
        sizes = self._spec.value_size
        if sizes.mode == "fixed":
            size = sizes.size
        else:
            size = self._value_rng.randint(sizes.min_size, sizes.max_size)
        return PutCommand(key=f"key-{key}", value=f"{sequence}:".ljust(size, "x"))

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def _on_commit(self, index: int, term: int, time_ms: float) -> None:
        """First apply observation of ``(index, term)`` resolves the op."""
        op = self._pending.pop((index, term), None)
        if op is None:
            return
        self.committed += 1
        self._latencies.append(time_ms - op.proposed_ms)
        self._resolve_client(op)

    def _request_timeout(self, key: tuple[int, int]) -> None:
        op = self._pending.get(key)
        if op is None:
            return
        # The client gives up waiting and moves on; the op itself stays
        # pending (it may still commit, or resolve as lost in finalize()).
        self._resolve_client(op)

    def _resolve_client(self, op: _Op) -> None:
        if op.released:
            return
        op.released = True
        assert op.client is not None
        self._release(op.client)

"""The replicated-workload subsystem: the sixth spec registry.

Frozen :class:`~repro.workload.specs.WorkloadSpec` values describe client
traffic shapes by name; :class:`~repro.workload.driver.WorkloadDriver`
resolves one against a live cluster; :class:`~repro.workload.aggregate
.WorkloadAggregate` folds the per-op records into mergeable streaming
summaries for the ``throughput`` experiment.

:class:`~repro.workload.scenario.ThroughputScenario` is deliberately *not*
re-exported here: the cluster layer imports this package for the driver, and
the scenario imports the cluster layer, so experiments and tests import it
from :mod:`repro.workload.scenario` directly.
"""

from repro.workload.aggregate import WorkloadAggregate
from repro.workload.driver import WorkloadDriver
from repro.workload.records import WorkloadMeasurement, WorkloadSet
from repro.workload.specs import (
    KeyspaceSpec,
    ValueSizeSpec,
    WorkloadSpec,
    get,
    is_registered,
    legacy_interval,
    names,
    register,
    registered_specs,
)

__all__ = [
    "KeyspaceSpec",
    "ValueSizeSpec",
    "WorkloadAggregate",
    "WorkloadDriver",
    "WorkloadMeasurement",
    "WorkloadSet",
    "WorkloadSpec",
    "get",
    "is_registered",
    "legacy_interval",
    "names",
    "register",
    "registered_specs",
]

"""The per-label mergeable aggregate of workload measurements.

:class:`WorkloadAggregate` is to the ``throughput`` experiment what
:class:`~repro.metrics.streaming.ElectionAggregate` is to the election
sweeps: workers fill one per label per chunk, the sweep engine merges them in
chunk order, and the result answers exactly the questions the throughput
report asks -- sustained ops/sec, p50/p99/p999 commit latency, drops while
leaderless and ops lost per failover -- without retaining an episode record.
Latencies feed a :class:`~repro.metrics.streaming.StreamingSummary`, so any
chunking and any worker count produce bit-identical results while the sample
count stays within the sketch capacity (the same exactness contract the
election path pins).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.common.errors import ClusterError
from repro.metrics.streaming import DEFAULT_CDF_CAPACITY, StreamingSummary
from repro.workload.records import WorkloadMeasurement

__all__ = ["WorkloadAggregate"]


class WorkloadAggregate:
    """Mergeable accumulator of :class:`WorkloadMeasurement` records."""

    __slots__ = (
        "label",
        "runs",
        "proposed",
        "committed",
        "retries",
        "dropped",
        "rejected",
        "lost",
        "outages",
        "window_ms",
        "leaderless_ms",
        "latency_ms",
    )

    def __init__(
        self, label: str = "", capacity: int = DEFAULT_CDF_CAPACITY
    ) -> None:
        self.label = label
        self.runs = 0
        self.proposed = 0
        self.committed = 0
        self.retries = 0
        self.dropped = 0
        self.rejected = 0
        self.lost = 0
        self.outages = 0
        self.window_ms = 0.0
        self.leaderless_ms = 0.0
        self.latency_ms = StreamingSummary(capacity=capacity)

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    def add(self, measurement: WorkloadMeasurement) -> None:
        """Absorb one episode's measurement."""
        self.runs += 1
        self.proposed += measurement.proposed
        self.committed += measurement.committed
        self.retries += measurement.retries
        self.dropped += measurement.dropped
        self.rejected += measurement.rejected
        self.lost += measurement.lost
        self.outages += measurement.outage_count
        self.window_ms += measurement.window_ms
        self.leaderless_ms += measurement.leaderless_ms
        for latency in measurement.latencies_ms:
            self.latency_ms.add(latency)

    def merge(self, other: "WorkloadAggregate") -> None:
        """Fold another partial aggregate for the same label in."""
        if other.label and self.label and other.label != self.label:
            raise ClusterError(
                f"cannot merge aggregate for {other.label!r} into {self.label!r}"
            )
        self.runs += other.runs
        self.proposed += other.proposed
        self.committed += other.committed
        self.retries += other.retries
        self.dropped += other.dropped
        self.rejected += other.rejected
        self.lost += other.lost
        self.outages += other.outages
        self.window_ms += other.window_ms
        self.leaderless_ms += other.leaderless_ms
        self.latency_ms.merge(other.latency_ms)

    @classmethod
    def from_measurements(
        cls,
        measurements: Iterable[WorkloadMeasurement],
        label: str = "",
        capacity: int = DEFAULT_CDF_CAPACITY,
    ) -> "WorkloadAggregate":
        """Aggregate an in-memory measurement collection (the batch bridge)."""
        aggregate = cls(label=label, capacity=capacity)
        for measurement in measurements:
            aggregate.add(measurement)
        return aggregate

    # ------------------------------------------------------------------ #
    # Queries (what the throughput report asks)
    # ------------------------------------------------------------------ #
    def ops_per_s(self) -> float:
        """Sustained committed throughput over the summed windows."""
        if not self.window_ms:
            raise ClusterError(f"no runs in aggregate {self.label!r}")
        return self.committed / (self.window_ms / 1000.0)

    def percentile_ms(self, q: float) -> float:
        """The *q*-th commit-latency percentile (exact under capacity)."""
        return self.latency_ms.percentile(q)

    def p50_ms(self) -> float:
        """Median commit latency."""
        return self.percentile_ms(50.0)

    def p99_ms(self) -> float:
        """99th-percentile commit latency."""
        return self.percentile_ms(99.0)

    def p999_ms(self) -> float:
        """99.9th-percentile commit latency."""
        return self.percentile_ms(99.9)

    def dropped_per_run(self) -> float:
        """Ops dropped at the client (leaderless) per run."""
        if not self.runs:
            raise ClusterError(f"no runs in aggregate {self.label!r}")
        return self.dropped / self.runs

    def lost_per_failover(self) -> float:
        """Proposed-but-never-committed ops per leaderless outage."""
        if not self.outages:
            return 0.0
        return self.lost / self.outages

    def outages_per_run(self) -> float:
        """Leaderless outages per run."""
        if not self.runs:
            raise ClusterError(f"no runs in aggregate {self.label!r}")
        return self.outages / self.runs

    def election_dip_percent(self) -> float:
        """Throughput lost to election windows, as a percentage.

        Compares the sustained rate against the rate over leader-available
        time only: a cluster that commits nothing while leaderless dips by
        exactly its leaderless fraction.
        """
        if not self.window_ms:
            raise ClusterError(f"no runs in aggregate {self.label!r}")
        available_ms = self.window_ms - self.leaderless_ms
        if available_ms <= 0:
            return 100.0
        available_rate = self.committed / available_ms
        overall_rate = self.committed / self.window_ms
        if available_rate == 0.0:
            return 0.0
        return 100.0 * (1.0 - overall_rate / available_rate)

    def __len__(self) -> int:
        return self.runs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkloadAggregate):
            return NotImplemented
        return (
            self.label == other.label
            and self.runs == other.runs
            and self.proposed == other.proposed
            and self.committed == other.committed
            and self.retries == other.retries
            and self.dropped == other.dropped
            and self.rejected == other.rejected
            and self.lost == other.lost
            and self.outages == other.outages
            and self.window_ms == other.window_ms
            and self.leaderless_ms == other.leaderless_ms
            and self.latency_ms == other.latency_ms
        )

    def __repr__(self) -> str:
        return (
            f"WorkloadAggregate(label={self.label!r}, runs={self.runs}, "
            f"committed={self.committed})"
        )

    # ------------------------------------------------------------------ #
    # Serialisation (the checkpoint format)
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict[str, object]:
        """JSON-able snapshot used by the sweep checkpoint."""
        return {
            "label": self.label,
            "runs": self.runs,
            "proposed": self.proposed,
            "committed": self.committed,
            "retries": self.retries,
            "dropped": self.dropped,
            "rejected": self.rejected,
            "lost": self.lost,
            "outages": self.outages,
            "window_ms": self.window_ms,
            "leaderless_ms": self.leaderless_ms,
            "latency_ms": self.latency_ms.to_state(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "WorkloadAggregate":
        """Rebuild an aggregate from :meth:`to_state` output."""
        aggregate = cls.__new__(cls)
        aggregate.label = str(state["label"])
        aggregate.runs = int(state["runs"])  # type: ignore[arg-type]
        aggregate.proposed = int(state["proposed"])  # type: ignore[arg-type]
        aggregate.committed = int(state["committed"])  # type: ignore[arg-type]
        aggregate.retries = int(state["retries"])  # type: ignore[arg-type]
        aggregate.dropped = int(state["dropped"])  # type: ignore[arg-type]
        aggregate.rejected = int(state["rejected"])  # type: ignore[arg-type]
        aggregate.lost = int(state["lost"])  # type: ignore[arg-type]
        aggregate.outages = int(state["outages"])  # type: ignore[arg-type]
        aggregate.window_ms = float(state["window_ms"])  # type: ignore[arg-type]
        aggregate.leaderless_ms = float(state["leaderless_ms"])  # type: ignore[arg-type]
        aggregate.latency_ms = StreamingSummary.from_state(state["latency_ms"])  # type: ignore[arg-type]
        return aggregate

"""Measurement records produced by the workload driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.common.errors import ClusterError
from repro.common.types import Milliseconds


@dataclass(frozen=True)
class WorkloadMeasurement:
    """Everything a workload observed over one measured episode.

    Where :class:`~repro.metrics.records.AvailabilityMeasurement` summarises
    the *cluster-side* view of a chaos window (leaderless time, recoveries),
    this record is the *client-side* view of the same window: every op from
    proposal to state-machine apply.

    The op counters partition as follows: every issued op ends up in exactly
    one of ``committed`` (applied to the replicated state machine),
    ``dropped`` (no quorum-capable leader at issue time), ``rejected``
    (``NotLeaderError`` after the retry budget) or ``lost`` (accepted by a
    leader but never committed -- the classic failover loss, verified against
    the surviving log).  ``proposed`` counts successful ``propose()`` calls
    and ``retries`` counts extra attempts, exactly as the legacy
    :class:`~repro.cluster.workload.ClientWorkload` counted them.
    """

    protocol: str
    cluster_size: int
    seed: int
    plan: str
    workload: str
    window_ms: Milliseconds
    proposed: int
    committed: int
    retries: int
    dropped: int
    rejected: int
    lost: int
    outage_count: int
    leaderless_ms: Milliseconds
    latencies_ms: tuple[Milliseconds, ...]
    extra: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window_ms <= 0:
            raise ClusterError(
                f"workload window must be positive, got {self.window_ms!r}"
            )
        if self.lost > self.proposed:
            raise ClusterError(
                f"cannot lose {self.lost} of {self.proposed} proposed ops"
            )

    @property
    def ops_per_s(self) -> float:
        """Sustained committed throughput over the measured window."""
        return self.committed / (self.window_ms / 1000.0)

    @property
    def issued(self) -> int:
        """Ops the workload tried to issue (any outcome)."""
        return self.proposed + self.dropped + self.rejected


class WorkloadSet:
    """Workload measurements from repeated runs of one configuration."""

    def __init__(
        self,
        measurements: Iterable[WorkloadMeasurement] = (),
        label: str = "",
    ) -> None:
        self._measurements = list(measurements)
        self.label = label

    def add(self, measurement: WorkloadMeasurement) -> None:
        """Append one measurement."""
        self._measurements.append(measurement)

    @property
    def measurements(self) -> tuple[WorkloadMeasurement, ...]:
        """Every recorded measurement."""
        return tuple(self._measurements)

    def _require_runs(self) -> list[WorkloadMeasurement]:
        if not self._measurements:
            raise ClusterError(f"no runs in workload set {self.label!r}")
        return self._measurements

    def pooled_latencies_ms(self) -> list[Milliseconds]:
        """Every commit latency across every run (for percentiles)."""
        return [
            latency
            for measurement in self._measurements
            for latency in measurement.latencies_ms
        ]

    def total_committed(self) -> int:
        """Committed ops summed over runs."""
        return sum(m.committed for m in self._measurements)

    def mean_ops_per_s(self) -> float:
        """Average sustained throughput over the runs."""
        runs = self._require_runs()
        return sum(m.ops_per_s for m in runs) / len(runs)

    def __len__(self) -> int:
        return len(self._measurements)

    def __iter__(self) -> Iterator[WorkloadMeasurement]:
        return iter(self._measurements)

"""The throughput scenario: one client-observed serving episode from a seed.

:class:`ThroughputScenario` is to the ``throughput`` experiment what
:class:`~repro.chaos.scenario.ChaosScenario` is to ``avail``: one frozen,
picklable experimental condition (protocol, cluster size, network specs,
chaos plan, *workload name*) that runs one measured episode.  The episode
stabilises a first leader, opens the window, lets the chaos driver inject
the plan while a :class:`~repro.workload.driver.WorkloadDriver` issues and
tracks client requests, and closes the window into a
:class:`~repro.workload.records.WorkloadMeasurement` -- the client-side view
(commit latencies, drops, failover losses) of the same disruption the
availability experiment measures cluster-side.

This module intentionally lives outside ``repro.workload``'s package
``__init__``: the cluster layer imports the workload driver, and this
scenario imports the cluster layer, so experiments import it as
``from repro.workload.scenario import ThroughputScenario``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.chaos.availability import AvailabilityObserver, quorum_leader
from repro.chaos.driver import ChaosDriver
from repro.chaos.plans import ChaosPlan
from repro.cluster.scenarios import ElectionScenario
from repro.common.config import ScaParameters
from repro.common.types import Milliseconds
from repro.net.specs import FaultSpec, LatencySpec
from repro.obs.harvest import (
    TelemetryListener,
    harvest_chaos,
    harvest_cluster,
    harvest_workload,
)
from repro.obs.telemetry import MetricsRegistry
from repro.workload import specs as workload_specs
from repro.workload.driver import WorkloadDriver
from repro.workload.records import WorkloadMeasurement

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.cluster.builder import SimulatedCluster

__all__ = ["ThroughputScenario"]


@dataclass(frozen=True)
class ThroughputScenario:
    """One experimental condition for a client-observed serving episode.

    Attributes:
        protocol / cluster_size / plan: as on
            :class:`~repro.chaos.scenario.ChaosScenario`; the plan's
            ``horizon_ms`` is the measured window.
        workload: a registered workload name (validated at construction
            time against :mod:`repro.workload.specs`).
        raft_timeout_range / sca / heartbeat_interval_ms: timing knobs,
            exactly as on :class:`~repro.cluster.scenarios.ElectionScenario`.
        latency / fault: declarative network condition specs.
        stabilize_ms: budget for electing the initial leader before the
            window opens.
        preserve_quorum: skip crash injections that would destroy the
            voting quorum.
        trace: keep the world trace (disable for large sweeps).
        telemetry: record per-episode observability counters -- including
            the documented ``workload.*`` names -- into
            ``measurement.extra["telemetry"]``.
        engine: simulation engine name; the empty string defers to the
            process default.
    """

    protocol: str
    cluster_size: int
    plan: ChaosPlan
    workload: str = "closed-loop"
    raft_timeout_range: tuple[Milliseconds, Milliseconds] = (1500.0, 3000.0)
    sca: ScaParameters = field(default_factory=lambda: ScaParameters(1500.0, 500.0))
    heartbeat_interval_ms: Milliseconds = 150.0
    latency_range: tuple[Milliseconds, Milliseconds] = (100.0, 200.0)
    latency: LatencySpec | None = None
    fault: FaultSpec | None = None
    stabilize_ms: Milliseconds = 120_000.0
    preserve_quorum: bool = True
    trace: bool = False
    telemetry: bool = False
    engine: str = ""

    def __post_init__(self) -> None:
        workload_specs.get(self.workload)
        self.election_scenario()

    def election_scenario(self) -> ElectionScenario:
        """The election-layer view of this condition (shared build path)."""
        return ElectionScenario(
            protocol=self.protocol,
            cluster_size=self.cluster_size,
            raft_timeout_range=self.raft_timeout_range,
            sca=self.sca,
            heartbeat_interval_ms=self.heartbeat_interval_ms,
            latency_range=self.latency_range,
            latency=self.latency,
            fault=self.fault,
            stabilize_ms=self.stabilize_ms,
            trace=self.trace,
            engine=self.engine,
        )

    def with_protocol(self, protocol: str) -> "ThroughputScenario":
        """The same condition for a different protocol (paired comparison)."""
        return replace(self, protocol=protocol)

    def with_engine(self, engine: str) -> "ThroughputScenario":
        """The same condition on a different simulation engine."""
        return replace(self, engine=engine)

    def with_telemetry(self, enabled: bool = True) -> "ThroughputScenario":
        """The same condition with per-episode telemetry toggled."""
        return replace(self, telemetry=enabled)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run(self, seed: int) -> WorkloadMeasurement:
        """Run one measured serving episode.

        The window opens after the initial leader stabilises and spans
        exactly ``plan.horizon_ms`` of simulated time.  With
        ``telemetry=True`` the measurement's ``extra["telemetry"]``
        additionally carries the episode's observability snapshot.
        """
        measurement, _ = self._run_measured(seed)
        return measurement

    def run_traced(self, seed: int) -> tuple[WorkloadMeasurement, tuple]:
        """Run one episode with tracing forced on; returns the trace too."""
        traced = self if self.trace else replace(self, trace=True)
        measurement, cluster = traced._run_measured(seed)
        return measurement, cluster.world.tracer.records

    def _run_measured(
        self, seed: int
    ) -> tuple[WorkloadMeasurement, "SimulatedCluster"]:
        registry = MetricsRegistry() if self.telemetry else None
        observer = AvailabilityObserver()
        listeners: tuple = (observer,)
        if registry is not None:
            listeners = (observer, TelemetryListener(registry))
        cluster, harness = self.election_scenario().build(
            seed, extra_listeners=listeners
        )
        cluster.start_all()
        harness.stabilize(max_time_ms=self.stabilize_ms)

        start_ms = cluster.world.now()
        observer.begin(cluster, start_ms)

        # A quorum-aware selector: requests during a partition count as
        # dropped at the client instead of landing on a stale leader that
        # can never acknowledge them.
        workload = WorkloadDriver(
            cluster,
            self.workload,
            seed=seed,
            leader_selector=lambda: quorum_leader(cluster),
        )
        workload.start()

        driver = ChaosDriver(
            cluster,
            self.plan,
            observer=observer,
            preserve_quorum=self.preserve_quorum,
        )
        driver.start()
        harness.run_for(self.plan.horizon_ms)

        end_ms = cluster.world.now()
        report = observer.finalize(end_ms)
        workload.finalize()
        harness.assert_at_most_one_leader_per_term()

        measurement = WorkloadMeasurement(
            protocol=cluster.protocol,
            cluster_size=self.cluster_size,
            seed=seed,
            plan=self.plan.name,
            workload=self.workload,
            window_ms=report.end_ms - report.start_ms,
            proposed=workload.proposed,
            committed=workload.committed,
            retries=workload.retries,
            dropped=workload.dropped,
            rejected=workload.rejected,
            lost=workload.lost,
            outage_count=len(report.leaderless_intervals),
            leaderless_ms=report.leaderless_ms,
            latencies_ms=workload.latencies_ms,
            extra={
                "plan_events": self.plan.event_count,
                "applied_injections": len(driver.applied),
                "skipped_injections": len(driver.skipped),
            },
        )
        if registry is not None:
            harvest_cluster(cluster, registry)
            harvest_chaos(driver, registry)
            harvest_workload(workload, registry)
            measurement.extra["telemetry"] = registry.snapshot().to_state()
        return measurement, cluster

"""The workload registry: named, frozen client-traffic shapes.

The election experiments measure how fast a cluster finds a leader; what a
user feels is how commit latency and goodput behave *while* it does.  A
:class:`WorkloadSpec` captures one client-traffic shape -- closed-loop clients
with think time, or an open-loop arrival process -- together with a keyspace
model and a value-size model, as a frozen, hashable, picklable value.  Like
the protocol/engine/chaos registries, workloads are registered by name so the
``throughput`` experiment, the CLI and the benchmarks all select them the
same way, and every registered value is enumerated by ``repro.lint``'s S1
spec-purity rule through :func:`registered_specs`.

A spec is *resolved* against a live cluster by
:class:`repro.workload.driver.WorkloadDriver`; this module is pure data.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError
from repro.common.types import Milliseconds

__all__ = [
    "KeyspaceSpec",
    "ValueSizeSpec",
    "WorkloadSpec",
    "get",
    "is_registered",
    "legacy_interval",
    "names",
    "register",
    "registered_specs",
]

#: The closed-loop / open-loop / legacy driver modes a spec may select.
MODES: tuple[str, ...] = ("closed", "open", "legacy-interval")

#: Open-loop arrival processes.
ARRIVALS: tuple[str, ...] = ("poisson", "uniform", "burst")

#: Key-selection models.
KEY_MODES: tuple[str, ...] = ("round-robin", "uniform", "hotspot")

#: Value-size models.
VALUE_MODES: tuple[str, ...] = ("fixed", "uniform")


@dataclass(frozen=True)
class KeyspaceSpec:
    """How clients pick keys.

    ``round-robin`` cycles deterministically through the keyspace (the shape
    of the legacy :class:`~repro.cluster.workload.ClientWorkload`);
    ``uniform`` samples keys uniformly; ``hotspot`` sends ``hot_share`` of
    the traffic to the hottest ``hot_fraction`` of the keys (a YCSB-style
    skew).
    """

    keys: int = 16
    mode: str = "round-robin"
    hot_fraction: float = 0.1
    hot_share: float = 0.9

    def __post_init__(self) -> None:
        if self.mode not in KEY_MODES:
            raise ConfigurationError(
                f"unknown keyspace mode {self.mode!r}; one of {KEY_MODES}"
            )
        if self.keys < 1:
            raise ConfigurationError(f"keyspace needs >= 1 key, got {self.keys}")
        if self.mode == "hotspot":
            if self.keys < 2:
                raise ConfigurationError("a hotspot keyspace needs >= 2 keys")
            if not 0.0 < self.hot_fraction < 1.0:
                raise ConfigurationError(
                    f"hot_fraction must be in (0, 1), got {self.hot_fraction}"
                )
            if not 0.0 < self.hot_share <= 1.0:
                raise ConfigurationError(
                    f"hot_share must be in (0, 1], got {self.hot_share}"
                )


@dataclass(frozen=True)
class ValueSizeSpec:
    """How large proposed values are (payload characters)."""

    mode: str = "fixed"
    size: int = 16
    min_size: int = 8
    max_size: int = 64

    def __post_init__(self) -> None:
        if self.mode not in VALUE_MODES:
            raise ConfigurationError(
                f"unknown value-size mode {self.mode!r}; one of {VALUE_MODES}"
            )
        if self.mode == "fixed" and self.size < 1:
            raise ConfigurationError(f"value size must be >= 1, got {self.size}")
        if self.mode == "uniform" and not 1 <= self.min_size <= self.max_size:
            raise ConfigurationError(
                f"need 1 <= min_size <= max_size, got "
                f"({self.min_size}, {self.max_size})"
            )


@dataclass(frozen=True)
class WorkloadSpec:
    """One named client-traffic shape.

    Attributes:
        name / description: registry identity and human summary.
        mode: ``"closed"`` (each of *clients* keeps at most one request in
            flight and thinks for an exponential ``think_time_ms`` between
            completions), ``"open"`` (requests arrive on an *arrival* process
            regardless of completions), or ``"legacy-interval"`` (the exact
            fixed-interval loop of the original
            :class:`~repro.cluster.workload.ClientWorkload`, kept so the
            fig11/avail reports stay byte-identical).
        clients: closed-loop client count.
        think_time_ms: mean exponential think time between a closed-loop
            client's completions.
        arrival: open-loop arrival process -- ``"poisson"`` (exponential
            gaps), ``"uniform"`` (fixed gaps) or ``"burst"`` (``burst_size``
            back-to-back arrivals every ``burst_interval_ms``).
        rate_per_s: open-loop mean arrival rate (poisson/uniform).
        burst_size / burst_interval_ms: burst-arrival shape.
        interval_ms: legacy fixed proposal period.
        max_retries: extra proposal attempts after a ``NotLeaderError``
            (the leader moved between lookup and proposal); the legacy mode
            never retries.
        retry_backoff_ms: delay before each retry attempt.
        request_timeout_ms: how long a closed-loop client waits for its
            in-flight request to commit before giving up and moving on (the
            request itself may still commit later and is accounted either
            way).
        keyspace / value_size: what the proposed commands look like.
    """

    name: str
    description: str = ""
    mode: str = "closed"
    clients: int = 4
    think_time_ms: Milliseconds = 200.0
    arrival: str = "poisson"
    rate_per_s: float = 20.0
    burst_size: int = 8
    burst_interval_ms: Milliseconds = 500.0
    interval_ms: Milliseconds = 250.0
    max_retries: int = 2
    retry_backoff_ms: Milliseconds = 50.0
    request_timeout_ms: Milliseconds = 4_000.0
    keyspace: KeyspaceSpec = KeyspaceSpec()
    value_size: ValueSizeSpec = ValueSizeSpec()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a workload spec needs a name")
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown workload mode {self.mode!r}; one of {MODES}"
            )
        if self.mode == "closed" and self.clients < 1:
            raise ConfigurationError(
                f"a closed-loop workload needs >= 1 client, got {self.clients}"
            )
        if self.mode == "closed" and self.think_time_ms <= 0:
            raise ConfigurationError(
                f"think_time_ms must be > 0, got {self.think_time_ms}"
            )
        if self.mode == "open":
            if self.arrival not in ARRIVALS:
                raise ConfigurationError(
                    f"unknown arrival process {self.arrival!r}; one of {ARRIVALS}"
                )
            if self.arrival in ("poisson", "uniform") and self.rate_per_s <= 0:
                raise ConfigurationError(
                    f"rate_per_s must be > 0, got {self.rate_per_s}"
                )
            if self.arrival == "burst" and (
                self.burst_size < 1 or self.burst_interval_ms <= 0
            ):
                raise ConfigurationError(
                    "a burst arrival needs burst_size >= 1 and "
                    "burst_interval_ms > 0"
                )
        if self.mode == "legacy-interval" and self.interval_ms <= 0:
            raise ConfigurationError(
                f"interval_ms must be > 0, got {self.interval_ms}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_ms < 0:
            raise ConfigurationError(
                f"retry_backoff_ms must be >= 0, got {self.retry_backoff_ms}"
            )
        if self.request_timeout_ms <= 0:
            raise ConfigurationError(
                f"request_timeout_ms must be > 0, got {self.request_timeout_ms}"
            )

    @property
    def tracked(self) -> bool:
        """Whether the driver tracks per-op commit outcomes for this spec."""
        return self.mode != "legacy-interval"


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    """Register *spec* under its name; returns it for assignment chaining.

    Raises:
        ConfigurationError: when the name is already taken (workloads are
            immutable conditions; redefinition is always a bug).
    """
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"workload {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> WorkloadSpec:
    """Look a workload up by name.

    Raises:
        ConfigurationError: naming the available workloads when *name* is
            unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {', '.join(_REGISTRY)}"
        ) from exc


def names() -> tuple[str, ...]:
    """Every registered workload name, in registration order."""
    return tuple(_REGISTRY)


def is_registered(name: str) -> bool:
    """Whether *name* is a registered workload."""
    return name in _REGISTRY


def registered_specs() -> tuple[tuple[str, WorkloadSpec], ...]:
    """``(name, spec)`` pairs for introspection tooling (``repro.lint`` S1)."""
    return tuple(_REGISTRY.items())


def legacy_interval(interval_ms: Milliseconds) -> WorkloadSpec:
    """The legacy fixed-interval workload at a scenario-chosen period."""
    return replace(get("legacy-interval"), interval_ms=interval_ms)


# --------------------------------------------------------------------------- #
# Built-in workloads
# --------------------------------------------------------------------------- #
register(
    WorkloadSpec(
        name="legacy-interval",
        description=(
            "The original ClientWorkload loop: one proposal every "
            "interval_ms, no retries, no per-op tracking (fig11/avail "
            "compatibility)."
        ),
        mode="legacy-interval",
        interval_ms=250.0,
        max_retries=0,
    )
)

register(
    WorkloadSpec(
        name="closed-loop",
        description=(
            "4 closed-loop clients, one request in flight each, 200 ms mean "
            "exponential think time."
        ),
        mode="closed",
        clients=4,
        think_time_ms=200.0,
    )
)

register(
    WorkloadSpec(
        name="open-poisson",
        description="Open-loop Poisson arrivals at 20 req/s.",
        mode="open",
        arrival="poisson",
        rate_per_s=20.0,
    )
)

register(
    WorkloadSpec(
        name="open-uniform",
        description="Open-loop fixed-gap arrivals at 20 req/s.",
        mode="open",
        arrival="uniform",
        rate_per_s=20.0,
    )
)

register(
    WorkloadSpec(
        name="open-burst",
        description=(
            "Open-loop bursts: 8 back-to-back arrivals every 500 ms "
            "(16 req/s mean, maximally bunched)."
        ),
        mode="open",
        arrival="burst",
        burst_size=8,
        burst_interval_ms=500.0,
        keyspace=KeyspaceSpec(mode="hotspot", keys=16),
    )
)

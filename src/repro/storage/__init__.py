"""Durable-state substrate: the replicated log and persistent server state.

Raft (and therefore ESCAPE) persists three things before answering any RPC:
the current term, the vote cast in that term, and the log.  This package
provides the log structure with Raft's up-to-date comparison and consistency
check, plus in-memory and file-backed persistent stores and a simple snapshot
facility for log compaction.
"""

from repro.storage.log import LogEntry, ReplicatedLog
from repro.storage.persistent import FileStore, InMemoryStore, PersistentState
from repro.storage.snapshot import Snapshot, SnapshotStore

__all__ = [
    "FileStore",
    "InMemoryStore",
    "LogEntry",
    "PersistentState",
    "ReplicatedLog",
    "Snapshot",
    "SnapshotStore",
]

"""The replicated log.

Raft's log is 1-indexed; index 0 denotes the empty-log sentinel with term 0.
The log exposes exactly the operations the protocol needs:

* append new entries (leader) or overwrite conflicting suffixes (follower);
* the *consistency check* used by AppendEntries (``matches(prev_index,
  prev_term)``);
* the *up-to-date comparison* used when granting votes (Section II-A,
  requirement 3): candidate logs are compared first by last term, then by
  last index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.common.errors import StorageError
from repro.common.types import LogIndex, Term


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One entry of the replicated log.

    Attributes:
        term: the leader term under which the entry was created.
        index: the entry's position in the log (1-based).
        command: the opaque state-machine command carried by the entry.
    """

    term: Term
    index: LogIndex
    command: Any = None

    def __post_init__(self) -> None:
        if self.term < 0:
            raise StorageError(f"entry term must be non-negative, got {self.term}")
        if self.index < 1:
            raise StorageError(f"entry index must be >= 1, got {self.index}")


class ReplicatedLog:
    """In-memory replicated log with Raft semantics."""

    def __init__(self, entries: Iterable[LogEntry] = ()) -> None:
        self._entries: list[LogEntry] = []
        # Tail cache, maintained by every mutation: the vote-granting
        # comparison runs once per RequestVote received, so the tail must not
        # cost a list index per read.
        self._last_index: LogIndex = 0
        self._last_term: Term = 0
        for entry in entries:
            self.append_entry(entry)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def last_index(self) -> LogIndex:
        """Index of the last entry, or 0 when the log is empty."""
        return self._last_index

    @property
    def last_term(self) -> Term:
        """Term of the last entry, or 0 when the log is empty."""
        return self._last_term

    def term_at(self, index: LogIndex) -> Term:
        """Term of the entry at *index*; index 0 is the sentinel with term 0.

        Raises:
            StorageError: if *index* is beyond the end of the log or negative.
        """
        if index == 0:
            return 0
        entry = self.entry_at(index)
        return entry.term

    def entry_at(self, index: LogIndex) -> LogEntry:
        """The entry stored at *index* (1-based)."""
        if index < 1 or index > self._last_index:
            raise StorageError(
                f"log index {index} out of range [1, {self._last_index}]"
            )
        entry = self._entries[index - 1]
        return entry

    def has_entry(self, index: LogIndex) -> bool:
        """Whether an entry exists at *index*."""
        return 1 <= index <= self._last_index

    def entries_from(
        self, start_index: LogIndex, limit: int | None = None
    ) -> list[LogEntry]:
        """Entries with index >= *start_index*, up to *limit* of them."""
        if start_index < 1:
            raise StorageError(f"start index must be >= 1, got {start_index}")
        selected = self._entries[start_index - 1 :]
        if limit is not None:
            selected = selected[:limit]
        return list(selected)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def append_entry(self, entry: LogEntry) -> None:
        """Append a pre-built entry; its index must be contiguous."""
        expected = self._last_index + 1
        if entry.index != expected:
            raise StorageError(
                f"non-contiguous append: expected index {expected}, got {entry.index}"
            )
        if self._entries and entry.term < self._last_term:
            raise StorageError(
                f"entry term {entry.term} is lower than the previous entry's term "
                f"{self._last_term}"
            )
        self._entries.append(entry)
        self._last_index = entry.index
        self._last_term = entry.term

    def append_command(self, term: Term, command: Any) -> LogEntry:
        """Create and append a new entry for *command* in *term* (leader path)."""
        entry = LogEntry(term=term, index=self._last_index + 1, command=command)
        self.append_entry(entry)
        return entry

    def truncate_from(self, index: LogIndex) -> int:
        """Delete every entry with index >= *index*.

        Returns:
            The number of entries removed.
        """
        if index < 1:
            raise StorageError(f"truncate index must be >= 1, got {index}")
        removed = max(0, self._last_index - index + 1)
        del self._entries[index - 1 :]
        if self._entries:
            tail = self._entries[-1]
            self._last_index = tail.index
            self._last_term = tail.term
        else:
            self._last_index = 0
            self._last_term = 0
        return removed

    def merge_entries(
        self, prev_index: LogIndex, entries: Sequence[LogEntry]
    ) -> bool:
        """Apply the AppendEntries merge rule for *entries* following *prev_index*.

        Existing entries that conflict (same index, different term) are removed
        together with everything after them; new entries are appended.  Entries
        that already match are left untouched (so a delayed, duplicated
        AppendEntries never truncates committed data).

        Returns:
            ``True`` if the log changed.
        """
        changed = False
        next_index = prev_index + 1
        for offset, entry in enumerate(entries):
            index = next_index + offset
            if entry.index != index:
                raise StorageError(
                    f"entry index {entry.index} does not match position {index}"
                )
            if self.has_entry(index):
                if self.term_at(index) == entry.term:
                    continue
                self.truncate_from(index)
                changed = True
            self.append_entry(entry)
            changed = True
        return changed

    # ------------------------------------------------------------------ #
    # Protocol predicates
    # ------------------------------------------------------------------ #
    def matches(self, prev_index: LogIndex, prev_term: Term) -> bool:
        """AppendEntries consistency check.

        True when this log contains an entry at *prev_index* whose term is
        *prev_term* (index 0 always matches).
        """
        if prev_index == 0:
            return True
        if not 1 <= prev_index <= self._last_index:
            return False
        return self._entries[prev_index - 1].term == prev_term

    def is_at_least_as_up_to_date_as(
        self, other_last_term: Term, other_last_index: LogIndex
    ) -> bool:
        """Raft's vote-granting log comparison, from this log's point of view.

        ``log_a`` is at least as up to date as ``log_b`` when its last term is
        higher, or the last terms are equal and its last index is >=.
        """
        last_term = self._last_term
        if last_term != other_last_term:
            return last_term > other_last_term
        return self._last_index >= other_last_index

    def candidate_is_acceptable(
        self, candidate_last_term: Term, candidate_last_index: LogIndex
    ) -> bool:
        """Whether a candidate with the given log tail may receive our vote."""
        last_term = self._last_term
        if candidate_last_term != last_term:
            return candidate_last_term > last_term
        return candidate_last_index >= self._last_index

    # ------------------------------------------------------------------ #
    # Dunder helpers
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicatedLog(len={len(self)}, last_index={self.last_index}, "
            f"last_term={self.last_term})"
        )

"""Persistent server state: current term, vote, and the log.

Raft requires ``currentTerm`` and ``votedFor`` to be persisted before a server
answers an RPC, and the log to be persisted before entries are acknowledged.
Two implementations are provided:

* :class:`InMemoryStore` -- used by the simulator, where "durability" only
  needs to survive the simulated crash/recover cycle of a node object;
* :class:`FileStore` -- a JSON-file-backed store for the asyncio runtime and
  for tests exercising recovery from disk.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Protocol, runtime_checkable

from repro.common.errors import StorageError
from repro.common.types import ServerId, Term
from repro.storage.log import LogEntry, ReplicatedLog


@runtime_checkable
class PersistentState(Protocol):
    """Interface of the durable state every server keeps."""

    def load_term(self) -> Term:  # pragma: no cover - protocol signature
        ...

    def load_voted_for(self) -> ServerId | None:  # pragma: no cover
        ...

    def save_term_and_vote(
        self, term: Term, voted_for: ServerId | None
    ) -> None:  # pragma: no cover
        ...

    def load_log(self) -> ReplicatedLog:  # pragma: no cover
        ...

    def save_log(self, log: ReplicatedLog) -> None:  # pragma: no cover
        ...


class InMemoryStore:
    """Durable state held in memory.

    Survives protocol-level restarts of a node object (the store outlives the
    node), which is exactly what the simulated crash/recover scenarios need.
    """

    def __init__(self) -> None:
        self._term: Term = 0
        self._voted_for: ServerId | None = None
        self._log = ReplicatedLog()
        self.save_count = 0

    def load_term(self) -> Term:
        return self._term

    def load_voted_for(self) -> ServerId | None:
        return self._voted_for

    def save_term_and_vote(self, term: Term, voted_for: ServerId | None) -> None:
        if term < self._term:
            raise StorageError(
                f"refusing to persist a lower term: {term} < {self._term}"
            )
        self._term = term
        self._voted_for = voted_for
        self.save_count += 1

    def load_log(self) -> ReplicatedLog:
        return self._log

    def save_log(self, log: ReplicatedLog) -> None:
        self._log = log
        self.save_count += 1


class FileStore:
    """JSON-file-backed durable state.

    Writes are atomic (write-to-temp-then-rename), so a crash mid-write never
    leaves a corrupt state file.  Log entries' commands must be
    JSON-serialisable.
    """

    def __init__(self, directory: str | os.PathLike[str], server_id: ServerId) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._state_path = self._directory / f"server-{server_id}-state.json"
        self._log_path = self._directory / f"server-{server_id}-log.json"
        self.save_count = 0

    # ------------------------------------------------------------------ #
    # Term and vote
    # ------------------------------------------------------------------ #
    def load_term(self) -> Term:
        return int(self._read_state().get("term", 0))

    def load_voted_for(self) -> ServerId | None:
        voted_for = self._read_state().get("voted_for")
        return None if voted_for is None else int(voted_for)

    def save_term_and_vote(self, term: Term, voted_for: ServerId | None) -> None:
        current = self.load_term()
        if term < current:
            raise StorageError(f"refusing to persist a lower term: {term} < {current}")
        self._atomic_write(
            self._state_path, {"term": int(term), "voted_for": voted_for}
        )
        self.save_count += 1

    # ------------------------------------------------------------------ #
    # Log
    # ------------------------------------------------------------------ #
    def load_log(self) -> ReplicatedLog:
        if not self._log_path.exists():
            return ReplicatedLog()
        try:
            raw = json.loads(self._log_path.read_text())
        except json.JSONDecodeError as exc:
            raise StorageError(f"corrupt log file {self._log_path}") from exc
        entries = [
            LogEntry(term=int(item["term"]), index=int(item["index"]), command=item["command"])
            for item in raw
        ]
        return ReplicatedLog(entries)

    def save_log(self, log: ReplicatedLog) -> None:
        payload = [
            {"term": entry.term, "index": entry.index, "command": entry.command}
            for entry in log
        ]
        self._atomic_write(self._log_path, payload)
        self.save_count += 1

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _read_state(self) -> dict[str, Any]:
        if not self._state_path.exists():
            return {}
        try:
            return json.loads(self._state_path.read_text())
        except json.JSONDecodeError as exc:
            raise StorageError(f"corrupt state file {self._state_path}") from exc

    def _atomic_write(self, path: Path, payload: Any) -> None:
        fd, tmp_name = tempfile.mkstemp(dir=str(self._directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

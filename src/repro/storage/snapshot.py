"""Snapshots for log compaction.

Leader election does not depend on snapshotting, but a production Raft-family
library needs it so long-running clusters do not grow their logs without
bound.  The snapshot captures the state machine's serialised state together
with the last included index/term; the log can then be compacted up to that
index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import StorageError
from repro.common.types import LogIndex, Term
from repro.storage.log import LogEntry, ReplicatedLog


@dataclass(frozen=True)
class Snapshot:
    """A point-in-time capture of the applied state machine.

    Attributes:
        last_included_index: index of the last log entry reflected in *state*.
        last_included_term: term of that entry.
        state: opaque, serialisable state-machine snapshot.
    """

    last_included_index: LogIndex
    last_included_term: Term
    state: Any

    def __post_init__(self) -> None:
        if self.last_included_index < 0:
            raise StorageError("snapshot index must be non-negative")
        if self.last_included_term < 0:
            raise StorageError("snapshot term must be non-negative")


class SnapshotStore:
    """Keeps the most recent snapshot and compacts logs against it."""

    def __init__(self) -> None:
        self._snapshot: Snapshot | None = None

    @property
    def latest(self) -> Snapshot | None:
        """The most recently installed snapshot, if any."""
        return self._snapshot

    def install(self, snapshot: Snapshot) -> None:
        """Install a snapshot; it must not move backwards."""
        if (
            self._snapshot is not None
            and snapshot.last_included_index < self._snapshot.last_included_index
        ):
            raise StorageError(
                "snapshot would move backwards: "
                f"{snapshot.last_included_index} < {self._snapshot.last_included_index}"
            )
        self._snapshot = snapshot

    def compact(self, log: ReplicatedLog) -> ReplicatedLog:
        """Return a new log containing only entries after the snapshot point.

        The returned log is re-indexed from the snapshot boundary: entries keep
        their original indexes, and the snapshot's ``last_included_index`` acts
        as the new sentinel.  When no snapshot is installed the log is returned
        unchanged.
        """
        if self._snapshot is None:
            return log
        boundary = self._snapshot.last_included_index
        remaining = [entry for entry in log if entry.index > boundary]
        compacted = ReplicatedLog()
        # Rebuild preserving original indexes by appending in order; the new
        # log object starts empty, so we must translate contiguity: we keep the
        # original entries but validate they are contiguous after the boundary.
        expected = boundary + 1
        for entry in remaining:
            if entry.index != expected:
                raise StorageError(
                    f"log has a gap after snapshot boundary: expected {expected}, "
                    f"got {entry.index}"
                )
            expected += 1
        # ReplicatedLog enforces indexes starting at 1, so the compacted view
        # is represented as a CompactedLog wrapper below when a boundary exists.
        if boundary == 0:
            for entry in remaining:
                compacted.append_entry(entry)
            return compacted
        return _rebase_entries(boundary, remaining)


def _rebase_entries(boundary: LogIndex, entries: list[LogEntry]) -> ReplicatedLog:
    """Build a log whose entries are re-indexed to start at 1 after *boundary*.

    The mapping is recorded on each entry's command payload position only by
    index arithmetic: callers that use snapshots must translate indexes by
    adding the snapshot boundary.  This mirrors how real Raft implementations
    keep a ``firstIndex`` offset.
    """
    rebased = ReplicatedLog()
    for offset, entry in enumerate(entries, start=1):
        rebased.append_entry(
            LogEntry(term=entry.term, index=offset, command=entry.command)
        )
    return rebased

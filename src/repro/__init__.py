"""repro -- a full Python reproduction of "ESCAPE to Precaution against Leader
Failures" (Zhang & Jacobsen, ICDCS 2022).

The package is organised in layers (see DESIGN.md for the full inventory):

* substrates -- :mod:`repro.sim` (discrete-event kernel), :mod:`repro.net`
  (latency / loss / partitions), :mod:`repro.storage` (replicated log,
  persistence), :mod:`repro.statemachine` (replicated state machines);
* protocols -- :mod:`repro.raft` (baseline Raft), :mod:`repro.escape` (the
  paper's contribution: SCA + PPF + configuration clock), :mod:`repro.zraft`
  (ZooKeeper-style static priorities), all dispatched through the plugin
  registry in :mod:`repro.protocols` (which also registers the deterministic
  baselines ``raft-fixed``/``raft-stagger`` and the ``escape-noppf``
  ablation variant);
* harnesses -- :mod:`repro.cluster` (simulated clusters, fault scenarios,
  election measurement), :mod:`repro.runtime` (asyncio real-time runtime),
  :mod:`repro.metrics`, :mod:`repro.analysis`, :mod:`repro.experiments`
  (one module per paper figure).

Quick start::

    from repro.cluster import ElectionScenario

    scenario = ElectionScenario(protocol="escape", cluster_size=8)
    measurement = scenario.run(seed=1)
    print(measurement.total_ms, measurement.split_vote)
"""

from repro.common import (
    ClusterConfig,
    ProtocolConfig,
    RaftTimeoutConfig,
    ScaParameters,
    SeedSequence,
)
from repro.escape import Configuration, EscapeNode, EscapeNoPpfNode
from repro.raft import RaftNode, Role
from repro.zraft import ZRaftNode
from repro import protocols
from repro.protocols import ProtocolSpec

__version__ = "1.1.0"

__all__ = [
    "ClusterConfig",
    "Configuration",
    "EscapeNoPpfNode",
    "EscapeNode",
    "ProtocolConfig",
    "ProtocolSpec",
    "RaftNode",
    "RaftTimeoutConfig",
    "Role",
    "ScaParameters",
    "SeedSequence",
    "ZRaftNode",
    "protocols",
    "__version__",
]

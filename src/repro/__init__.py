"""repro -- a full Python reproduction of "ESCAPE to Precaution against Leader
Failures" (Zhang & Jacobsen, ICDCS 2022).

The package is organised in layers (see DESIGN.md for the full inventory):

* substrates -- :mod:`repro.sim` (discrete-event kernel), :mod:`repro.net`
  (latency / loss / partitions), :mod:`repro.storage` (replicated log,
  persistence), :mod:`repro.statemachine` (replicated state machines);
* protocols -- :mod:`repro.raft` (baseline Raft), :mod:`repro.escape` (the
  paper's contribution: SCA + PPF + configuration clock), :mod:`repro.zraft`
  (ZooKeeper-style static priorities);
* harnesses -- :mod:`repro.cluster` (simulated clusters, fault scenarios,
  election measurement), :mod:`repro.runtime` (asyncio real-time runtime),
  :mod:`repro.metrics`, :mod:`repro.analysis`, :mod:`repro.experiments`
  (one module per paper figure).

Quick start::

    from repro.cluster import ElectionScenario

    scenario = ElectionScenario(protocol="escape", cluster_size=8)
    measurement = scenario.run(seed=1)
    print(measurement.total_ms, measurement.split_vote)
"""

from repro.common import (
    ClusterConfig,
    ProtocolConfig,
    RaftTimeoutConfig,
    ScaParameters,
    SeedSequence,
)
from repro.escape import Configuration, EscapeNode
from repro.raft import RaftNode, Role
from repro.zraft import ZRaftNode

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "Configuration",
    "EscapeNode",
    "ProtocolConfig",
    "RaftNode",
    "RaftTimeoutConfig",
    "Role",
    "ScaParameters",
    "SeedSequence",
    "ZRaftNode",
    "__version__",
]

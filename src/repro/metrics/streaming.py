"""Mergeable streaming aggregates for memory-bounded sweeps.

The batch measurement path (:class:`~repro.metrics.records.MeasurementSet` +
:func:`~repro.metrics.stats.summarize`) keeps every episode in memory, which
makes million-run sweeps O(runs) in the parent process.  This module provides
the streaming alternative: small, *mergeable* accumulators that workers fill
chunk by chunk and the sweep engine folds together, so parent memory is
O(labels) regardless of how many episodes ran.

Three layers:

* :class:`StreamingSummary` -- count/mean/M2 moments (Welford updates, Chan
  parallel merge), exact min/max, and a :class:`MergeableCDF` for the order
  statistics.
* :class:`MergeableCDF` -- a sorted-sample sketch that is **exact** while the
  observation count stays at or below its capacity (merging sorted blocks
  loses nothing), and compresses deterministically to an equi-depth grid of
  representatives beyond it.
* :class:`ElectionAggregate` -- the per-label election accumulator the sweep
  engine ships across the process boundary: episode/convergence/split-vote
  counters plus streaming summaries of the total/detection/election periods.

Exactness contract (pinned by ``tests/property/test_streaming_equivalence.py``):
as long as a summary has seen at most ``capacity`` values, any chunking and
any merge order produce **bit-identical** results to the batch
:func:`~repro.metrics.stats.summarize` /
:func:`~repro.metrics.stats.cumulative_distribution` path on the same values.
The paper-scale experiments (<= a few thousand runs per label) therefore get
the streaming engine's memory bounds for free, without changing a single
reported digit; only beyond the capacity do percentiles become (still
deterministic) equi-depth approximations while count/mean/std/min/max stay
exact up to float accumulation.

Every accumulator serialises to plain JSON-able state (``to_state`` /
``from_state``), which is what the sweep checkpoint persists; floats
round-trip exactly through ``json`` (shortest-repr), so a resumed sweep is
bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Mapping, Sequence

from repro.common.errors import ClusterError
from repro.metrics.records import ElectionMeasurement
from repro.metrics.stats import (
    SummaryStatistics,
    _percentile_sorted,
    cumulative_distribution,
    summarize,
)

__all__ = [
    "DEFAULT_CDF_CAPACITY",
    "ElectionAggregate",
    "MergeableCDF",
    "StreamingSummary",
]

#: Observations a :class:`MergeableCDF` holds exactly before compressing.
#: Large enough that every paper-scale sweep (and the fig9-xl defaults) stays
#: in the bit-exact regime; small enough that a million-run sweep's parent
#: footprint stays bounded.
DEFAULT_CDF_CAPACITY = 8192


class MergeableCDF:
    """A mergeable sketch of a sample's order statistics.

    Exact while ``count <= capacity``: the sketch simply keeps the sorted
    observations, so merging is a lossless sorted-list merge and every
    percentile/CDF query delegates to the batch helpers in
    :mod:`repro.metrics.stats`.  Past the capacity it compresses to
    ``capacity // 2`` equi-depth representatives (actual observed values at
    evenly spaced weighted ranks -- never interpolated ghosts), which keeps
    memory O(capacity) and stays fully deterministic: the same add/merge
    sequence always yields the same state.
    """

    __slots__ = ("capacity", "_values", "_points", "_points_count")

    def __init__(self, capacity: int = DEFAULT_CDF_CAPACITY) -> None:
        if capacity < 4:
            raise ClusterError(f"CDF capacity must be >= 4, got {capacity}")
        self.capacity = capacity
        #: Exact observations not yet folded into the compressed grid (sorted).
        self._values: list[float] = []
        #: Compressed representatives (sorted), or ``None`` while exact.
        self._points: list[float] | None = None
        #: How many observations the compressed representatives stand for.
        self._points_count: int = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Total observations the sketch has absorbed."""
        return len(self._values) + self._points_count

    @property
    def exact(self) -> bool:
        """Whether the sketch still holds every observation losslessly."""
        return self._points is None

    def values(self) -> list[float]:
        """The exact sorted observations (only available while exact)."""
        if not self.exact:
            raise ClusterError(
                "sketch compressed beyond its capacity; exact values are gone"
            )
        return list(self._values)

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    def add(self, value: float) -> None:
        """Absorb one observation."""
        if not math.isfinite(value):
            raise ClusterError(f"cannot sketch non-finite value {value!r}")
        bisect.insort(self._values, value)
        if len(self._values) > self.capacity:
            self._compress()

    def merge(self, other: "MergeableCDF") -> None:
        """Fold *other* into this sketch (the mergeable-partial operation)."""
        if other.capacity != self.capacity:
            raise ClusterError(
                f"cannot merge sketches of capacity {self.capacity} and "
                f"{other.capacity}"
            )
        self._values = _merge_sorted(self._values, other._values)
        if other._points is not None:
            if self._points is None:
                self._points = list(other._points)
                self._points_count = other._points_count
            else:
                self._fold_points(other._points, other._points_count)
        if len(self._values) > self.capacity:
            self._compress()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0-100); exact while under capacity."""
        if self.count == 0:
            raise ClusterError("cannot take a percentile of an empty sketch")
        return _percentile_sorted(self._support(), q)

    def cumulative_distribution(self) -> list[tuple[float, float]]:
        """The (approximate beyond capacity) empirical CDF of the sample.

        While exact this is byte-identical to
        :func:`repro.metrics.stats.cumulative_distribution` on the same
        values.
        """
        if self.exact:
            return cumulative_distribution(self._values)
        support = self._support()
        n = len(support)
        return [(value, (index + 1) / n) for index, value in enumerate(support)]

    def _support(self) -> list[float]:
        """The sorted point set queries read from (folds any exact buffer)."""
        if self.exact:
            return self._values
        if self._values:
            # Fold the buffered exact adds into the grid so queries see one
            # canonical support; folding is part of the deterministic state.
            self._fold_points([], 0)
        assert self._points is not None
        return self._points

    # ------------------------------------------------------------------ #
    # Compression
    # ------------------------------------------------------------------ #
    def _compress(self) -> None:
        """First transition past the capacity: exact buffer -> grid."""
        if self._points is None:
            count = len(self._values)
            self._points = _resample_weighted(
                [(value, 1.0) for value in self._values],
                float(count),
                max(2, self.capacity // 2),
            )
            self._points_count = count
            self._values = []
        else:
            self._fold_points([], 0)

    def _fold_points(self, other_points: Sequence[float], other_count: int) -> None:
        """Re-grid: current grid + exact buffer + another grid -> one grid."""
        assert self._points is not None
        weighted: list[tuple[float, float]] = []
        if self._points:
            weight = self._points_count / len(self._points)
            weighted.extend((point, weight) for point in self._points)
        if other_points:
            weight = other_count / len(other_points)
            weighted.extend((point, weight) for point in other_points)
        weighted.extend((value, 1.0) for value in self._values)
        weighted.sort(key=lambda pair: pair[0])
        total = float(self._points_count + other_count + len(self._values))
        self._points = _resample_weighted(
            weighted, total, max(2, self.capacity // 2)
        )
        self._points_count = int(total)
        self._values = []

    # ------------------------------------------------------------------ #
    # Equality / serialisation
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MergeableCDF):
            return NotImplemented
        return (
            self.capacity == other.capacity
            and self._values == other._values
            and self._points == other._points
            and self._points_count == other._points_count
        )

    def __repr__(self) -> str:
        mode = "exact" if self.exact else "compressed"
        return f"MergeableCDF(count={self.count}, {mode}, capacity={self.capacity})"

    def to_state(self) -> dict[str, object]:
        """JSON-able snapshot (floats round-trip exactly through ``json``)."""
        return {
            "capacity": self.capacity,
            "values": list(self._values),
            "points": None if self._points is None else list(self._points),
            "points_count": self._points_count,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "MergeableCDF":
        """Rebuild a sketch from :meth:`to_state` output."""
        sketch = cls(capacity=int(state["capacity"]))  # type: ignore[arg-type]
        sketch._values = [float(value) for value in state["values"]]  # type: ignore[union-attr]
        points = state["points"]
        sketch._points = (
            None if points is None else [float(point) for point in points]  # type: ignore[union-attr]
        )
        sketch._points_count = int(state["points_count"])  # type: ignore[arg-type]
        return sketch


def _merge_sorted(left: list[float], right: list[float]) -> list[float]:
    """Merge two sorted lists (classic two-pointer; stable for ties)."""
    if not left:
        return list(right)
    if not right:
        return list(left)
    merged: list[float] = []
    i = j = 0
    while i < len(left) and j < len(right):
        if right[j] < left[i]:
            merged.append(right[j])
            j += 1
        else:
            merged.append(left[i])
            i += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged


def _resample_weighted(
    weighted: Sequence[tuple[float, float]], total_weight: float, m: int
) -> list[float]:
    """*m* equi-depth representatives of a sorted weighted sample.

    Representative *k* is the observed value whose cumulative-weight interval
    contains rank ``(k + 0.5) / m * total_weight`` -- pure deterministic float
    arithmetic, and every representative is a value that was actually
    observed.
    """
    representatives: list[float] = []
    index = 0
    cumulative = 0.0
    for k in range(m):
        target = (k + 0.5) / m * total_weight
        while (
            index < len(weighted) - 1
            and cumulative + weighted[index][1] < target
        ):
            cumulative += weighted[index][1]
            index += 1
        representatives.append(weighted[index][0])
    return representatives


class StreamingSummary:
    """Mergeable summary statistics over a stream of values.

    Maintains exact count/min/max, Welford mean/M2 moments (merged with
    Chan's parallel formula), and a :class:`MergeableCDF` for the order
    statistics.  While the CDF is still exact, :meth:`summary` delegates to
    the batch :func:`repro.metrics.stats.summarize` on the retained values --
    **bit-identical** to summarising the same values in memory; beyond the
    capacity it reads mean/std from the merged moments and percentiles from
    the compressed grid.
    """

    __slots__ = ("count", "_mean", "_m2", "_min", "_max", "cdf")

    def __init__(self, capacity: int = DEFAULT_CDF_CAPACITY) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self.cdf = MergeableCDF(capacity=capacity)

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    def add(self, value: float) -> None:
        """Absorb one observation (Welford update)."""
        value = float(value)
        self.cdf.add(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "StreamingSummary") -> None:
        """Fold *other* in (Chan's parallel moment merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            self.cdf.merge(other.cdf)
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / combined
        )
        self._mean += delta * other.count / combined
        self.count = combined
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self.cdf.merge(other.cdf)

    def extend(self, values: Iterable[float]) -> "StreamingSummary":
        """Absorb many observations; returns self for chaining."""
        for value in values:
            self.add(value)
        return self

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def mean(self) -> float:
        """The running mean (exact-regime queries prefer :meth:`summary`)."""
        if self.count == 0:
            raise ClusterError("cannot take the mean of an empty summary")
        return self.summary().mean if self.cdf.exact else self._mean

    @property
    def minimum(self) -> float:
        if self.count == 0:
            raise ClusterError("empty summary has no minimum")
        return self._min

    @property
    def maximum(self) -> float:
        if self.count == 0:
            raise ClusterError("empty summary has no maximum")
        return self._max

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (exact while under capacity)."""
        return self.cdf.percentile(q)

    def cumulative_distribution(self) -> list[tuple[float, float]]:
        """The (sketched) empirical CDF; exact while under capacity."""
        return self.cdf.cumulative_distribution()

    def summary(self) -> SummaryStatistics:
        """The :class:`SummaryStatistics` of everything absorbed so far.

        Exact regime: delegates to the batch ``summarize`` on the retained
        sorted values, so the result is bit-identical to the in-memory path.
        Compressed regime: count/min/max are exact, mean/std come from the
        merged moments, percentiles from the equi-depth grid.
        """
        if self.count == 0:
            raise ClusterError("cannot summarize an empty streaming summary")
        if self.cdf.exact:
            return summarize(self.cdf.values())
        variance = self._m2 / (self.count - 1) if self.count > 1 else 0.0
        return SummaryStatistics(
            count=self.count,
            mean=self._mean,
            median=self.cdf.percentile(50.0),
            p95=self.cdf.percentile(95.0),
            p99=self.cdf.percentile(99.0),
            minimum=self._min,
            maximum=self._max,
            std_dev=math.sqrt(max(0.0, variance)),
        )

    # ------------------------------------------------------------------ #
    # Equality / serialisation
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        """Observable-state equality.

        Count, min, max and the CDF sketch compare exactly (bit-identical in
        the exact regime).  The auxiliary Welford moments compare with a
        tight relative tolerance: merging partials legitimately reassociates
        the float sums, so two summaries over the same values can differ in
        the last ulps of ``mean``/``M2`` while every statistic they *report*
        in the exact regime is identical (``summary()`` delegates to the
        retained values there).  Bit-level state comparisons (the
        checkpoint-resume tests) go through :meth:`to_state` instead.
        """
        if not isinstance(other, StreamingSummary):
            return NotImplemented
        return (
            self.count == other.count
            and math.isclose(
                self._mean, other._mean, rel_tol=1e-9, abs_tol=1e-9
            )
            and math.isclose(self._m2, other._m2, rel_tol=1e-9, abs_tol=1e-6)
            and self._min == other._min
            and self._max == other._max
            and self.cdf == other.cdf
        )

    def __repr__(self) -> str:
        return f"StreamingSummary(count={self.count})"

    def to_state(self) -> dict[str, object]:
        """JSON-able snapshot (empty summaries omit the infinite min/max)."""
        state: dict[str, object] = {
            "count": self.count,
            "mean": self._mean,
            "m2": self._m2,
            "cdf": self.cdf.to_state(),
        }
        if self.count:
            state["min"] = self._min
            state["max"] = self._max
        return state

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "StreamingSummary":
        """Rebuild a summary from :meth:`to_state` output."""
        summary = cls.__new__(cls)
        summary.count = int(state["count"])  # type: ignore[arg-type]
        summary._mean = float(state["mean"])  # type: ignore[arg-type]
        summary._m2 = float(state["m2"])  # type: ignore[arg-type]
        summary._min = float(state["min"]) if summary.count else math.inf  # type: ignore[arg-type]
        summary._max = float(state["max"]) if summary.count else -math.inf  # type: ignore[arg-type]
        summary.cdf = MergeableCDF.from_state(state["cdf"])  # type: ignore[arg-type]
        return summary


class ElectionAggregate:
    """Per-label mergeable aggregate of election measurements.

    The streaming sweep's counterpart of
    :class:`~repro.metrics.records.MeasurementSet`: workers fill one per label
    per chunk, the parent merges them in chunk order, and the result answers
    exactly the questions the figure reports ask (mean/max/percentiles of the
    converged election times, split-vote and convergence fractions) without
    ever retaining an episode record.

    Mirroring the batch path, the period summaries cover **converged** runs
    only (``MeasurementSet.totals_ms`` filters the same way), while the
    episode/split-vote counters cover every run.
    """

    __slots__ = (
        "label",
        "runs",
        "converged",
        "split_votes",
        "campaigns",
        "total_ms",
        "detection_ms",
        "election_ms",
    )

    def __init__(
        self, label: str = "", capacity: int = DEFAULT_CDF_CAPACITY
    ) -> None:
        self.label = label
        self.runs = 0
        self.converged = 0
        self.split_votes = 0
        self.campaigns = 0
        self.total_ms = StreamingSummary(capacity=capacity)
        self.detection_ms = StreamingSummary(capacity=capacity)
        self.election_ms = StreamingSummary(capacity=capacity)

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    def add(self, measurement: ElectionMeasurement) -> None:
        """Absorb one episode's measurement."""
        self.runs += 1
        self.campaigns += measurement.campaign_count
        if measurement.split_vote:
            self.split_votes += 1
        if measurement.converged:
            self.converged += 1
            self.total_ms.add(measurement.total_ms)
            self.detection_ms.add(measurement.detection_ms)
            self.election_ms.add(measurement.election_ms)

    def merge(self, other: "ElectionAggregate") -> None:
        """Fold another partial aggregate for the same label in."""
        if other.label and self.label and other.label != self.label:
            raise ClusterError(
                f"cannot merge aggregate for {other.label!r} into {self.label!r}"
            )
        self.runs += other.runs
        self.converged += other.converged
        self.split_votes += other.split_votes
        self.campaigns += other.campaigns
        self.total_ms.merge(other.total_ms)
        self.detection_ms.merge(other.detection_ms)
        self.election_ms.merge(other.election_ms)

    @classmethod
    def from_measurements(
        cls,
        measurements: Iterable[ElectionMeasurement],
        label: str = "",
        capacity: int = DEFAULT_CDF_CAPACITY,
    ) -> "ElectionAggregate":
        """Aggregate an in-memory measurement collection (the batch bridge)."""
        aggregate = cls(label=label, capacity=capacity)
        for measurement in measurements:
            aggregate.add(measurement)
        return aggregate

    # ------------------------------------------------------------------ #
    # Queries (MeasurementSet-compatible where the reports need it)
    # ------------------------------------------------------------------ #
    def split_vote_fraction(self) -> float:
        """Fraction of runs with at least one split vote."""
        return self.split_votes / self.runs if self.runs else 0.0

    def convergence_fraction(self) -> float:
        """Fraction of runs that elected a leader within the budget."""
        return self.converged / self.runs if self.runs else 0.0

    def mean_campaigns(self) -> float:
        """Average campaign count per run."""
        if not self.runs:
            raise ClusterError(f"no runs in aggregate {self.label!r}")
        return self.campaigns / self.runs

    def mean_total_ms(self) -> float:
        """Average total election time over converged runs."""
        if not self.converged:
            raise ClusterError(f"no converged runs in aggregate {self.label!r}")
        return self.total_ms.summary().mean

    def total_summary(self) -> SummaryStatistics:
        """Summary statistics of the converged total election times."""
        if not self.converged:
            raise ClusterError(f"no converged runs in aggregate {self.label!r}")
        return self.total_ms.summary()

    def total_cdf(self) -> list[tuple[float, float]]:
        """The (sketched) CDF of the converged total election times."""
        return self.total_ms.cumulative_distribution()

    def __len__(self) -> int:
        return self.runs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ElectionAggregate):
            return NotImplemented
        return (
            self.label == other.label
            and self.runs == other.runs
            and self.converged == other.converged
            and self.split_votes == other.split_votes
            and self.campaigns == other.campaigns
            and self.total_ms == other.total_ms
            and self.detection_ms == other.detection_ms
            and self.election_ms == other.election_ms
        )

    def __repr__(self) -> str:
        return (
            f"ElectionAggregate(label={self.label!r}, runs={self.runs}, "
            f"converged={self.converged})"
        )

    # ------------------------------------------------------------------ #
    # Serialisation (the checkpoint format)
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict[str, object]:
        """JSON-able snapshot used by the sweep checkpoint."""
        return {
            "label": self.label,
            "runs": self.runs,
            "converged": self.converged,
            "split_votes": self.split_votes,
            "campaigns": self.campaigns,
            "total_ms": self.total_ms.to_state(),
            "detection_ms": self.detection_ms.to_state(),
            "election_ms": self.election_ms.to_state(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "ElectionAggregate":
        """Rebuild an aggregate from :meth:`to_state` output."""
        aggregate = cls.__new__(cls)
        aggregate.label = str(state["label"])
        aggregate.runs = int(state["runs"])  # type: ignore[arg-type]
        aggregate.converged = int(state["converged"])  # type: ignore[arg-type]
        aggregate.split_votes = int(state["split_votes"])  # type: ignore[arg-type]
        aggregate.campaigns = int(state["campaigns"])  # type: ignore[arg-type]
        aggregate.total_ms = StreamingSummary.from_state(state["total_ms"])  # type: ignore[arg-type]
        aggregate.detection_ms = StreamingSummary.from_state(state["detection_ms"])  # type: ignore[arg-type]
        aggregate.election_ms = StreamingSummary.from_state(state["election_ms"])  # type: ignore[arg-type]
        return aggregate

"""Statistics helpers: CDFs, percentiles, summaries, baseline reductions."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import ClusterError


def cumulative_distribution(values: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF of *values* as ``(value, cumulative_fraction)`` pairs.

    This is the series plotted by Figures 3 and 9 of the paper ("cumulative
    percent" of the leader-election-time distribution).
    """
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def fraction_at_or_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of *values* that are <= *threshold* (a point on the CDF)."""
    if not values:
        return 0.0
    return sum(1 for value in values if value <= threshold) / len(values)


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0-100) using linear interpolation."""
    if not values:
        raise ClusterError("cannot take a percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ClusterError(f"percentile must be in [0, 100], got {q}")
    return _percentile_sorted(sorted(values), q)


def _percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """:func:`percentile` over an already-sorted, non-empty sequence."""
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class SummaryStatistics:
    """Summary of a sample of election times (or any positive metric)."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    minimum: float
    maximum: float
    std_dev: float

    def describe(self, unit: str = "ms") -> str:
        """One-line human readable summary."""
        return (
            f"n={self.count} mean={self.mean:.1f}{unit} p50={self.median:.1f}{unit} "
            f"p95={self.p95:.1f}{unit} p99={self.p99:.1f}{unit} "
            f"min={self.minimum:.1f}{unit} max={self.maximum:.1f}{unit}"
        )


def summarize(values: Sequence[float]) -> SummaryStatistics:
    """Compute :class:`SummaryStatistics` for *values*.

    The sample is sorted once and every order statistic (median, tail
    percentiles, min, max) reads from that one sorted copy.  ``std_dev`` is
    the *sample* standard deviation (the unbiased n-1 estimator): the runs
    being summarized are a sample of the election-time distribution, not the
    whole population.  A single-element sample has ``std_dev == 0.0``.
    """
    if not values:
        raise ClusterError("cannot summarize an empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    if n > 1:
        variance = sum((value - mean) ** 2 for value in ordered) / (n - 1)
    else:
        variance = 0.0
    return SummaryStatistics(
        count=n,
        mean=mean,
        median=_percentile_sorted(ordered, 50.0),
        p95=_percentile_sorted(ordered, 95.0),
        p99=_percentile_sorted(ordered, 99.0),
        minimum=ordered[0],
        maximum=ordered[-1],
        std_dev=math.sqrt(variance),
    )


def reduction_percent(baseline: float, improved: float) -> float:
    """Percentage reduction of *improved* relative to *baseline*.

    This is how the paper reports ESCAPE's gains, e.g. "ESCAPE shortens the
    leader election time by 11.6 % and 21.3 % at sizes of 8 and 128 servers".
    """
    if baseline <= 0:
        raise ClusterError(f"baseline must be positive, got {baseline}")
    return (baseline - improved) / baseline * 100.0

"""Plain-text table rendering for experiment reports.

The experiment modules print the same rows/series the paper plots; these
helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a monospace table with a header row and aligned columns."""
    columns = len(headers)
    normalized_rows = []
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells but the table has {columns} columns: {row!r}"
            )
        normalized_rows.append([_format_cell(cell) for cell in row])
    header_cells = [str(header) for header in headers]
    widths = [
        max(len(header_cells[i]), *(len(row[i]) for row in normalized_rows))
        if normalized_rows
        else len(header_cells[i])
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(header_cells)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in normalized_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def render_comparison_table(
    row_labels: Sequence[object],
    series: Mapping[str, Sequence[float]],
    row_header: str = "parameter",
    value_format: str = "{:.1f}",
    title: str | None = None,
) -> str:
    """Render one row per parameter value with one column per named series.

    This is the layout of the paper's averaged comparisons (e.g. Figure 9
    right: cluster size vs average election time for Raft and ESCAPE).
    """
    headers = [row_header, *series.keys()]
    rows = []
    for index, label in enumerate(row_labels):
        row: list[object] = [label]
        for name in series:
            values = series[name]
            row.append(value_format.format(values[index]) if index < len(values) else "-")
        rows.append(row)
    return render_table(headers, rows, title=title)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)

"""Measurement records, statistics and report rendering.

The experiment harness produces one
:class:`~repro.metrics.records.ElectionMeasurement` per run; this package
turns collections of measurements into the CDFs, averages and comparison
tables that the paper's figures report.
"""

from repro.metrics.records import (
    AvailabilityMeasurement,
    AvailabilitySet,
    ElectionMeasurement,
    MeasurementSet,
)
from repro.metrics.stats import (
    cumulative_distribution,
    percentile,
    reduction_percent,
    summarize,
    SummaryStatistics,
)
from repro.metrics.streaming import (
    DEFAULT_CDF_CAPACITY,
    ElectionAggregate,
    MergeableCDF,
    StreamingSummary,
)
from repro.metrics.tables import render_comparison_table, render_table

__all__ = [
    "AvailabilityMeasurement",
    "AvailabilitySet",
    "DEFAULT_CDF_CAPACITY",
    "ElectionAggregate",
    "ElectionMeasurement",
    "MeasurementSet",
    "MergeableCDF",
    "StreamingSummary",
    "SummaryStatistics",
    "cumulative_distribution",
    "percentile",
    "reduction_percent",
    "render_comparison_table",
    "render_table",
    "summarize",
]

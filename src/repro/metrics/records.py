"""Measurement records produced by the election harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.common.errors import ClusterError
from repro.common.types import Milliseconds, ServerId, Term


@dataclass(frozen=True)
class ElectionMeasurement:
    """Everything measured about one leader-failure / re-election episode.

    The fields mirror the decomposition used in the paper's Figures 9-11:
    the *detection period* runs from the leader crash to the first election
    timeout; the *election period* runs from that timeout to the moment a new
    leader has collected a quorum; their sum is the out-of-service (OTS) time
    the paper reports as "leader election time".
    """

    protocol: str
    cluster_size: int
    seed: int
    converged: bool
    crash_time_ms: Milliseconds
    detection_ms: Milliseconds
    election_ms: Milliseconds
    total_ms: Milliseconds
    campaign_count: int
    split_vote: bool
    winner_id: ServerId | None
    winner_term: Term | None
    extra: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.converged and self.winner_id is None:
            raise ClusterError("a converged measurement must name the winner")


@dataclass(frozen=True)
class AvailabilityMeasurement:
    """Everything measured about one chaos-disrupted availability window.

    Where :class:`ElectionMeasurement` decomposes a *single* crash →
    re-election episode, this record summarises a *long horizon* under a
    chaos plan: how much of the window had a quorum-capable leader, how many
    disruptions landed, how long each recovery took, and what a client-side
    workload observed (proposals accepted vs dropped while leaderless).

    ``leaderless_intervals`` keeps the raw ``(start_ms, end_ms)`` outage
    intervals so downstream analysis (and the property tests) can re-derive
    every aggregate.
    """

    protocol: str
    cluster_size: int
    seed: int
    plan: str
    start_ms: Milliseconds
    end_ms: Milliseconds
    available_ms: Milliseconds
    leaderless_ms: Milliseconds
    unavailability: float
    disruption_count: int
    skipped_disruptions: int
    outage_count: int
    recovery_ms: tuple[Milliseconds, ...]
    proposals_proposed: int
    proposals_dropped: int
    leaderless_intervals: tuple[tuple[Milliseconds, Milliseconds], ...]
    extra: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.unavailability <= 1.0:
            raise ClusterError(
                f"unavailability must be a fraction, got {self.unavailability!r}"
            )
        if self.outage_count != len(self.leaderless_intervals):
            raise ClusterError(
                f"outage_count ({self.outage_count}) disagrees with the "
                f"{len(self.leaderless_intervals)} leaderless intervals"
            )

    @property
    def duration_ms(self) -> Milliseconds:
        """Length of the measured window."""
        return self.end_ms - self.start_ms

    @property
    def availability(self) -> float:
        """Available fraction of the window."""
        return 1.0 - self.unavailability

    @property
    def mean_recovery_ms(self) -> float | None:
        """Average outage duration, or ``None`` when no outage occurred."""
        if not self.recovery_ms:
            return None
        return sum(self.recovery_ms) / len(self.recovery_ms)

    @property
    def max_recovery_ms(self) -> float | None:
        """Longest outage duration, or ``None`` when no outage occurred."""
        return max(self.recovery_ms) if self.recovery_ms else None


class AvailabilitySet:
    """Availability measurements from repeated runs of one configuration."""

    def __init__(
        self,
        measurements: Iterable[AvailabilityMeasurement] = (),
        label: str = "",
    ) -> None:
        self._measurements = list(measurements)
        self.label = label

    def add(self, measurement: AvailabilityMeasurement) -> None:
        """Append one measurement."""
        self._measurements.append(measurement)

    @property
    def measurements(self) -> tuple[AvailabilityMeasurement, ...]:
        """Every recorded measurement."""
        return tuple(self._measurements)

    def _require_runs(self) -> list[AvailabilityMeasurement]:
        if not self._measurements:
            raise ClusterError(f"no runs in availability set {self.label!r}")
        return self._measurements

    def mean_unavailability(self) -> float:
        """Average leaderless fraction over the runs."""
        runs = self._require_runs()
        return sum(m.unavailability for m in runs) / len(runs)

    def mean_availability(self) -> float:
        """Average available fraction over the runs."""
        return 1.0 - self.mean_unavailability()

    def mean_leaderless_ms(self) -> float:
        """Average total leaderless time per run."""
        runs = self._require_runs()
        return sum(m.leaderless_ms for m in runs) / len(runs)

    def mean_outages(self) -> float:
        """Average number of outages per run."""
        runs = self._require_runs()
        return sum(m.outage_count for m in runs) / len(runs)

    def mean_disruptions(self) -> float:
        """Average number of applied disruptions per run."""
        runs = self._require_runs()
        return sum(m.disruption_count for m in runs) / len(runs)

    def pooled_recovery_ms(self) -> list[Milliseconds]:
        """Every outage duration across every run (for percentiles)."""
        return [latency for m in self._measurements for latency in m.recovery_ms]

    def mean_recovery_ms(self) -> float | None:
        """Average outage duration pooled over runs (``None`` if no outage)."""
        pooled = self.pooled_recovery_ms()
        if not pooled:
            return None
        return sum(pooled) / len(pooled)

    def total_proposed(self) -> int:
        """Client proposals accepted by a leader, summed over runs."""
        return sum(m.proposals_proposed for m in self._measurements)

    def total_dropped(self) -> int:
        """Client proposals dropped (no leader / stale leader), summed."""
        return sum(m.proposals_dropped for m in self._measurements)

    def __len__(self) -> int:
        return len(self._measurements)

    def __iter__(self) -> Iterator[AvailabilityMeasurement]:
        return iter(self._measurements)


class MeasurementSet:
    """A collection of measurements from repeated runs of one configuration."""

    def __init__(
        self, measurements: Iterable[ElectionMeasurement] = (), label: str = ""
    ) -> None:
        self._measurements = list(measurements)
        self.label = label

    def add(self, measurement: ElectionMeasurement) -> None:
        """Append one measurement."""
        self._measurements.append(measurement)

    @property
    def measurements(self) -> tuple[ElectionMeasurement, ...]:
        """Every recorded measurement."""
        return tuple(self._measurements)

    @property
    def converged(self) -> "MeasurementSet":
        """Only the runs in which a new leader actually emerged."""
        return MeasurementSet(
            (m for m in self._measurements if m.converged), label=self.label
        )

    def totals_ms(self) -> list[Milliseconds]:
        """Total election times (OTS) of the converged runs."""
        return [m.total_ms for m in self._measurements if m.converged]

    def detections_ms(self) -> list[Milliseconds]:
        """Detection periods of the converged runs."""
        return [m.detection_ms for m in self._measurements if m.converged]

    def elections_ms(self) -> list[Milliseconds]:
        """Election periods of the converged runs."""
        return [m.election_ms for m in self._measurements if m.converged]

    def values(
        self, selector: Callable[[ElectionMeasurement], float]
    ) -> list[float]:
        """Arbitrary per-measurement values from the converged runs."""
        return [selector(m) for m in self._measurements if m.converged]

    def split_vote_fraction(self) -> float:
        """Fraction of runs that experienced at least one split vote."""
        if not self._measurements:
            return 0.0
        return sum(1 for m in self._measurements if m.split_vote) / len(self._measurements)

    def convergence_fraction(self) -> float:
        """Fraction of runs that elected a new leader within the time budget."""
        if not self._measurements:
            return 0.0
        return sum(1 for m in self._measurements if m.converged) / len(self._measurements)

    def mean_total_ms(self) -> float:
        """Average total election time over converged runs."""
        totals = self.totals_ms()
        if not totals:
            raise ClusterError(f"no converged runs in measurement set {self.label!r}")
        return sum(totals) / len(totals)

    def __len__(self) -> int:
        return len(self._measurements)

    def __iter__(self) -> Iterator[ElectionMeasurement]:
        return iter(self._measurements)

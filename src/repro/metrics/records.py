"""Measurement records produced by the election harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.common.errors import ClusterError
from repro.common.types import Milliseconds, ServerId, Term


@dataclass(frozen=True)
class ElectionMeasurement:
    """Everything measured about one leader-failure / re-election episode.

    The fields mirror the decomposition used in the paper's Figures 9-11:
    the *detection period* runs from the leader crash to the first election
    timeout; the *election period* runs from that timeout to the moment a new
    leader has collected a quorum; their sum is the out-of-service (OTS) time
    the paper reports as "leader election time".
    """

    protocol: str
    cluster_size: int
    seed: int
    converged: bool
    crash_time_ms: Milliseconds
    detection_ms: Milliseconds
    election_ms: Milliseconds
    total_ms: Milliseconds
    campaign_count: int
    split_vote: bool
    winner_id: ServerId | None
    winner_term: Term | None
    extra: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.converged and self.winner_id is None:
            raise ClusterError("a converged measurement must name the winner")


class MeasurementSet:
    """A collection of measurements from repeated runs of one configuration."""

    def __init__(
        self, measurements: Iterable[ElectionMeasurement] = (), label: str = ""
    ) -> None:
        self._measurements = list(measurements)
        self.label = label

    def add(self, measurement: ElectionMeasurement) -> None:
        """Append one measurement."""
        self._measurements.append(measurement)

    @property
    def measurements(self) -> tuple[ElectionMeasurement, ...]:
        """Every recorded measurement."""
        return tuple(self._measurements)

    @property
    def converged(self) -> "MeasurementSet":
        """Only the runs in which a new leader actually emerged."""
        return MeasurementSet(
            (m for m in self._measurements if m.converged), label=self.label
        )

    def totals_ms(self) -> list[Milliseconds]:
        """Total election times (OTS) of the converged runs."""
        return [m.total_ms for m in self._measurements if m.converged]

    def detections_ms(self) -> list[Milliseconds]:
        """Detection periods of the converged runs."""
        return [m.detection_ms for m in self._measurements if m.converged]

    def elections_ms(self) -> list[Milliseconds]:
        """Election periods of the converged runs."""
        return [m.election_ms for m in self._measurements if m.converged]

    def values(
        self, selector: Callable[[ElectionMeasurement], float]
    ) -> list[float]:
        """Arbitrary per-measurement values from the converged runs."""
        return [selector(m) for m in self._measurements if m.converged]

    def split_vote_fraction(self) -> float:
        """Fraction of runs that experienced at least one split vote."""
        if not self._measurements:
            return 0.0
        return sum(1 for m in self._measurements if m.split_vote) / len(self._measurements)

    def convergence_fraction(self) -> float:
        """Fraction of runs that elected a new leader within the time budget."""
        if not self._measurements:
            return 0.0
        return sum(1 for m in self._measurements if m.converged) / len(self._measurements)

    def mean_total_ms(self) -> float:
        """Average total election time over converged runs."""
        totals = self.totals_ms()
        if not totals:
            raise ClusterError(f"no converged runs in measurement set {self.label!r}")
        return sum(totals) / len(totals)

    def __len__(self) -> int:
        return len(self._measurements)

    def __iter__(self) -> Iterator[ElectionMeasurement]:
        return iter(self._measurements)

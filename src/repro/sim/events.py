"""Event and timer handles used by the discrete-event scheduler."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.types import Milliseconds


@dataclass(order=True)
class ScheduledEvent:
    """Internal heap entry: ordered by ``(time, sequence)``.

    The *sequence* number is assigned by the scheduler at insertion time so
    that two events scheduled for the same instant always execute in the order
    they were scheduled.  This stable tie-break is what makes simulation runs
    reproducible.
    """

    time_ms: Milliseconds
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: Whether the entry is still inside the scheduler's heap.  The scheduler
    #: clears this on pop so cancellation accounting never counts an event
    #: twice (e.g. a callback cancelling its own already-popped handle).
    in_heap: bool = field(compare=False, default=True)


class EventHandle:
    """Cancellable handle returned by the scheduler for every event.

    Protocol nodes keep handles for their election and heartbeat timers and
    cancel them on role changes, exactly like a real implementation would
    cancel OS timers.
    """

    __slots__ = ("_event", "_on_cancel")

    def __init__(
        self,
        event: ScheduledEvent,
        on_cancel: Callable[[ScheduledEvent], None] | None = None,
    ) -> None:
        self._event = event
        self._on_cancel = on_cancel

    @property
    def time_ms(self) -> Milliseconds:
        """The simulated time this event is scheduled to fire at."""
        return self._event.time_ms

    @property
    def label(self) -> str:
        """Optional human-readable label (used in traces)."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._event.cancelled:
            return
        self._event.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel(self._event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time_ms:.3f}ms, {self.label!r}, {state})"


# Convenience alias for callbacks that take no arguments.
Callback = Callable[[], Any]

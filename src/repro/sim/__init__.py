"""Deterministic discrete-event simulation kernel.

The kernel is intentionally small: a virtual clock, an event scheduler with
cancellable timer handles, a trace recorder, and a :class:`SimulationWorld`
that bundles the three together with a seeded random-number tree.  Everything
else in the library (network, nodes, harnesses) is built on top of these
primitives.

Determinism guarantees:

* time only advances when the scheduler executes an event;
* events scheduled for the same instant run in insertion order (stable
  tie-breaking), so repeated runs with the same seed are bit-identical;
* all randomness flows through :class:`repro.common.rng.SeedSequence`.

Two interchangeable *engines* provide the kernel: the ``classic`` engine
(:class:`EventScheduler` and friends, optimised for readability) and the
``flat`` engine (:class:`FlatEventScheduler`, array-backed records for large
sweeps).  Engines are registered in :mod:`repro.sim.engines` and are
bit-identical by contract -- selecting one changes wall-clock time only.
"""

from repro.sim.clock import VirtualClock
from repro.sim.engines import EngineSpec, default_engine_name, using_engine
from repro.sim.events import EventHandle
from repro.sim.flatcore import FlatEventScheduler
from repro.sim.scheduler import EventScheduler
from repro.sim.tracing import TraceRecord, Tracer
from repro.sim.world import SimulationWorld

__all__ = [
    "EngineSpec",
    "EventHandle",
    "EventScheduler",
    "FlatEventScheduler",
    "SimulationWorld",
    "TraceRecord",
    "Tracer",
    "VirtualClock",
    "default_engine_name",
    "using_engine",
]

"""The :class:`SimulationWorld` bundles clock, scheduler, RNG tree and tracer.

A world is the unit of isolation for one simulated cluster run: the network,
every node environment and the harness all hold a reference to the same world,
and dropping the world drops the whole run.
"""

from __future__ import annotations

from repro.common.rng import SeedSequence
from repro.common.types import Milliseconds
from repro.sim import engines
from repro.sim.clock import VirtualClock
from repro.sim.engines import EngineSpec
from repro.sim.tracing import Tracer


class SimulationWorld:
    """Everything one simulated run shares.

    Args:
        seed: root seed of the run; all randomness derives from it.
        trace: whether to keep trace records (disable for large sweeps).
        max_events: event budget passed to the scheduler.
        engine: simulation engine name or spec (see :mod:`repro.sim.engines`);
            ``None`` uses the session default (normally ``classic``).  The
            world owns the engine choice: it builds the engine's scheduler,
            and :func:`repro.cluster.builder.build_cluster` reads
            :attr:`engine` to pick the matching network and node-environment
            classes.
    """

    def __init__(
        self,
        seed: int = 0,
        trace: bool = True,
        max_events: int = 10_000_000,
        engine: str | EngineSpec | None = None,
    ) -> None:
        self.engine = engines.resolve(engine)
        self.seeds = SeedSequence(seed)
        self.clock = VirtualClock()
        self.scheduler = self.engine.scheduler_class()(self.clock, max_events=max_events)
        self.tracer = Tracer(enabled=trace)

    def now(self) -> Milliseconds:
        """Current simulated time in milliseconds."""
        return self.clock.now()

    def trace(self, category: str, node: int | None = None, **detail: object) -> None:
        """Record a trace event stamped with the current simulated time."""
        self.tracer.record(self.now(), category, node=node, **detail)

    def run_for(self, duration_ms: Milliseconds) -> None:
        """Run the scheduler for *duration_ms* simulated milliseconds."""
        self.scheduler.run_until(self.now() + duration_ms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationWorld(now={self.now():.1f}ms, "
            f"pending={self.scheduler.pending_count}, "
            f"seed={self.seeds.root_seed})"
        )

"""The ``flat`` engine's event core: slotted list records instead of objects.

This scheduler implements exactly the contract of
:class:`~repro.sim.scheduler.EventScheduler` (see :mod:`repro.sim.engines`
for the contract's definition) but represents every queued event as a plain
4-slot list ``[time_ms, sequence, fn, arg]`` on a binary heap:

* no :class:`~repro.sim.events.ScheduledEvent` dataclass, no
  :class:`~repro.sim.events.EventHandle` object, no label f-string per timer
  -- a re-armed election timer is one list allocation and one ``heappush``;
* list comparison happens element-wise in C and the unique ``sequence``
  slot guarantees ``fn`` is never compared, preserving the classic engine's
  strict ``(time, insertion sequence)`` execution order;
* cancellation clears the ``fn`` slot in place (``None`` marks the record
  dead); popped records clear their own ``fn`` slot before firing, so a
  callback cancelling its own just-fired record is a no-op and dead-record
  accounting can rely on ``fn is None`` alone;
* message deliveries are scheduled *handle-free* through
  :meth:`schedule_call` with ``fn(arg)`` dispatch -- the network passes one
  bound method plus one ``(src, dst, payload)`` tuple instead of building an
  envelope and a closure per message;
* the run loops advance the clock by writing ``VirtualClock._now_ms``
  directly.  This is safe because heap pops yield non-decreasing times and
  every entry time was validated finite and non-past at scheduling time
  (the boundary advances at ``run_until*`` limits still go through the
  validating :meth:`~repro.sim.clock.VirtualClock.advance_to`).

Lazy cancellation, compaction (dead records are filtered out as soon as they
outnumber live ones, above ``compact_min_size``), the O(1) ``pending_count``,
and the ``max_events`` budget all match the classic engine observably:
``pending_count`` / ``heap_size`` / ``compaction_count`` / ``executed_count``
report the same state transitions for the same workload.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

from repro.common.errors import SimulationError
from repro.common.types import Milliseconds
from repro.sim.clock import VirtualClock

__all__ = ["FlatEventHandle", "FlatEventScheduler"]

_INF = math.inf

#: Record slot indices (records are plain lists for C-level heap compares).
_TIME, _SEQ, _FN, _ARG = 0, 1, 2, 3


class FlatEventHandle:
    """Cancellable handle for events scheduled through the *public* API.

    The flat engine's node environments bypass handles entirely (they pass
    raw records around), but ``call_at``/``call_after`` keep returning a
    handle-shaped object so harness code, the client workload and the chaos
    driver work unchanged on either engine.
    """

    __slots__ = ("_scheduler", "_entry", "_cancelled", "_label")

    def __init__(
        self, scheduler: "FlatEventScheduler", entry: list, label: str = ""
    ) -> None:
        self._scheduler = scheduler
        self._entry = entry
        self._cancelled = False
        self._label = label

    @property
    def time_ms(self) -> Milliseconds:
        """The simulated time this event is scheduled to fire at."""
        return self._entry[_TIME]

    @property
    def label(self) -> str:
        """Optional human-readable label (diagnostics only)."""
        return self._label

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        self._scheduler.cancel_entry(self._entry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"FlatEventHandle(t={self.time_ms:.3f}ms, {self._label!r}, {state})"


class FlatEventScheduler:
    """Array-backed scheduler, drop-in behind the classic scheduler contract.

    Args:
        clock: the virtual clock to advance (fresh one when omitted).
        max_events: execution budget; exceeding it raises
            :class:`SimulationError` exactly like the classic engine.
        compact_min_size: heaps smaller than this are never compacted.
    """

    def __init__(
        self,
        clock: VirtualClock | None = None,
        max_events: int = 10_000_000,
        compact_min_size: int = 64,
    ) -> None:
        self._clock = clock if clock is not None else VirtualClock()
        self._heap: list[list] = []
        self._sequence = 0
        self._executed = 0
        self._max_events = max_events
        self._compact_min_size = compact_min_size
        self._cancelled_in_heap = 0
        self._cancellations = 0
        self._compactions = 0

    @property
    def clock(self) -> VirtualClock:
        """The virtual clock advanced by this scheduler."""
        return self._clock

    def now(self) -> Milliseconds:
        """Current simulated time in milliseconds."""
        return self._clock.now()

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1)."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def heap_size(self) -> int:
        """Total heap records, including dead ones awaiting removal."""
        return len(self._heap)

    @property
    def compaction_count(self) -> int:
        """How many times the heap has been compacted (observability)."""
        return self._compactions

    @property
    def executed_count(self) -> int:
        """Total number of events executed so far."""
        return self._executed

    @property
    def scheduled_count(self) -> int:
        """Total number of events ever scheduled (executed or not)."""
        return self._sequence

    @property
    def cancelled_count(self) -> int:
        """Total number of live events that were cancelled."""
        return self._cancellations

    # ------------------------------------------------------------------ #
    # Scheduling -- public (handle-returning) surface
    # ------------------------------------------------------------------ #
    def call_at(
        self, time_ms: Milliseconds, callback: Callable[[], None], label: str = ""
    ) -> FlatEventHandle:
        """Schedule *callback* to run at absolute simulated time *time_ms*."""
        if not math.isfinite(time_ms):
            raise SimulationError(
                f"cannot schedule event at non-finite time: {time_ms!r}"
            )
        if time_ms < self._clock.now():
            raise SimulationError(
                f"cannot schedule event in the past: {time_ms} < {self.now()}"
            )
        entry = [float(time_ms), self._sequence, callback, None]
        self._sequence += 1
        heapq.heappush(self._heap, entry)
        return FlatEventHandle(self, entry, label)

    def call_after(
        self, delay_ms: Milliseconds, callback: Callable[[], None], label: str = ""
    ) -> FlatEventHandle:
        """Schedule *callback* to run *delay_ms* milliseconds from now."""
        if delay_ms < 0:
            raise SimulationError(f"negative delay: {delay_ms}")
        return self.call_at(self._clock.now() + delay_ms, callback, label=label)

    # ------------------------------------------------------------------ #
    # Scheduling -- engine-internal fast paths (no handle objects)
    # ------------------------------------------------------------------ #
    def schedule_call(self, time_ms: float, fn, arg) -> None:
        """Queue ``fn(arg)`` at *time_ms*; no handle, no cancellation.

        The flat network's delivery path: one bound method and one argument
        tuple per message.  *time_ms* must be ``now + latency`` with a
        non-negative finite latency (the network guarantees this); only
        non-finite times are rejected, since they would silently corrupt
        heap ordering.
        """
        if not time_ms < _INF:  # rejects +inf and NaN in one comparison
            raise SimulationError(
                f"cannot schedule event at non-finite time: {time_ms!r}"
            )
        seq = self._sequence
        self._sequence = seq + 1
        heapq.heappush(self._heap, [time_ms, seq, fn, arg])

    def schedule_timer_entry(
        self, delay_ms: Milliseconds, callback: Callable[[], None], label: str = ""
    ) -> list:
        """Queue a node timer and return the raw record as its handle.

        The flat node environment binds this method directly as its
        ``set_timer`` (zero adapter frames), so the signature accepts -- and
        ignores -- the environment contract's ``label`` keyword; labels are
        classic-engine observability.  Timers are cancelled via
        :meth:`cancel_entry`, so re-arming an election timer allocates one
        list and nothing else.
        """
        if delay_ms < 0:
            raise SimulationError(f"negative delay: {delay_ms}")
        time_ms = self._clock._now_ms + delay_ms
        if not time_ms < _INF:  # rejects +inf and NaN (e.g. a NaN delay)
            raise SimulationError(
                f"cannot schedule event at non-finite time: {time_ms!r}"
            )
        seq = self._sequence
        self._sequence = seq + 1
        entry = [time_ms, seq, callback, None]
        heapq.heappush(self._heap, entry)
        return entry

    def cancel_entry(self, entry: list) -> None:
        """Cancel a queued record in place.  Idempotent; a no-op for records
        that already fired (their ``fn`` slot is cleared on pop)."""
        if entry[_FN] is None:
            return
        entry[_FN] = None
        entry[_ARG] = None
        self._note_cancelled()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next pending event.

        Returns:
            ``True`` if an event was executed, ``False`` if the queue is empty.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            fn = entry[_FN]
            if fn is None:
                self._cancelled_in_heap -= 1
                continue
            if self._executed >= self._max_events:
                self._budget_exhausted()
            self._clock._now_ms = entry[_TIME]
            self._executed += 1
            entry[_FN] = None
            arg = entry[_ARG]
            if arg is None:
                fn()
            else:
                fn(arg)
            return True
        return False

    def run_until(self, time_ms: Milliseconds) -> None:
        """Execute every event scheduled at or before *time_ms*.

        The clock ends exactly at *time_ms* even if the last event fired
        earlier, so periodic measurements line up with wall-clock sweeps.
        """
        heap = self._heap
        clock = self._clock
        pop = heapq.heappop
        max_events = self._max_events
        while heap:
            entry = heap[0]
            fn = entry[_FN]
            if fn is None:
                pop(heap)
                self._cancelled_in_heap -= 1
                continue
            if entry[_TIME] > time_ms:
                break
            pop(heap)
            if self._executed >= max_events:
                self._budget_exhausted()
            clock._now_ms = entry[_TIME]
            self._executed += 1
            entry[_FN] = None
            arg = entry[_ARG]
            if arg is None:
                fn()
            else:
                fn(arg)
        if time_ms > clock.now():
            clock.advance_to(time_ms)

    def run_until_idle(self, max_time_ms: Milliseconds | None = None) -> None:
        """Execute events until the queue drains (or *max_time_ms* is hit)."""
        heap = self._heap
        clock = self._clock
        pop = heapq.heappop
        max_events = self._max_events
        while heap:
            entry = heap[0]
            fn = entry[_FN]
            if fn is None:
                pop(heap)
                self._cancelled_in_heap -= 1
                continue
            if max_time_ms is not None and entry[_TIME] > max_time_ms:
                clock.advance_to(max_time_ms)
                return
            pop(heap)
            if self._executed >= max_events:
                self._budget_exhausted()
            clock._now_ms = entry[_TIME]
            self._executed += 1
            entry[_FN] = None
            arg = entry[_ARG]
            if arg is None:
                fn()
            else:
                fn(arg)

    def run_until_condition(
        self,
        condition: Callable[[], bool],
        max_time_ms: Milliseconds,
    ) -> bool:
        """Execute events until *condition()* becomes true.

        The condition is evaluated before the run starts and after every
        executed event, exactly like the classic engine.

        Returns:
            ``True`` if the condition became true, ``False`` if the queue
            drained or *max_time_ms* elapsed first.
        """
        if condition():
            return True
        heap = self._heap
        clock = self._clock
        pop = heapq.heappop
        max_events = self._max_events
        while heap:
            entry = heap[0]
            fn = entry[_FN]
            if fn is None:
                pop(heap)
                self._cancelled_in_heap -= 1
                continue
            if entry[_TIME] > max_time_ms:
                clock.advance_to(max_time_ms)
                return condition()
            pop(heap)
            if self._executed >= max_events:
                self._budget_exhausted()
            clock._now_ms = entry[_TIME]
            self._executed += 1
            entry[_FN] = None
            arg = entry[_ARG]
            if arg is None:
                fn()
            else:
                fn(arg)
            if condition():
                return True
        return False

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _note_cancelled(self) -> None:
        """Account for a cancellation; compact when dead records dominate."""
        self._cancellations += 1
        self._cancelled_in_heap += 1
        heap = self._heap
        if (
            len(heap) >= self._compact_min_size
            and self._cancelled_in_heap * 2 > len(heap)
        ):
            # In place (slice assignment, not rebinding): the run loops hold
            # the heap list in a local, so the compacted heap must keep its
            # identity or a compaction fired from inside a callback would
            # leave the running loop draining a stale list.
            heap[:] = [entry for entry in heap if entry[_FN] is not None]
            heapq.heapify(heap)
            self._cancelled_in_heap = 0
            self._compactions += 1

    def _budget_exhausted(self) -> None:
        raise SimulationError(
            f"event budget exhausted after {self._executed} events; "
            "the simulation is probably not converging"
        )

"""Deterministic discrete-event scheduler.

The scheduler owns a :class:`~repro.sim.clock.VirtualClock` and a binary heap
of :class:`~repro.sim.events.ScheduledEvent` entries.  Execution is strictly
ordered by ``(time, insertion sequence)``; cancelled events are skipped lazily
when they reach the head of the heap.

Cancellation is O(1) but leaves the entry in the heap.  Workloads that
re-arm timers constantly (election timeouts reset on every heartbeat) would
grow the heap without bound if cancelled entries were *only* dropped at the
head, so the scheduler keeps an exact count of cancelled-but-queued entries
and compacts the heap -- filter plus ``heapify`` -- whenever they outnumber
the live ones.  Compaction never reorders execution: entries are totally
ordered by ``(time, sequence)``, so rebuilding the heap from the surviving
entries pops them in exactly the same order as the lazy path would have.
The same counter makes :attr:`EventScheduler.pending_count` O(1) instead of
a full heap scan.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

from repro.common.errors import SimulationError
from repro.common.types import Milliseconds
from repro.sim.clock import VirtualClock
from repro.sim.events import EventHandle, ScheduledEvent


class EventScheduler:
    """Priority-queue scheduler driving a virtual clock.

    Args:
        clock: the virtual clock to advance.  A fresh clock is created when
            none is supplied.
        max_events: safety valve -- the total number of events the scheduler
            will ever execute.  Runaway simulations (for example a node
            rescheduling a zero-delay timer forever) raise
            :class:`SimulationError` instead of hanging the test suite.
        compact_min_size: heaps smaller than this are never compacted, so
            tiny simulations do not pay rebuild churn.  Above it, the heap is
            compacted as soon as cancelled entries outnumber live ones, which
            bounds the heap at ~2x the live event count.
    """

    def __init__(
        self,
        clock: VirtualClock | None = None,
        max_events: int = 10_000_000,
        compact_min_size: int = 64,
    ) -> None:
        self._clock = clock if clock is not None else VirtualClock()
        self._heap: list[ScheduledEvent] = []
        self._sequence = 0
        self._executed = 0
        self._max_events = max_events
        self._compact_min_size = compact_min_size
        self._cancelled_in_heap = 0
        self._cancellations = 0
        self._compactions = 0

    @property
    def clock(self) -> VirtualClock:
        """The virtual clock advanced by this scheduler."""
        return self._clock

    def now(self) -> Milliseconds:
        """Current simulated time in milliseconds."""
        return self._clock.now()

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1)."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def heap_size(self) -> int:
        """Total heap entries, including cancelled ones awaiting removal."""
        return len(self._heap)

    @property
    def compaction_count(self) -> int:
        """How many times the heap has been compacted (observability)."""
        return self._compactions

    @property
    def executed_count(self) -> int:
        """Total number of events executed so far."""
        return self._executed

    @property
    def scheduled_count(self) -> int:
        """Total number of events ever scheduled (executed or not)."""
        return self._sequence

    @property
    def cancelled_count(self) -> int:
        """Total number of live events that were cancelled."""
        return self._cancellations

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def call_at(
        self, time_ms: Milliseconds, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule *callback* to run at absolute simulated time *time_ms*."""
        # NaN passes the past-check below (every comparison against NaN is
        # false) and would silently corrupt heap ordering; infinities would
        # wedge run_until_idle.  Reject both outright.
        if not math.isfinite(time_ms):
            raise SimulationError(
                f"cannot schedule event at non-finite time: {time_ms!r}"
            )
        if time_ms < self.now():
            raise SimulationError(
                f"cannot schedule event in the past: {time_ms} < {self.now()}"
            )
        event = ScheduledEvent(
            time_ms=float(time_ms),
            sequence=self._sequence,
            callback=callback,
            label=label,
        )
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event, on_cancel=self._note_cancelled)

    def call_after(
        self, delay_ms: Milliseconds, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule *callback* to run *delay_ms* milliseconds from now."""
        if delay_ms < 0:
            raise SimulationError(f"negative delay: {delay_ms}")
        return self.call_at(self.now() + delay_ms, callback, label=label)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next pending event.

        Returns:
            ``True`` if an event was executed, ``False`` if the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            event.in_heap = False
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._check_budget()
            self._clock.advance_to(event.time_ms)
            self._executed += 1
            event.callback()
            return True
        return False

    def run_until(self, time_ms: Milliseconds) -> None:
        """Execute every event scheduled at or before *time_ms*.

        The clock ends exactly at *time_ms* even if the last event fired
        earlier, so periodic measurements line up with wall-clock sweeps.
        """
        while self._heap:
            head = self._next_pending()
            if head is None or head.time_ms > time_ms:
                break
            self.step()
        if time_ms > self.now():
            self._clock.advance_to(time_ms)

    def run_until_idle(self, max_time_ms: Milliseconds | None = None) -> None:
        """Execute events until the queue drains (or *max_time_ms* is hit)."""
        while True:
            head = self._next_pending()
            if head is None:
                return
            if max_time_ms is not None and head.time_ms > max_time_ms:
                self._clock.advance_to(max_time_ms)
                return
            self.step()

    def run_until_condition(
        self,
        condition: Callable[[], bool],
        max_time_ms: Milliseconds,
    ) -> bool:
        """Execute events until *condition()* becomes true.

        The condition is evaluated before the run starts and after every
        executed event.

        Returns:
            ``True`` if the condition became true, ``False`` if the queue
            drained or *max_time_ms* elapsed first.
        """
        if condition():
            return True
        while True:
            head = self._next_pending()
            if head is None:
                return False
            if head.time_ms > max_time_ms:
                self._clock.advance_to(max_time_ms)
                return condition()
            self.step()
            if condition():
                return True

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _next_pending(self) -> ScheduledEvent | None:
        """Return (without removing) the earliest non-cancelled event."""
        while self._heap and self._heap[0].cancelled:
            discarded = heapq.heappop(self._heap)
            discarded.in_heap = False
            self._cancelled_in_heap -= 1
        return self._heap[0] if self._heap else None

    def _note_cancelled(self, event: ScheduledEvent) -> None:
        """Account for a cancellation and compact the heap when it pays off."""
        if not event.in_heap:
            return
        self._cancellations += 1
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= self._compact_min_size
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and rebuild the heap in place."""
        survivors = []
        for event in self._heap:
            if event.cancelled:
                event.in_heap = False
            else:
                survivors.append(event)
        self._heap = survivors
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    def _check_budget(self) -> None:
        if self._executed >= self._max_events:
            raise SimulationError(
                f"event budget exhausted after {self._executed} events; "
                "the simulation is probably not converging"
            )

"""Simulation engine registry: the seam between contract and implementation.

The simulation stack has exactly three engine-owned classes -- the event
scheduler, the network fabric, and the per-node environment adapter.  Their
*public surfaces* are the contract everything above them is written against:

* scheduler -- ``call_at`` / ``call_after`` / ``step`` / ``run_until`` /
  ``run_until_idle`` / ``run_until_condition``, the ``pending_count`` /
  ``heap_size`` / ``compaction_count`` / ``executed_count`` observability
  properties, and strict ``(time, insertion sequence)`` execution order;
* network -- ``send`` / ``broadcast`` / ``register`` / ``disconnect`` /
  ``reconnect``, the :class:`~repro.net.network.NetworkStats` counters, the
  partition manager, and the ``net.drop`` trace schema;
* environment -- the :class:`~repro.raft.environment.Environment` protocol
  nodes are written against (``send``/``broadcast``/``set_timer``/
  ``cancel_timer``/``rng``/``trace``).

Everything *behind* those surfaces -- how events are represented, whether
envelopes are materialised, how partition reachability is looked up -- is
engine-owned.  An :class:`EngineSpec` names one consistent implementation of
all three, and the registry mirrors :mod:`repro.protocols` /
:mod:`repro.experiments` so the lint S1 rule and the pickle/hash conformance
suite cover engine specs for free.

Two engines are built in:

* ``classic`` -- the original object-graph implementation (one
  :class:`~repro.sim.events.ScheduledEvent` + handle per timer, one
  :class:`~repro.net.message.Envelope` + closure per message).  It is the
  readable reference implementation.
* ``flat`` -- the array-backed fast core (:mod:`repro.sim.flatcore`,
  :mod:`repro.net.flatnet`): slotted list records instead of event objects,
  no per-message envelopes or closures, cached partition reachability,
  inlined latency sampling.  Bit-identical results, several times faster.

Determinism contract: for the same ``(scenario, seed)``, every engine must
produce bit-identical measurements, stats and traces -- engines may only
remove *allocation and indirection*, never reorder RNG draws or events.  The
differential suite (``tests/property/test_engine_differential.py``) pins this.

Engine selection resolves in priority order: an explicit ``engine`` argument
(scenario field, ``build_cluster``/``SimulationWorld`` parameter, CLI
``--engine``), then a process-wide :func:`set_default_engine` override, then
the ``REPRO_ENGINE`` environment variable, then ``"classic"``.

Class references are stored as ``"module:ClassName"`` dotted paths and
resolved lazily, so specs stay hashable and picklable (plain strings cross
the sweep engine's process pool by value) and registering an engine never
imports its implementation until a world is actually built with it.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from importlib import import_module
from typing import Iterator

from repro.common.errors import ConfigurationError

__all__ = [
    "EngineSpec",
    "default_engine_name",
    "get",
    "is_registered",
    "names",
    "register",
    "registered_specs",
    "resolve",
    "set_default_engine",
    "specs",
    "titles",
    "unregister",
    "using_engine",
]

#: Lazily resolved ``"module:ClassName"`` path -> class cache (one import per
#: path per process; resolution happens at world-build time, not at
#: registration time).
_CLASS_CACHE: dict[str, type] = {}


def _resolve_class(path: str) -> type:
    try:
        return _CLASS_CACHE[path]
    except KeyError:
        pass
    module_name, _, attribute = path.partition(":")
    try:
        resolved = getattr(import_module(module_name), attribute)
    except (ImportError, AttributeError) as exc:
        raise ConfigurationError(
            f"engine class path {path!r} does not resolve: {exc}"
        ) from exc
    _CLASS_CACHE[path] = resolved
    return resolved


@dataclass(frozen=True)
class EngineSpec:
    """Descriptor for one simulation engine.

    Attributes:
        name: registry key and CLI name (e.g. ``"classic"``, ``"flat"``);
            must be non-empty and free of whitespace and commas.
        title: display label for docs and ``--list`` style tables.
        scheduler_path: ``"module:Class"`` of the event scheduler; the class
            must accept ``(clock, max_events=...)`` and implement the
            scheduler contract described in the module docstring.
        network_path: ``"module:Class"`` of the network fabric; same
            constructor signature as
            :class:`~repro.net.network.SimulatedNetwork`.
        environment_path: ``"module:Class"`` of the per-node environment;
            same constructor signature as
            :class:`~repro.cluster.environment.SimNodeEnvironment`.
        description: one-line summary of the implementation strategy.
    """

    name: str
    title: str
    scheduler_path: str
    network_path: str
    environment_path: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or any(ch.isspace() or ch == "," for ch in self.name):
            raise ConfigurationError(
                f"engine name {self.name!r} must be non-empty and free of "
                "whitespace and commas"
            )
        for field_name in ("scheduler_path", "network_path", "environment_path"):
            path = getattr(self, field_name)
            module_name, separator, attribute = str(path).partition(":")
            if not module_name or not separator or not attribute:
                raise ConfigurationError(
                    f"engine {self.name!r}: {field_name} {path!r} must be a "
                    "'module:ClassName' dotted path"
                )

    def scheduler_class(self) -> type:
        """The engine's event-scheduler class (imported lazily)."""
        return _resolve_class(self.scheduler_path)

    def network_class(self) -> type:
        """The engine's network-fabric class (imported lazily)."""
        return _resolve_class(self.network_path)

    def environment_class(self) -> type:
        """The engine's node-environment class (imported lazily)."""
        return _resolve_class(self.environment_path)


_REGISTRY: dict[str, EngineSpec] = {}
_DEFAULT_OVERRIDE: str | None = None


def register(spec: EngineSpec, *, replace: bool = False) -> EngineSpec:
    """Register *spec* under its name and return it.

    Raises:
        ConfigurationError: when the name is already registered and *replace*
            is false.
    """
    if spec.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"engine {spec.name!r} is already registered; "
            "pass replace=True to overwrite it"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> EngineSpec:
    """Remove a registration (plugin teardown, test hygiene) and return it."""
    spec = get(name)
    del _REGISTRY[name]
    return spec


def get(name: str) -> EngineSpec:
    """The spec registered under *name*.

    Raises:
        ConfigurationError: listing every registered name when *name* is
            unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def is_registered(name: str) -> bool:
    """Whether *name* is a registered engine."""
    return name in _REGISTRY


def names() -> tuple[str, ...]:
    """Every registered engine name, in registration order."""
    return tuple(_REGISTRY)


def specs() -> tuple[EngineSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_REGISTRY.values())


def registered_specs() -> tuple[tuple[str, EngineSpec], ...]:
    """``(name, spec)`` pairs for introspection tooling (``repro.lint`` S1)."""
    return tuple(_REGISTRY.items())


def titles() -> dict[str, str]:
    """Mapping of every registered name to its display title."""
    return {name: spec.title for name, spec in _REGISTRY.items()}


def default_engine_name() -> str:
    """The engine used when nothing selects one explicitly.

    Resolution order: :func:`set_default_engine` override, then the
    ``REPRO_ENGINE`` environment variable (validated against the registry),
    then ``"classic"``.
    """
    if _DEFAULT_OVERRIDE is not None:
        return _DEFAULT_OVERRIDE
    from_env = os.environ.get("REPRO_ENGINE", "").strip()
    if from_env:
        get(from_env)
        return from_env
    return "classic"


def set_default_engine(name: str | None) -> None:
    """Install (or with ``None`` clear) the process-wide default engine.

    The sweep engine's pool initializer calls this in every worker so workers
    inherit the parent's resolved default deterministically even under the
    ``spawn`` start method.
    """
    global _DEFAULT_OVERRIDE
    if name is not None:
        get(name)
    _DEFAULT_OVERRIDE = name


@contextmanager
def using_engine(name: str | None) -> Iterator[str]:
    """Temporarily make *name* the default engine (``None`` keeps the current
    default).  Yields the resolved default name; always restores the previous
    override, so a failing experiment cannot leak an engine selection."""
    global _DEFAULT_OVERRIDE
    previous = _DEFAULT_OVERRIDE
    if name is not None:
        set_default_engine(name)
    try:
        yield default_engine_name()
    finally:
        _DEFAULT_OVERRIDE = previous


def resolve(engine: str | EngineSpec | None) -> EngineSpec:
    """Normalise an engine selection to a registered spec.

    ``None`` resolves to the current default; a string is looked up in the
    registry (unknown names raise with the registered list); a spec passes
    through unchanged.
    """
    if engine is None:
        return get(default_engine_name())
    if isinstance(engine, EngineSpec):
        return engine
    return get(engine)


# --------------------------------------------------------------------------- #
# Built-in engines
# --------------------------------------------------------------------------- #
register(
    EngineSpec(
        name="classic",
        title="Classic object-graph engine",
        scheduler_path="repro.sim.scheduler:EventScheduler",
        network_path="repro.net.network:SimulatedNetwork",
        environment_path="repro.cluster.environment:SimNodeEnvironment",
        description=(
            "Reference implementation: one ScheduledEvent + EventHandle per "
            "timer, one Envelope + delivery closure per message"
        ),
    )
)
register(
    EngineSpec(
        name="flat",
        title="Flat-core array-backed engine",
        scheduler_path="repro.sim.flatcore:FlatEventScheduler",
        network_path="repro.net.flatnet:FlatNetwork",
        environment_path="repro.cluster.environment:FlatSimNodeEnvironment",
        description=(
            "Slotted list records instead of event/handle objects, pooled "
            "argument tuples instead of envelopes, cached partition "
            "reachability, inlined latency sampling; bit-identical to classic"
        ),
    )
)

"""Structured trace recording for simulations.

Traces serve two purposes: they power the human-readable timelines shown by
the examples, and integration tests assert on them (for example, that no
ESCAPE run ever records a ``split_vote`` event).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.common.types import Milliseconds, ServerId


@dataclass(frozen=True)
class TraceRecord:
    """A single trace event.

    Attributes:
        time_ms: simulated time the event happened at.
        category: machine-readable category, e.g. ``"election.timeout"``,
            ``"role.change"``, ``"net.drop"``, ``"election.split_vote"``.
        node: the server the event concerns, or ``None`` for cluster-wide
            events (such as the harness crashing the leader).
        detail: free-form key/value payload.
    """

    time_ms: Milliseconds
    category: str
    node: ServerId | None = None
    detail: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Render the record as a single human-readable line."""
        who = f"S{self.node}" if self.node is not None else "cluster"
        payload = " ".join(f"{key}={value}" for key, value in sorted(self.detail.items()))
        return f"[{self.time_ms:10.1f} ms] {who:<6} {self.category:<24} {payload}"


class Tracer:
    """Collects :class:`TraceRecord` instances during a simulation.

    A tracer can be disabled (``enabled=False``) to make large parameter
    sweeps cheaper; recording becomes a no-op but the API stays identical.
    """

    def __init__(self, enabled: bool = True, capacity: int | None = None) -> None:
        self._enabled = enabled
        self._capacity = capacity
        self._records: list[TraceRecord] = []
        self._dropped = 0

    @property
    def enabled(self) -> bool:
        """Whether records are being kept."""
        return self._enabled

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        """All recorded events in chronological (insertion) order."""
        return tuple(self._records)

    @property
    def dropped_count(self) -> int:
        """Records discarded because the tracer was at capacity."""
        return self._dropped

    def record(
        self,
        time_ms: Milliseconds,
        category: str,
        node: ServerId | None = None,
        **detail: Any,
    ) -> None:
        """Append a record (no-op when the tracer is disabled)."""
        if not self._enabled:
            return
        if self._capacity is not None and len(self._records) >= self._capacity:
            self._dropped += 1
            return
        self._records.append(
            TraceRecord(time_ms=time_ms, category=category, node=node, detail=detail)
        )

    def filter(
        self,
        category: str | None = None,
        node: ServerId | None = None,
        prefix: str | None = None,
    ) -> list[TraceRecord]:
        """Return records matching the given filters.

        Args:
            category: exact category match.
            node: only records concerning this server.
            prefix: category prefix match (e.g. ``"election."``).
        """
        result: Iterable[TraceRecord] = self._records
        if category is not None:
            result = (record for record in result if record.category == category)
        if prefix is not None:
            result = (record for record in result if record.category.startswith(prefix))
        if node is not None:
            result = (record for record in result if record.node == node)
        return list(result)

    def count(self, category: str) -> int:
        """Number of records with exactly this category."""
        return sum(1 for record in self._records if record.category == category)

    def clear(self) -> None:
        """Drop all recorded events and reset the dropped counter."""
        self._records.clear()
        self._dropped = 0

    def timeline(self, limit: int | None = None) -> str:
        """Render the trace as a multi-line human-readable timeline.

        When the capacity cap discarded records, the timeline ends with a
        summary line saying how many -- a truncated trace must never read
        like a complete one.
        """
        records = self._records if limit is None else self._records[:limit]
        lines = [record.describe() for record in records]
        if self._dropped:
            lines.append(
                f"... {self._dropped} record(s) dropped at capacity {self._capacity}"
            )
        return "\n".join(lines)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

"""Virtual clock for the discrete-event simulator.

The clock measures simulated milliseconds.  Only the event scheduler advances
it; protocol code reads the current time through the environment abstraction
and never sleeps.
"""

from __future__ import annotations

from repro.common.errors import SimulationError
from repro.common.types import Milliseconds


class VirtualClock:
    """A monotonically non-decreasing simulated clock in milliseconds."""

    def __init__(self, start_ms: Milliseconds = 0.0) -> None:
        if start_ms < 0:
            raise SimulationError(f"clock cannot start in the past: {start_ms}")
        self._now_ms: Milliseconds = float(start_ms)

    def now(self) -> Milliseconds:
        """Current simulated time in milliseconds."""
        return self._now_ms

    def advance_to(self, time_ms: Milliseconds) -> None:
        """Move the clock forward to *time_ms*.

        Raises:
            SimulationError: if *time_ms* is earlier than the current time.
        """
        if time_ms < self._now_ms:
            raise SimulationError(
                f"clock cannot move backwards: {time_ms} < {self._now_ms}"
            )
        self._now_ms = float(time_ms)

    def advance_by(self, delta_ms: Milliseconds) -> None:
        """Move the clock forward by *delta_ms* milliseconds."""
        if delta_ms < 0:
            raise SimulationError(f"cannot advance by a negative delta: {delta_ms}")
        self._now_ms += float(delta_ms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now_ms:.3f}ms)"

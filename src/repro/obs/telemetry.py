"""Deterministic telemetry: named counters, gauges and histograms.

The instrumented layers (scheduler, network, chaos driver, protocol nodes)
record *simulated* facts -- events fired, messages dropped, campaigns started
-- so every metric here is a pure function of ``(scenario, seed)``.  Wall
clock never enters this module; profiling lives in
:mod:`repro.obs.profiling`, which is separately allowlisted for it.

Two design rules keep telemetry sweep-safe:

* **Zero cost when disabled.**  The hot layers are not instrumented with
  per-event callbacks at all: their existing counters (``executed_count``,
  ``NetworkStats``) are *harvested* into a registry after the run
  (:mod:`repro.obs.harvest`).  Only the node-event listener is live, and it
  is attached only when a scenario opts in.  :data:`NULL_METRICS` exists for
  call sites that want an always-present handle.
* **Mergeable snapshots.**  :meth:`MetricsRegistry.snapshot` freezes the
  registry into a :class:`TelemetrySnapshot` -- picklable, JSON-round-
  tripping, and mergeable exactly like the streaming sweep aggregates in
  :mod:`repro.metrics.streaming` -- so per-episode telemetry folds into
  per-label tables bit-identically at any ``--workers`` count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.common.errors import ConfigurationError
from repro.common.frozen import FrozenDict

__all__ = [
    "Counter",
    "DEFAULT_HISTOGRAM_BOUNDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "TelemetrySnapshot",
    "merge_snapshots",
    "sweep_telemetry",
]

#: Default histogram bucket upper bounds (values above the last bound land in
#: the overflow bucket).  Sized for small discrete quantities such as
#: election-timeout attempt numbers.
DEFAULT_HISTOGRAM_BOUNDS: tuple[float, ...] = (1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A last-written-value metric (heap size, pending events, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow bucket.

    Buckets are defined by an immutable tuple of upper bounds; two histograms
    merge by summing their per-bucket counts, which requires identical
    bounds.  ``count``/``total`` track the raw observation count and sum.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float] = DEFAULT_HISTOGRAM_BOUNDS) -> None:
        self.bounds = tuple(float(bound) for bound in bounds)
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise ConfigurationError(
                f"histogram bounds must be non-empty and strictly increasing: "
                f"{bounds!r}"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """A namespace of named metrics, created on first use.

    Handles returned by :meth:`counter`/:meth:`gauge`/:meth:`histogram` are
    plain attribute-bumping objects, so recording is one integer add; call
    sites that record in a loop should hold the handle rather than re-look it
    up by name.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    #: Real registries record; :data:`NULL_METRICS` reports ``False`` so call
    #: sites can skip building expensive labels for a disabled sink.
    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under *name* (created if absent)."""
        handle = self._counters.get(name)
        if handle is None:
            self._counters[name] = handle = Counter()
        return handle

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under *name* (created if absent)."""
        handle = self._gauges.get(name)
        if handle is None:
            self._gauges[name] = handle = Gauge()
        return handle

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_HISTOGRAM_BOUNDS
    ) -> Histogram:
        """The histogram registered under *name* (created if absent).

        Raises:
            ConfigurationError: when *name* already exists with different
                bucket bounds (the two could never merge).
        """
        handle = self._histograms.get(name)
        if handle is None:
            self._histograms[name] = handle = Histogram(bounds)
        elif handle.bounds != tuple(float(bound) for bound in bounds):
            raise ConfigurationError(
                f"histogram {name!r} already registered with bounds "
                f"{handle.bounds}; got {tuple(bounds)}"
            )
        return handle

    def snapshot(self) -> "TelemetrySnapshot":
        """Freeze the registry's current state (sorted by metric name)."""
        return TelemetrySnapshot(
            counters=FrozenDict(
                (name, self._counters[name].value)
                for name in sorted(self._counters)
            ),
            gauges=FrozenDict(
                (name, self._gauges[name].value) for name in sorted(self._gauges)
            ),
            histograms=FrozenDict(
                (
                    name,
                    (
                        self._histograms[name].bounds,
                        tuple(self._histograms[name].counts),
                        self._histograms[name].count,
                        self._histograms[name].total,
                    ),
                )
                for name in sorted(self._histograms)
            ),
        )


class _NullMetrics(MetricsRegistry):
    """The always-off registry: every handle is a shared no-op."""

    __slots__ = ()

    enabled = False

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_GAUGE  # type: ignore[return-value]

    def histogram(  # type: ignore[override]
        self, name: str, bounds: Sequence[float] = DEFAULT_HISTOGRAM_BOUNDS
    ) -> Histogram:
        return _NULL_HISTOGRAM  # type: ignore[return-value]


#: Shared disabled registry: hand this to instrumented code when telemetry is
#: off and every ``inc``/``set``/``observe`` becomes a no-op method call.
NULL_METRICS = _NullMetrics()


#: Histogram state: ``(bounds, bucket counts, observation count, sum)``.
_HistState = tuple[tuple[float, ...], tuple[int, ...], int, float]


@dataclass(frozen=True)
class TelemetrySnapshot:
    """An immutable point-in-time copy of a :class:`MetricsRegistry`.

    Snapshots are plain frozen data: hashable, picklable, and mergeable.
    ``merge`` sums counters and histogram buckets and keeps the elementwise
    **maximum** of gauges (a gauge snapshot is a high-water reading; summing
    heap sizes across episodes would mean nothing).  ``to_state`` /
    ``from_state`` round-trip through JSON, tolerating the list/tuple
    coercion of :mod:`repro.experiments.export`.
    """

    counters: Mapping[str, int] = field(default_factory=FrozenDict)
    gauges: Mapping[str, float] = field(default_factory=FrozenDict)
    histograms: Mapping[str, _HistState] = field(default_factory=FrozenDict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "counters", FrozenDict(self.counters))
        object.__setattr__(self, "gauges", FrozenDict(self.gauges))
        object.__setattr__(self, "histograms", FrozenDict(self.histograms))

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """A new snapshot combining *self* and *other* (sorted names)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges.get(name, value), value)
        histograms = dict(self.histograms)
        for name, state in other.histograms.items():
            mine = histograms.get(name)
            if mine is None:
                histograms[name] = state
                continue
            bounds, counts, count, total = mine
            other_bounds, other_counts, other_count, other_total = state
            if tuple(bounds) != tuple(other_bounds):
                raise ConfigurationError(
                    f"cannot merge histogram {name!r}: bounds differ "
                    f"({tuple(bounds)} vs {tuple(other_bounds)})"
                )
            histograms[name] = (
                tuple(bounds),
                tuple(a + b for a, b in zip(counts, other_counts)),
                count + other_count,
                total + other_total,
            )
        return TelemetrySnapshot(
            counters=FrozenDict(sorted(counters.items())),
            gauges=FrozenDict(sorted(gauges.items())),
            histograms=FrozenDict(sorted(histograms.items())),
        )

    def to_state(self) -> dict[str, object]:
        """The snapshot as one JSON-serialisable dict."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "bounds": list(bounds),
                    "counts": list(counts),
                    "count": count,
                    "total": total,
                }
                for name, (bounds, counts, count, total) in self.histograms.items()
            },
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "TelemetrySnapshot":
        """Rebuild a snapshot from :meth:`to_state` output.

        Accepts lists *or* tuples for the histogram arrays: the export layer
        (:func:`repro.experiments.export._tuplify`) restores JSON arrays as
        tuples, and both spellings must decode identically.
        """
        histograms = {}
        for name, hist in dict(state.get("histograms", {})).items():
            histograms[name] = (
                tuple(float(bound) for bound in hist["bounds"]),
                tuple(int(count) for count in hist["counts"]),
                int(hist["count"]),
                float(hist["total"]),
            )
        return cls(
            counters=FrozenDict(
                sorted(
                    (name, int(value))
                    for name, value in dict(state.get("counters", {})).items()
                )
            ),
            gauges=FrozenDict(
                sorted(
                    (name, float(value))
                    for name, value in dict(state.get("gauges", {})).items()
                )
            ),
            histograms=FrozenDict(sorted(histograms.items())),
        )


def merge_snapshots(snapshots: Iterable[TelemetrySnapshot]) -> TelemetrySnapshot:
    """Fold an iterable of snapshots into one (empty iterable -> empty)."""
    merged = TelemetrySnapshot()
    for snapshot in snapshots:
        merged = merged.merge(snapshot)
    return merged


def sweep_telemetry(
    results: Mapping[str, Iterable],
) -> dict[str, TelemetrySnapshot]:
    """Per-label merged telemetry from a raw-path sweep result.

    Telemetry-enabled scenarios attach each episode's snapshot state to
    ``measurement.extra["telemetry"]``; this folds them per label, in slot
    (episode-index) order, so the table is bit-identical at any worker count.
    Labels whose measurements carry no telemetry are omitted.  The streaming
    sweep path aggregates worker-side and never retains per-episode extras,
    so this helper applies to raw-path results only.
    """
    tables: dict[str, TelemetrySnapshot] = {}
    for label, measurements in results.items():
        states = [
            measurement.extra["telemetry"]
            for measurement in measurements
            if "telemetry" in getattr(measurement, "extra", {})
        ]
        if states:
            tables[label] = merge_snapshots(
                TelemetrySnapshot.from_state(state) for state in states
            )
    return tables

"""Trace persistence: sinks, filters, JSONL round-tripping, and archiving.

The in-memory :class:`~repro.sim.tracing.Tracer` powers assertions and
timelines inside one process; this module gets traces *out* -- to JSONL files
an experiment can archive next to its ``--output`` artifacts (the
``--trace-out`` capability), or into bounded rings that report how much they
dropped instead of discarding silently.

JSONL schema (one object per line)::

    {"t": <time_ms>, "cat": <category>, "node": <id or null>, "detail": {...}}

``write_trace_jsonl``/``read_trace_jsonl`` round-trip losslessly for
JSON-native detail payloads (the only kind the simulator emits).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

from repro.common.rng import paired_seeds
from repro.sim.tracing import TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids layer cycles
    from repro.cluster.scenarios import ElectionScenario

__all__ = [
    "JsonlTraceSink",
    "MemoryTraceSink",
    "RingTraceSink",
    "TRACE_MANIFEST_SCHEMA",
    "TraceFilter",
    "TraceSink",
    "archive_election_traces",
    "export_records",
    "read_trace_jsonl",
    "record_from_json",
    "record_to_json",
    "write_trace_jsonl",
]

#: Schema tag written into every trace-archive manifest.
TRACE_MANIFEST_SCHEMA = "repro.obs.trace-archive/v1"


def record_to_json(record: TraceRecord) -> dict:
    """A :class:`TraceRecord` as one JSON-serialisable dict."""
    return {
        "t": record.time_ms,
        "cat": record.category,
        "node": record.node,
        "detail": dict(record.detail),
    }


def record_from_json(payload: dict) -> TraceRecord:
    """Rebuild a :class:`TraceRecord` from :func:`record_to_json` output."""
    return TraceRecord(
        time_ms=payload["t"],
        category=payload["cat"],
        node=payload["node"],
        detail=dict(payload["detail"]),
    )


@runtime_checkable
class TraceSink(Protocol):
    """Anything trace records can be written into."""

    def write(self, record: TraceRecord) -> None:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class MemoryTraceSink:
    """Collects records in memory (mainly for tests and tooling)."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []
        self.closed = False

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        return tuple(self._records)

    def write(self, record: TraceRecord) -> None:
        self._records.append(record)

    def close(self) -> None:
        self.closed = True


class RingTraceSink:
    """Keeps only the *last* ``capacity`` records, counting what it evicted.

    The complement of the ``Tracer`` capacity cap (which keeps the oldest):
    a ring keeps the most recent window, which is what you want when a long
    run fails at the end -- and ``dropped_count`` says exactly how much of
    the head was lost.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._records: list[TraceRecord] = []
        self._dropped = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped_count(self) -> int:
        """Records evicted from the head to stay within capacity."""
        return self._dropped

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        return tuple(self._records)

    def write(self, record: TraceRecord) -> None:
        if len(self._records) >= self._capacity:
            del self._records[0]
            self._dropped += 1
        self._records.append(record)

    def close(self) -> None:
        return None


class JsonlTraceSink:
    """Streams records to a JSONL file, one object per line."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.written = 0

    def write(self, record: TraceRecord) -> None:
        json.dump(record_to_json(record), self._handle, sort_keys=True)
        self._handle.write("\n")
        self.written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class TraceFilter:
    """A frozen, picklable record predicate for sinks and archives.

    Attributes:
        categories: category *prefixes*; a record matches when its category
            starts with any of them (empty means match all categories).
        nodes: server ids to keep; records with ``node=None`` (cluster-wide
            events) always pass the node filter (empty means match all).
    """

    categories: tuple[str, ...] = ()
    nodes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "categories", tuple(self.categories))
        object.__setattr__(self, "nodes", tuple(self.nodes))

    def matches(self, record: TraceRecord) -> bool:
        """Whether *record* passes both the category and node filters."""
        if self.categories and not any(
            record.category.startswith(prefix) for prefix in self.categories
        ):
            return False
        if self.nodes and record.node is not None and record.node not in self.nodes:
            return False
        return True


def export_records(
    records: Iterable[TraceRecord],
    sink: TraceSink,
    trace_filter: TraceFilter | None = None,
) -> int:
    """Write every matching record into *sink*; returns the count written."""
    written = 0
    for record in records:
        if trace_filter is None or trace_filter.matches(record):
            sink.write(record)
            written += 1
    return written


def write_trace_jsonl(
    path: str | os.PathLike[str],
    records: Iterable[TraceRecord],
    trace_filter: TraceFilter | None = None,
) -> int:
    """Write *records* to a JSONL file at *path*; returns the count written."""
    with JsonlTraceSink(path) as sink:
        return export_records(records, sink, trace_filter)


def read_trace_jsonl(path: str | os.PathLike[str]) -> list[TraceRecord]:
    """Load the records written by :func:`write_trace_jsonl`, in order."""
    records = []
    with open(os.fspath(path), encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(record_from_json(json.loads(line)))
    return records


def archive_election_traces(
    scenarios: "dict[str, ElectionScenario]",
    seed: int,
    directory: str | os.PathLike[str],
    trace_filter: TraceFilter | None = None,
) -> dict:
    """Archive one traced episode per scenario label under *directory*.

    For each label, episode 0's seed is re-derived exactly as the sweep
    derives it (``paired_seeds(1, seed, label)``) and the episode is re-run
    with tracing (and telemetry, when the scenario supports it) enabled, so
    the archive matches what the sweep actually executed.  Writes one
    ``<label>.jsonl`` per scenario plus ``manifest.json`` and -- when any
    scenario produced telemetry -- ``telemetry.json`` with the per-label
    snapshot states.  Returns the manifest dict.
    """
    out_dir = os.fspath(directory)
    os.makedirs(out_dir, exist_ok=True)
    manifest: dict = {
        "schema": TRACE_MANIFEST_SCHEMA,
        "seed": seed,
        "filter": None
        if trace_filter is None
        else {
            "categories": list(trace_filter.categories),
            "nodes": list(trace_filter.nodes),
        },
        "labels": {},
    }
    telemetry: dict[str, dict] = {}
    for label, scenario in scenarios.items():
        episode_seed = paired_seeds(1, seed, label)[0]
        source = (
            scenario.with_telemetry()
            if hasattr(scenario, "with_telemetry")
            else scenario
        )
        measurement, records = source.run_traced(episode_seed)
        # Labels may contain path separators (e.g. "raft/closed-loop");
        # flatten them so every archive file lands directly in out_dir.
        file_name = f"{label.replace('/', '--')}.jsonl"
        written = write_trace_jsonl(
            os.path.join(out_dir, file_name), records, trace_filter
        )
        manifest["labels"][label] = {
            "file": file_name,
            "episode_seed": episode_seed,
            "records": written,
            "filtered_out": len(records) - written,
        }
        state = getattr(measurement, "extra", {}).get("telemetry")
        if state is not None:
            telemetry[label] = state
    if telemetry:
        telemetry_path = os.path.join(out_dir, "telemetry.json")
        with open(telemetry_path, "w", encoding="utf-8") as handle:
            json.dump({"labels": telemetry}, handle, indent=2, sort_keys=True)
        manifest["telemetry"] = "telemetry.json"
    with open(os.path.join(out_dir, "manifest.json"), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return manifest

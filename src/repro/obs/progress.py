"""Sweep progress reporting: stderr ticker and machine-readable heartbeat.

Like :mod:`repro.obs.profiling`, this module is on the :mod:`repro.lint` D1
allowlist -- progress rates and ETAs are wall-clock by nature and never feed
back into simulated behaviour.

A :class:`ProgressReporter` is a drop-in ``ProgressCallback`` (it is called
as ``reporter(label, completed, total)`` by the sweep accounting), plus two
optional hooks the sweep engine invokes when present:

* ``sweep_begin(labels, runs, workers)`` -- announces the full work plan up
  front so totals and ETA are correct from the first episode;
* ``mark_resumed(label, count)`` -- episodes replayed from a checkpoint are
  counted as done but excluded from the episodes/sec rate, so a resumed run
  reports an honest ETA instead of a fantastically fast one.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Sequence, TextIO

__all__ = ["HEARTBEAT_SCHEMA", "ProgressReporter"]

#: Schema tag written into every heartbeat file.
HEARTBEAT_SCHEMA = "repro.obs.heartbeat/v1"


class ProgressReporter:
    """Tracks per-label sweep completion and emits ticker/heartbeat output.

    Args:
        heartbeat_path: when set, a JSON heartbeat is (atomically) rewritten
            at most every *interval_s* seconds, and once more by ``finish``.
        ticker: when true, a single self-overwriting progress line is written
            to *stream* at the same cadence.
        interval_s: minimum seconds between emissions.
        clock: injectable monotonic clock (default :func:`time.monotonic`)
            for deterministic tests.
        stream: ticker destination (default ``sys.stderr``).
    """

    def __init__(
        self,
        heartbeat_path: str | os.PathLike[str] | None = None,
        ticker: bool = False,
        interval_s: float = 1.0,
        clock: Callable[[], float] | None = None,
        stream: TextIO | None = None,
    ) -> None:
        self._heartbeat_path = (
            None if heartbeat_path is None else os.fspath(heartbeat_path)
        )
        self._ticker = ticker
        self._interval_s = interval_s
        self._clock = time.monotonic if clock is None else clock
        self._stream = stream
        self._started = self._clock()
        self._last_emit: float | None = None
        self._completed: dict[str, int] = {}
        self._totals: dict[str, int] = {}
        self._resumed: dict[str, int] = {}
        self._workers = 1
        self._peak_eps = 0.0
        self._finished = False

    # -- sweep-engine hooks -------------------------------------------------

    def sweep_begin(self, labels: Sequence[str], runs: int, workers: int) -> None:
        """Announce the work plan: *runs* episodes for each of *labels*."""
        self._started = self._clock()
        self._last_emit = None
        self._workers = max(1, workers)
        for label in labels:
            self._totals[label] = runs
            self._completed.setdefault(label, 0)

    def mark_resumed(self, label: str, count: int) -> None:
        """Record *count* episodes of *label* restored from a checkpoint."""
        self._resumed[label] = self._resumed.get(label, 0) + count

    # -- ProgressCallback ---------------------------------------------------

    def __call__(self, label: str, completed: int, total: int) -> None:
        """Record that *label* now has *completed* of *total* episodes done."""
        self._completed[label] = completed
        self._totals[label] = total
        now = self._clock()
        if self._last_emit is None or now - self._last_emit >= self._interval_s:
            self._emit(now, finished=False)
            self._last_emit = now

    def finish(self) -> None:
        """Emit the final heartbeat/ticker state (idempotent)."""
        if self._finished:
            return
        self._finished = True
        self._emit(self._clock(), finished=True)
        if self._ticker:
            self._out().write("\n")
            self._out().flush()

    # -- internals ----------------------------------------------------------

    def _out(self) -> TextIO:
        return sys.stderr if self._stream is None else self._stream

    def status(self, now: float | None = None, finished: bool = False) -> dict:
        """The machine-readable progress state (the heartbeat payload)."""
        if now is None:
            now = self._clock()
        done = sum(self._completed.values())
        total = sum(self._totals.values())
        resumed = min(done, sum(self._resumed.values()))
        elapsed_s = max(0.0, now - self._started)
        fresh = done - resumed
        eps = fresh / elapsed_s if elapsed_s > 0 and fresh > 0 else 0.0
        self._peak_eps = max(self._peak_eps, eps)
        remaining = max(0, total - done)
        eta_s = remaining / eps if eps > 0 else None
        # Utilization is an estimate: the current aggregate episode rate
        # relative to the best rate observed this run.  1.0 means the pool is
        # sustaining its peak; it says nothing about absolute efficiency.
        utilization = (
            min(1.0, eps / self._peak_eps) if self._peak_eps > 0 else 0.0
        )
        return {
            "schema": HEARTBEAT_SCHEMA,
            "labels": {
                label: {
                    "completed": self._completed.get(label, 0),
                    "total": self._totals.get(label, 0),
                }
                for label in self._totals
            },
            "completed": done,
            "total": total,
            "resumed": resumed,
            "elapsed_s": round(elapsed_s, 3),
            "episodes_per_s": round(eps, 3),
            "eta_s": None if eta_s is None else round(eta_s, 3),
            "workers": self._workers,
            "utilization": round(utilization, 3),
            "finished": finished,
        }

    def _emit(self, now: float, finished: bool) -> None:
        status = self.status(now, finished=finished)
        if self._heartbeat_path is not None:
            tmp_path = self._heartbeat_path + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(status, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, self._heartbeat_path)
        if self._ticker:
            eta = status["eta_s"]
            line = (
                f"sweep {status['completed']}/{status['total']} episodes"
                f" | {status['episodes_per_s']:.1f} ep/s"
                f" | eta {'--' if eta is None else f'{eta:.0f} s'}"
                f" | workers {status['workers']}"
                f" (util {status['utilization']:.0%})"
            )
            if status["resumed"]:
                line += f" | resumed {status['resumed']}"
            out = self._out()
            out.write("\r" + line)
            out.flush()

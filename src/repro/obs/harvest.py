"""Folding simulator-layer counters into a :class:`MetricsRegistry`.

The scheduler, the network engines and the chaos driver already keep cheap
internal counters on their hot paths; rather than threading a metrics handle
through every event (which would tax the telemetry-disabled case), these
helpers *harvest* those counters into a registry after a run.  Only protocol
node events need a live listener (:class:`TelemetryListener`), and it is
attached only when a scenario opts into telemetry.

Metric names are dotted and stable -- they are part of the snapshot contract
pinned by the engine/worker parity tests:

========================  =====================================================
``sim.events.*``          scheduled / executed / cancelled counts, pending gauge
``sim.heap.*``            compactions counter, size gauge
``net.*``                 sent / delivered / duplicated / broadcasts counters
``net.dropped.*``         fault / partition / disconnected / in_flight counters
``net.sent.<MsgType>``    per-message-type send counters
``chaos.applied[.kind]``  applied disruptions, total and per kind
``chaos.skipped[.kind]``  quorum-guard skips, total and per kind
``node.*``                election timeouts, campaigns, votes, wins, role
                          changes, commits, and the attempt-number histogram
``workload.proposed``     client proposals a leader accepted
``workload.rejected``     proposals abandoned after ``NotLeaderError``
``workload.dropped``      proposals dropped while leaderless
``workload.committed``    tracked ops applied to the state machine
``workload.retries``      extra attempts after ``NotLeaderError``
``workload.lost``         proposed ops that never committed (failover loss)
========================  =====================================================

The ``workload.*`` counters come from :func:`harvest_workload`.  The first
three exist for every workload -- including the legacy fixed-interval
:class:`~repro.cluster.workload.ClientWorkload` loop -- while the tracked
trio appears only when the workload is a per-op-tracking
:class:`~repro.workload.driver.WorkloadDriver`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.telemetry import MetricsRegistry
from repro.raft.listeners import NodeListenerBase
from repro.raft.state import Role

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids layer cycles
    from repro.chaos.driver import ChaosDriver

__all__ = [
    "TelemetryListener",
    "harvest_chaos",
    "harvest_cluster",
    "harvest_network",
    "harvest_scheduler",
    "harvest_workload",
]

#: Bucket bounds for the election-timeout attempt histogram: attempts are
#: small integers, so one bucket per attempt up to 8, then overflow.
ATTEMPT_BOUNDS: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0)


def harvest_scheduler(scheduler, metrics: MetricsRegistry) -> None:
    """Fold a scheduler's event/heap counters into *metrics*.

    Works for both the classic :class:`~repro.sim.scheduler.EventScheduler`
    and the :class:`~repro.sim.flatcore.FlatEventScheduler` -- the engine
    differential contract guarantees the counts agree.
    """
    metrics.counter("sim.events.scheduled").inc(scheduler.scheduled_count)
    metrics.counter("sim.events.executed").inc(scheduler.executed_count)
    metrics.counter("sim.events.cancelled").inc(scheduler.cancelled_count)
    metrics.counter("sim.heap.compactions").inc(scheduler.compaction_count)
    metrics.gauge("sim.events.pending").set(scheduler.pending_count)
    metrics.gauge("sim.heap.size").set(scheduler.heap_size)


def harvest_network(network, metrics: MetricsRegistry) -> None:
    """Fold a network's :class:`~repro.net.network.NetworkStats` into *metrics*."""
    stats = network.stats
    metrics.counter("net.sent").inc(stats.sent)
    metrics.counter("net.delivered").inc(stats.delivered)
    metrics.counter("net.duplicated").inc(stats.duplicated)
    metrics.counter("net.broadcasts").inc(stats.broadcast_count)
    metrics.counter("net.dropped.fault").inc(stats.dropped_by_fault)
    metrics.counter("net.dropped.partition").inc(stats.dropped_by_partition)
    metrics.counter("net.dropped.disconnected").inc(stats.dropped_disconnected)
    metrics.counter("net.dropped.in_flight").inc(stats.dropped_in_flight)
    for message_type in sorted(stats.per_type_sent):
        metrics.counter(f"net.sent.{message_type}").inc(
            stats.per_type_sent[message_type]
        )


def harvest_chaos(driver: "ChaosDriver", metrics: MetricsRegistry) -> None:
    """Fold a chaos driver's applied/skipped records into *metrics*."""
    metrics.counter("chaos.applied").inc(len(driver.applied))
    metrics.counter("chaos.skipped").inc(len(driver.skipped))
    for record in driver.applied:
        metrics.counter(f"chaos.applied.{record.kind}").inc()
    for record in driver.skipped:
        metrics.counter(f"chaos.skipped.{record.kind}").inc()


def harvest_workload(workload, metrics: MetricsRegistry) -> None:
    """Fold a client workload's counters into *metrics*.

    Accepts both the legacy :class:`~repro.cluster.workload.ClientWorkload`
    (which only keeps the proposed/rejected/dropped trio) and the tracking
    :class:`~repro.workload.driver.WorkloadDriver`; counters the workload
    does not keep are simply not emitted, so the metric-name contract above
    stays truthful for either.
    """
    metrics.counter("workload.proposed").inc(workload.proposed)
    metrics.counter("workload.rejected").inc(workload.rejected)
    metrics.counter("workload.dropped").inc(workload.dropped)
    for metric, attribute in (
        ("workload.committed", "committed"),
        ("workload.retries", "retries"),
        ("workload.lost", "lost"),
    ):
        value = getattr(workload, attribute, None)
        if value is not None:
            metrics.counter(metric).inc(value)


def harvest_cluster(cluster, metrics: MetricsRegistry) -> None:
    """Fold a simulated cluster's scheduler and network counters into *metrics*."""
    harvest_scheduler(cluster.world.scheduler, metrics)
    harvest_network(cluster.network, metrics)


class TelemetryListener(NodeListenerBase):
    """A node listener recording protocol events into a registry.

    Counter handles are resolved once at construction so each callback is a
    single attribute bump; attach via ``ElectionScenario.build``'s
    ``extra_listeners`` (which :meth:`ElectionScenario.run` does automatically
    when the scenario has ``telemetry=True``).
    """

    def __init__(self, metrics: MetricsRegistry) -> None:
        self._timeouts = metrics.counter("node.election_timeouts")
        self._campaigns = metrics.counter("node.campaigns")
        self._votes = metrics.counter("node.votes_granted")
        self._wins = metrics.counter("node.elections_won")
        self._role_changes = metrics.counter("node.role_changes")
        self._commits = metrics.counter("node.commits")
        self._attempts = metrics.histogram("node.timeout_attempts", ATTEMPT_BOUNDS)

    def on_role_change(
        self, node_id: int, old_role: Role, new_role: Role, term: int, time_ms: float
    ) -> None:
        self._role_changes.inc()

    def on_election_timeout(
        self, node_id: int, term: int, attempt: int, time_ms: float
    ) -> None:
        self._timeouts.inc()
        self._attempts.observe(attempt)

    def on_election_started(self, node_id: int, term: int, time_ms: float) -> None:
        self._campaigns.inc()

    def on_vote_granted(
        self, voter_id: int, candidate_id: int, term: int, time_ms: float
    ) -> None:
        self._votes.inc()

    def on_leader_elected(
        self, leader_id: int, term: int, votes: int, time_ms: float
    ) -> None:
        self._wins.inc()

    def on_entry_committed(
        self, node_id: int, index: int, term: int, time_ms: float
    ) -> None:
        self._commits.inc()

"""Wall-clock phase profiling for the experiment pipeline.

This module is on the :mod:`repro.lint` D1 allowlist: it is the *only*
sanctioned home (with :mod:`repro.obs.progress`) for wall-clock reads in the
observability layer.  Nothing here feeds back into simulated behaviour --
phase timings are reporting metadata, exactly like the long-standing
``elapsed_s`` field on the experiment envelope.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["Profiler"]


class Profiler:
    """Accumulates named wall-clock phases (``build``/``sweep``/``report``...).

    Phases are recorded with the :meth:`phase` context manager; re-entering a
    name accumulates into the same bucket.  ``snapshot`` returns a plain
    ``{name: seconds}`` dict in first-seen order, suitable for the
    ``ExperimentRun.profile`` envelope field and the benchmark ledger.

    A *clock* callable may be injected for deterministic tests; the default
    is :func:`time.perf_counter`.
    """

    __slots__ = ("_clock", "_phases")

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = time.perf_counter if clock is None else clock
        self._phases: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under *name* (accumulating on re-entry)."""
        started = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - started
            self._phases[name] = self._phases.get(name, 0.0) + elapsed

    def elapsed(self, name: str, default: float = 0.0) -> float:
        """Seconds accumulated under *name* (or *default* if never entered)."""
        return self._phases.get(name, default)

    @property
    def total(self) -> float:
        """Sum of all recorded phases."""
        return sum(self._phases.values())

    def snapshot(self) -> dict[str, float]:
        """The per-phase seconds, in first-seen order."""
        return dict(self._phases)

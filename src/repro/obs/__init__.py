"""repro.obs -- the unified observability layer.

Three pillars, all safe under the determinism contract:

* :mod:`repro.obs.telemetry` + :mod:`repro.obs.harvest` -- named counters/
  gauges/histograms over *simulated* facts, with frozen, mergeable,
  JSON-round-tripping snapshots (bit-identical at any worker count).
* :mod:`repro.obs.trace` -- trace sinks (JSONL / memory / bounded ring),
  frozen filters, and the ``--trace-out`` experiment archive.
* :mod:`repro.obs.progress` + :mod:`repro.obs.profiling` -- the only two
  modules allowed to read wall-clock (see the :mod:`repro.lint` D1
  allowlist): sweep progress/heartbeat reporting and named phase timers.
"""

from repro.obs.harvest import (
    TelemetryListener,
    harvest_chaos,
    harvest_cluster,
    harvest_network,
    harvest_scheduler,
)
from repro.obs.profiling import Profiler
from repro.obs.progress import HEARTBEAT_SCHEMA, ProgressReporter
from repro.obs.telemetry import (
    DEFAULT_HISTOGRAM_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    TelemetrySnapshot,
    merge_snapshots,
    sweep_telemetry,
)
from repro.obs.trace import (
    JsonlTraceSink,
    MemoryTraceSink,
    RingTraceSink,
    TraceFilter,
    TraceSink,
    archive_election_traces,
    export_records,
    read_trace_jsonl,
    write_trace_jsonl,
)

__all__ = [
    "Counter",
    "DEFAULT_HISTOGRAM_BOUNDS",
    "Gauge",
    "HEARTBEAT_SCHEMA",
    "Histogram",
    "JsonlTraceSink",
    "MemoryTraceSink",
    "MetricsRegistry",
    "NULL_METRICS",
    "Profiler",
    "ProgressReporter",
    "RingTraceSink",
    "TelemetryListener",
    "TelemetrySnapshot",
    "TraceFilter",
    "TraceSink",
    "archive_election_traces",
    "export_records",
    "harvest_chaos",
    "harvest_cluster",
    "harvest_network",
    "harvest_scheduler",
    "merge_snapshots",
    "read_trace_jsonl",
    "sweep_telemetry",
    "write_trace_jsonl",
]

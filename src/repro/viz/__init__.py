"""Dependency-free ASCII visualisation of experiment results.

The experiment harness prints tables; these helpers additionally render the
two chart shapes the paper's figures use -- cumulative-distribution curves
(Figures 3 and 9) and grouped bars (Figures 4, 10 and 11) -- as monospace
text, so results can be eyeballed in a terminal or pasted into an issue
without a plotting stack.
"""

from repro.viz.ascii_charts import (
    render_cdf_chart,
    render_grouped_bars,
    render_histogram,
    sparkline,
)

__all__ = [
    "render_cdf_chart",
    "render_grouped_bars",
    "render_histogram",
    "sparkline",
]

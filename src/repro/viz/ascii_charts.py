"""ASCII chart rendering helpers."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.common.errors import ConfigurationError
from repro.metrics.stats import cumulative_distribution

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence of values as a one-line unicode sparkline.

    >>> sparkline([1, 2, 3])
    '▁▅█'
    """
    if not values:
        return ""
    low, high = min(values), max(values)
    if high == low:
        return _BLOCKS[0] * len(values)
    scale = (len(_BLOCKS) - 1) / (high - low)
    return "".join(_BLOCKS[round((value - low) * scale)] for value in values)


def render_cdf_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    title: str | None = None,
    unit: str = "ms",
) -> str:
    """Render empirical CDFs of several samples as an ASCII line chart.

    Args:
        series: mapping from series label to raw sample values (e.g. election
            times per protocol); each series is converted to its empirical CDF.
        width: chart width in characters.
        height: chart height in rows (each row is one cumulative-fraction band).
        title: optional chart title.
        unit: x-axis unit label.
    """
    if not series:
        raise ConfigurationError("render_cdf_chart requires at least one series")
    if width < 10 or height < 4:
        raise ConfigurationError("chart must be at least 10x4 characters")
    cdfs = {label: cumulative_distribution(values) for label, values in series.items()}
    for label, cdf in cdfs.items():
        if not cdf:
            raise ConfigurationError(f"series {label!r} has no values")
    x_min = min(cdf[0][0] for cdf in cdfs.values())
    x_max = max(cdf[-1][0] for cdf in cdfs.values())
    if x_max == x_min:
        x_max = x_min + 1.0
    markers = "*o+x#@%&"
    grid = [[" " for _ in range(width)] for _ in range(height)]

    def column_for(x: float) -> int:
        return min(width - 1, max(0, int((x - x_min) / (x_max - x_min) * (width - 1))))

    def row_for(fraction: float) -> int:
        return min(height - 1, max(0, int(round((1.0 - fraction) * (height - 1)))))

    for series_index, (label, cdf) in enumerate(cdfs.items()):
        marker = markers[series_index % len(markers)]
        for value, fraction in cdf:
            grid[row_for(fraction)][column_for(value)] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        lines.append(f"{fraction:5.0%} |" + "".join(row))
    lines.append("      +" + "-" * width)
    lines.append(f"       {x_min:.0f}{unit}" + " " * max(1, width - 20) + f"{x_max:.0f}{unit}")
    legend = "   ".join(
        f"{markers[index % len(markers)]} {label}" for index, label in enumerate(cdfs)
    )
    lines.append("       " + legend)
    return "\n".join(lines)


def render_grouped_bars(
    groups: Sequence[object],
    series: Mapping[str, Sequence[float]],
    width: int = 50,
    title: str | None = None,
    unit: str = "ms",
) -> str:
    """Render grouped horizontal bars (one group per parameter value).

    This is the ASCII analogue of the paper's grouped bar charts (Figure 10)
    and grouped line plots (Figures 4 and 11): one block of bars per group,
    one bar per series.
    """
    if not series:
        raise ConfigurationError("render_grouped_bars requires at least one series")
    for label, values in series.items():
        if len(values) != len(groups):
            raise ConfigurationError(
                f"series {label!r} has {len(values)} values for {len(groups)} groups"
            )
    peak = max(max(values) for values in series.values())
    if peak <= 0:
        raise ConfigurationError("bar values must contain a positive maximum")
    label_width = max(len(str(label)) for label in series)
    lines: list[str] = []
    if title:
        lines.append(title)
    for group_index, group in enumerate(groups):
        lines.append(f"{group}:")
        for label, values in series.items():
            value = values[group_index]
            bar = "█" * max(1, int(round(value / peak * width))) if value > 0 else ""
            lines.append(f"  {str(label):<{label_width}} |{bar} {value:.0f}{unit}")
    return "\n".join(lines)


def render_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    title: str | None = None,
    unit: str = "ms",
) -> str:
    """Render a histogram of a sample as horizontal ASCII bars."""
    if not values:
        raise ConfigurationError("render_histogram requires at least one value")
    if bins < 1:
        raise ConfigurationError("bins must be >= 1")
    low, high = min(values), max(values)
    if high == low:
        high = low + 1.0
    step = (high - low) / bins
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / step))
        counts[index] += 1
    peak = max(counts)
    lines: list[str] = []
    if title:
        lines.append(title)
    for index, count in enumerate(counts):
        start = low + index * step
        end = start + step
        bar = "█" * int(round(count / peak * width)) if count else ""
        lines.append(f"[{start:8.0f}, {end:8.0f}) {unit} |{bar} {count}")
    return "\n".join(lines)

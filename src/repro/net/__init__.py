"""Simulated network substrate.

This package models the testbed network from the paper's evaluation:

* per-message latency sampled from a configurable model
  (:class:`~repro.net.latency.UniformLatency` reproduces the 100-200 ms NetEm
  setting of Section VI-A);
* broadcast omission faults (:class:`~repro.net.faults.BroadcastOmissionFault`)
  implementing the message-loss model of Section VI-D, where a broadcast only
  reaches ``1 - Δ`` of the servers;
* network partitions and node disconnection (used to crash the leader);
* delivery statistics for every run.
"""

from repro.net.faults import (
    BroadcastOmissionFault,
    CompositeFault,
    FaultInjector,
    LinkFault,
    MessageDuplicationFault,
    NoFault,
    PacketLossFault,
)
from repro.net.latency import (
    ConstantLatency,
    GeoGroupLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.message import Envelope
from repro.net.network import NetworkStats, SimulatedNetwork
from repro.net.partition import PartitionManager
from repro.net.specs import (
    BroadcastOmissionSpec,
    CompositeFaultSpec,
    ConstantLatencySpec,
    DuplicationSpec,
    FaultSpec,
    GeoLatencySpec,
    LatencySpec,
    LinkFaultSpec,
    LogNormalLatencySpec,
    NoFaultSpec,
    PacketLossSpec,
    UniformLatencySpec,
)

__all__ = [
    "BroadcastOmissionFault",
    "BroadcastOmissionSpec",
    "CompositeFault",
    "CompositeFaultSpec",
    "ConstantLatency",
    "ConstantLatencySpec",
    "DuplicationSpec",
    "Envelope",
    "FaultInjector",
    "FaultSpec",
    "GeoGroupLatency",
    "GeoLatencySpec",
    "LatencyModel",
    "LatencySpec",
    "LinkFault",
    "LinkFaultSpec",
    "LogNormalLatency",
    "LogNormalLatencySpec",
    "MessageDuplicationFault",
    "NetworkStats",
    "NoFault",
    "NoFaultSpec",
    "PacketLossFault",
    "PacketLossSpec",
    "PartitionManager",
    "SimulatedNetwork",
    "UniformLatency",
    "UniformLatencySpec",
]

"""The ``flat`` engine's network fabric: envelope-free, allocation-lean.

:class:`FlatNetwork` subclasses :class:`~repro.net.network.SimulatedNetwork`
-- registration, connectivity control, partition management and the
:class:`~repro.net.network.NetworkStats` counters are inherited unchanged --
and replaces the hot send/broadcast/delivery paths:

* deliveries are pushed straight onto the flat scheduler's heap as 4-slot
  records (``[time, seq, self._deliver_fast, (src, dst, payload)]``); no
  :class:`~repro.net.message.Envelope`, no closure, no label f-string and no
  scheduler call frame per message.  ``send`` returns ``None`` and
  ``broadcast`` returns ``[]`` -- envelope receipts are ``classic``-engine
  observability, and nothing in the node/harness layers consumes them;
* the latency sampler is inlined for the common models:
  :class:`~repro.net.latency.UniformLatency` becomes
  ``low + spread * rng.random()`` (bit-identical to ``rng.uniform`` --
  CPython computes exactly ``a + (b - a) * random()``) and
  :class:`~repro.net.latency.ConstantLatency` skips the call entirely (it
  draws nothing); every other model goes through its ``sample`` hook;
* fault hooks that provably draw no randomness *and* always answer "don't
  drop" are skipped: :class:`~repro.net.faults.NoFault` everywhere,
  :class:`~repro.net.faults.BroadcastOmissionFault` unicasts when
  ``affect_unicast`` is off, and
  :class:`~repro.net.faults.MessageDuplicationFault` drop checks.  Anything
  else (including :class:`~repro.net.faults.LinkFault`, which draws nothing
  but can drop) is called exactly like the classic engine, preserving the
  fault RNG stream draw-for-draw;
* partition reachability is the manager's identity-stable
  :attr:`~repro.net.partition.PartitionManager.cell_map` dict, held once at
  construction and tested with ``if cells and cells[src] != cells[dst]``
  per message instead of a ``can_communicate`` call;
* broadcasts run in a single pass with every per-message attribute lookup
  hoisted out of the loop.  The pass keeps the classic per-destination
  order -- latency draw, then duplication check, then the duplicate's
  latency draw -- so the latency and fault RNG streams stay bit-identical.

The drop bookkeeping (stats + ``net.drop`` traces, including the in-flight
variants) mirrors :class:`SimulatedNetwork` exactly; the differential suite
asserts equality of stats and traces across engines.
"""

from __future__ import annotations

import math
from heapq import heappush
from typing import Any, Callable, Iterable, Sequence

from repro.common.errors import NetworkError, SimulationError
from repro.common.types import ServerId
from repro.net.faults import (
    BroadcastOmissionFault,
    FaultInjector,
    MessageDuplicationFault,
    NoFault,
)
from repro.net.latency import ConstantLatency, LatencyModel, UniformLatency
from repro.net.network import SimulatedNetwork
from repro.sim.world import SimulationWorld

__all__ = ["FlatNetwork"]

_INF = math.inf


class FlatNetwork(SimulatedNetwork):
    """Envelope-free network fabric, bit-identical to the classic one.

    Requires a world built with the ``flat`` engine: the network reaches
    into :class:`~repro.sim.flatcore.FlatEventScheduler` internals (its heap
    list and sequence counter -- both engine-owned, and the heap's identity
    is stable across compactions by design) to push delivery records without
    a call frame.  :func:`repro.cluster.builder.build_cluster` guarantees
    the pairing through the engine spec.
    """

    def __init__(
        self,
        world: SimulationWorld,
        members: Iterable[ServerId],
        latency: LatencyModel | None = None,
        fault: FaultInjector | None = None,
    ) -> None:
        super().__init__(world, members, latency=latency, fault=fault)
        self._member_set = frozenset(self._members)
        scheduler = world.scheduler
        self._flat_scheduler = scheduler
        # Engine-internal coupling: the flat scheduler compacts its heap in
        # place (slice assignment), so this list reference stays valid for
        # the scheduler's lifetime.
        self._heap: list[list] = scheduler._heap
        self._clock = world.clock
        self._rng_random = self._latency_rng.random
        # Identity-stable: PartitionManager mutates this dict on
        # partition()/heal(); empty means no partition installed.
        self._cells = self._partitions.cell_map
        # stats is assigned exactly once (in SimulatedNetwork.__init__) and
        # _handlers is only ever mutated in place by register(), so both
        # aliases stay valid for the network's lifetime.
        self._stats = self.stats
        self._handler_for = self._handlers.get
        self._configure_latency_fast_path()
        self._configure_fault_fast_path()

    # ------------------------------------------------------------------ #
    # Fast-path configuration
    # ------------------------------------------------------------------ #
    def _configure_latency_fast_path(self) -> None:
        latency = self._latency
        self._uniform_low: float | None = None
        self._uniform_spread = 0.0
        self._constant_latency: float | None = None
        # Exact type checks: a subclass could override sample(), so only the
        # library's own models are inlined.
        if type(latency) is UniformLatency:
            self._uniform_low = latency.low_ms
            self._uniform_spread = latency.high_ms - latency.low_ms
        elif type(latency) is ConstantLatency:
            self._constant_latency = latency.latency_ms
        self._sample_latency = latency.sample

    def _configure_fault_fast_path(self) -> None:
        fault = self._fault
        fault_type = type(fault)
        # Skip flags are only set where the hook provably draws no RNG and
        # always answers "don't drop"; everything else calls the hook exactly
        # like the classic engine so the fault stream stays draw-identical.
        self._skip_unicast_fault = (
            fault_type is NoFault
            or fault_type is MessageDuplicationFault
            or (fault_type is BroadcastOmissionFault and not fault.affect_unicast)
        )
        self._skip_broadcast_fault = (
            fault_type is NoFault or fault_type is MessageDuplicationFault
        )
        self._duplicator = getattr(fault, "should_duplicate", None)

    def set_fault(self, fault: FaultInjector) -> None:
        """Replace the fault injector and recompute its fast-path flags."""
        super().set_fault(fault)
        self._configure_fault_fast_path()

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    def send(self, src: ServerId, dst: ServerId, payload: Any) -> None:
        """Send one point-to-point message.

        Unlike the classic engine this returns ``None`` even for messages
        put in flight: the flat engine materialises no envelopes (engine
        contract -- receipts are classic-engine observability).
        """
        member_set = self._member_set
        if src not in member_set or dst not in member_set:
            self._require_member(src)
            self._require_member(dst)
        stats = self._stats
        stats.sent += 1
        per_type = stats.per_type_sent
        name = type(payload).__name__
        try:
            per_type[name] += 1
        except KeyError:
            per_type[name] = 1
        if src in self._disconnected:
            stats.dropped_disconnected += 1
            self._world.trace("net.drop", node=src, dst=dst, reason="disconnected")
            return None
        if not self._skip_unicast_fault and self._fault.drop_unicast(
            self._fault_rng, src, dst
        ):
            stats.dropped_by_fault += 1
            self._world.trace("net.drop", node=src, dst=dst, reason="fault")
            return None
        cells = self._cells
        if cells and cells[src] != cells[dst]:
            stats.dropped_by_partition += 1
            self._world.trace("net.drop", node=src, dst=dst, reason="partition")
            return None
        low = self._uniform_low
        if low is not None:
            latency = low + self._uniform_spread * self._rng_random()
        elif self._constant_latency is not None:
            latency = self._constant_latency
        else:
            latency = self._sample_latency(self._latency_rng, src, dst)
        time_ms = self._clock._now_ms + latency
        if not time_ms < _INF:  # rejects +inf and NaN in one comparison
            raise SimulationError(
                f"cannot schedule event at non-finite time: {time_ms!r}"
            )
        scheduler = self._flat_scheduler
        seq = scheduler._sequence
        scheduler._sequence = seq + 1
        heappush(self._heap, [time_ms, seq, self._deliver_fast, (src, dst, payload)])
        duplicator = self._duplicator
        if duplicator is not None and duplicator(self._fault_rng, src, dst):
            stats.duplicated += 1
            if low is not None:
                latency = low + self._uniform_spread * self._rng_random()
            elif self._constant_latency is not None:
                latency = self._constant_latency
            else:
                latency = self._sample_latency(self._latency_rng, src, dst)
            time_ms = self._clock._now_ms + latency
            if not time_ms < _INF:
                raise SimulationError(
                    f"cannot schedule event at non-finite time: {time_ms!r}"
                )
            seq = scheduler._sequence
            scheduler._sequence = seq + 1
            heappush(
                self._heap, [time_ms, seq, self._deliver_fast, (src, dst, payload)]
            )
        return None

    def broadcast(
        self,
        src: ServerId,
        targets: Sequence[ServerId],
        payload_factory: Callable[[ServerId], Any],
    ) -> list:
        """Broadcast to *targets* in one batched pass.

        Returns ``[]`` (no envelopes; see :meth:`send`).  The per-target
        order of RNG draws -- latency, duplication check, duplicate latency
        -- matches the classic engine exactly.
        """
        member_set = self._member_set
        if src not in member_set:
            self._require_member(src)
        stats = self._stats
        stats.broadcast_count += 1
        per_type = stats.per_type_sent
        if src in self._disconnected:
            # Mirror the unicast path: every attempted message is counted as
            # sent *and* dropped (the payload factory is pure; see the
            # classic broadcast()).
            trace = self._world.trace
            for dst in targets:
                name = type(payload_factory(dst)).__name__
                stats.sent += 1
                per_type[name] = per_type.get(name, 0) + 1
                stats.dropped_disconnected += 1
                trace("net.drop", node=src, dst=dst, reason="disconnected")
            return []
        if self._skip_broadcast_fault:
            omitted: frozenset[ServerId] | tuple = ()
        else:
            omitted = self._fault.omitted_broadcast_targets(
                self._fault_rng, src, list(targets)
            )
        cells = self._cells
        rng_random = self._rng_random
        low = self._uniform_low
        spread = self._uniform_spread
        constant = self._constant_latency
        sample = self._sample_latency
        latency_rng = self._latency_rng
        duplicator = self._duplicator
        fault_rng = self._fault_rng
        deliver = self._deliver_fast
        heap = self._heap
        scheduler = self._flat_scheduler
        now = self._clock._now_ms
        # The sequence counter can be carried in a local: payload factories
        # and fault hooks are pure reads / RNG draws (documented contract),
        # so nothing schedules events while this loop runs.
        seq = scheduler._sequence
        for dst in targets:
            payload = payload_factory(dst)
            stats.sent += 1
            name = type(payload).__name__
            try:
                per_type[name] += 1
            except KeyError:
                per_type[name] = 1
            if dst in omitted:
                stats.dropped_by_fault += 1
                self._world.trace(
                    "net.drop", node=src, dst=dst, reason="broadcast_omission"
                )
                continue
            if dst not in member_set:
                scheduler._sequence = seq
                raise NetworkError(f"unknown servers S{src} or S{dst}")
            if cells and cells[src] != cells[dst]:
                stats.dropped_by_partition += 1
                self._world.trace("net.drop", node=src, dst=dst, reason="partition")
                continue
            if low is not None:
                latency = low + spread * rng_random()
            elif constant is not None:
                latency = constant
            else:
                latency = sample(latency_rng, src, dst)
            time_ms = now + latency
            if not time_ms < _INF:
                scheduler._sequence = seq
                raise SimulationError(
                    f"cannot schedule event at non-finite time: {time_ms!r}"
                )
            heappush(heap, [time_ms, seq, deliver, (src, dst, payload)])
            seq += 1
            if duplicator is not None and duplicator(fault_rng, src, dst):
                stats.duplicated += 1
                if low is not None:
                    latency = low + spread * rng_random()
                elif constant is not None:
                    latency = constant
                else:
                    latency = sample(latency_rng, src, dst)
                time_ms = now + latency
                if not time_ms < _INF:
                    scheduler._sequence = seq
                    raise SimulationError(
                        f"cannot schedule event at non-finite time: {time_ms!r}"
                    )
                heappush(heap, [time_ms, seq, deliver, (src, dst, payload)])
                seq += 1
        scheduler._sequence = seq
        return []

    # ------------------------------------------------------------------ #
    # Delivery
    # ------------------------------------------------------------------ #
    def _deliver_fast(self, item: tuple[ServerId, ServerId, Any]) -> None:
        src, dst, payload = item
        if dst in self._disconnected:
            self._stats.dropped_disconnected += 1
            self._stats.dropped_in_flight += 1
            self._world.trace(
                "net.drop", node=src, dst=dst, reason="disconnected", in_flight=True
            )
            return
        cells = self._cells
        if cells and cells[src] != cells[dst]:
            self._stats.dropped_by_partition += 1
            self._stats.dropped_in_flight += 1
            self._world.trace(
                "net.drop", node=src, dst=dst, reason="partition", in_flight=True
            )
            return
        handler = self._handler_for(dst)
        if handler is None:
            raise NetworkError(f"no handler registered for S{dst}")
        self._stats.delivered += 1
        handler(src, payload)

"""Fault injection for the simulated network.

Two message-loss models are provided:

* :class:`BroadcastOmissionFault` -- the paper's model (Section VI-D): for a
  loss rate Δ, every broadcast from a leader or candidate simply never reaches
  a uniformly chosen ⌈Δ·(n-1)⌉ subset of the peers.
* :class:`PacketLossFault` -- i.i.d. per-message loss, provided for
  sensitivity analysis (it is the model NetEm's ``loss`` option implements).

:class:`LinkFault` cuts specific directed links and :class:`CompositeFault`
combines several injectors.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.common.types import ServerId
from repro.common.validation import require_fraction


@runtime_checkable
class FaultInjector(Protocol):
    """Decides which messages the network silently drops."""

    def drop_unicast(
        self, rng: random.Random, src: ServerId, dst: ServerId
    ) -> bool:  # pragma: no cover - protocol signature
        """Whether to drop a single point-to-point message."""
        ...

    def omitted_broadcast_targets(
        self, rng: random.Random, src: ServerId, targets: Sequence[ServerId]
    ) -> frozenset[ServerId]:  # pragma: no cover - protocol signature
        """Subset of *targets* a broadcast from *src* will never reach."""
        ...


@dataclass(frozen=True)
class NoFault:
    """The fault injector used when the network is healthy (Δ = 0)."""

    def drop_unicast(self, rng: random.Random, src: ServerId, dst: ServerId) -> bool:
        return False

    def omitted_broadcast_targets(
        self, rng: random.Random, src: ServerId, targets: Sequence[ServerId]
    ) -> frozenset[ServerId]:
        return frozenset()


@dataclass(frozen=True)
class PacketLossFault:
    """Independent per-message loss with probability *loss_rate*."""

    loss_rate: float

    def __post_init__(self) -> None:
        require_fraction(self.loss_rate, "loss_rate")

    def drop_unicast(self, rng: random.Random, src: ServerId, dst: ServerId) -> bool:
        return rng.random() < self.loss_rate

    def omitted_broadcast_targets(
        self, rng: random.Random, src: ServerId, targets: Sequence[ServerId]
    ) -> frozenset[ServerId]:
        return frozenset(
            target for target in targets if rng.random() < self.loss_rate
        )


@dataclass(frozen=True)
class BroadcastOmissionFault:
    """The paper's broadcast loss model (Section VI-D).

    "At each rate, a broadcast only reaches ``1 - Δ`` servers.  For example, in
    a cluster of 10 servers and Δ = 20 %, a sender (leader or candidate)
    randomly omits two servers in each broadcast."

    Unicast messages (such as vote replies) are left untouched; the paper's
    loss model applies to the sender's broadcast only.  Set
    ``affect_unicast=True`` to additionally drop unicasts with probability Δ
    for sensitivity analysis.
    """

    loss_rate: float
    affect_unicast: bool = False

    def __post_init__(self) -> None:
        require_fraction(self.loss_rate, "loss_rate")

    def drop_unicast(self, rng: random.Random, src: ServerId, dst: ServerId) -> bool:
        if not self.affect_unicast:
            return False
        return rng.random() < self.loss_rate

    def omitted_broadcast_targets(
        self, rng: random.Random, src: ServerId, targets: Sequence[ServerId]
    ) -> frozenset[ServerId]:
        if self.loss_rate <= 0.0 or not targets:
            return frozenset()
        omit_count = min(len(targets), math.ceil(self.loss_rate * len(targets)))
        return frozenset(rng.sample(list(targets), omit_count))


@dataclass(frozen=True)
class LinkFault:
    """Drops every message on an explicit set of directed links.

    Args:
        broken_links: pairs ``(src, dst)`` that can no longer communicate.
        symmetric: when true, ``(dst, src)`` is broken as well.
    """

    broken_links: frozenset[tuple[ServerId, ServerId]] = field(default_factory=frozenset)
    symmetric: bool = True

    def _is_broken(self, src: ServerId, dst: ServerId) -> bool:
        if (src, dst) in self.broken_links:
            return True
        return self.symmetric and (dst, src) in self.broken_links

    def drop_unicast(self, rng: random.Random, src: ServerId, dst: ServerId) -> bool:
        return self._is_broken(src, dst)

    def omitted_broadcast_targets(
        self, rng: random.Random, src: ServerId, targets: Sequence[ServerId]
    ) -> frozenset[ServerId]:
        return frozenset(target for target in targets if self._is_broken(src, target))


@dataclass(frozen=True)
class MessageDuplicationFault:
    """Duplicates (rather than drops) messages with probability *rate*.

    UDP-style transports deliver occasional duplicates; consensus protocols
    must treat every RPC idempotently.  This injector never drops anything --
    it only asks the network to deliver some messages twice -- so it composes
    freely with the loss models above.
    """

    rate: float

    def __post_init__(self) -> None:
        require_fraction(self.rate, "rate")

    def drop_unicast(self, rng: random.Random, src: ServerId, dst: ServerId) -> bool:
        return False

    def omitted_broadcast_targets(
        self, rng: random.Random, src: ServerId, targets: Sequence[ServerId]
    ) -> frozenset[ServerId]:
        return frozenset()

    def should_duplicate(self, rng: random.Random, src: ServerId, dst: ServerId) -> bool:
        """Whether the network should deliver this message a second time."""
        return rng.random() < self.rate


@dataclass(frozen=True)
class CompositeFault:
    """Union of several fault injectors: a message is dropped if any says so.

    Duplication requests are forwarded as well: a message is delivered twice
    if any wrapped injector exposing ``should_duplicate`` asks for it, so
    :class:`MessageDuplicationFault` keeps working inside a composite.
    """

    injectors: tuple[FaultInjector, ...] = ()

    def drop_unicast(self, rng: random.Random, src: ServerId, dst: ServerId) -> bool:
        return any(injector.drop_unicast(rng, src, dst) for injector in self.injectors)

    def omitted_broadcast_targets(
        self, rng: random.Random, src: ServerId, targets: Sequence[ServerId]
    ) -> frozenset[ServerId]:
        omitted: set[ServerId] = set()
        for injector in self.injectors:
            omitted.update(injector.omitted_broadcast_targets(rng, src, targets))
        return frozenset(omitted)

    def should_duplicate(self, rng: random.Random, src: ServerId, dst: ServerId) -> bool:
        """Whether any wrapped injector wants this message delivered twice."""
        for injector in self.injectors:
            duplicator = getattr(injector, "should_duplicate", None)
            if duplicator is not None and duplicator(rng, src, dst):
                return True
        return False

"""The simulated network connecting protocol nodes.

The network delivers protocol messages between registered nodes with a sampled
latency, subject to fault injection (message loss), partitions, and node
disconnection (used to model crashed servers).  Delivery happens through the
shared :class:`~repro.sim.world.SimulationWorld` scheduler, so the whole run
stays deterministic.

This class is the ``classic`` engine's network implementation *and* the
definition of the engine-seam contract (see :mod:`repro.sim.engines`): the
public surface -- ``send``/``broadcast``/``register``, connectivity control,
``NetworkStats``, the partition manager, and the ``net.drop`` trace schema --
is what scenarios and nodes may rely on; envelope materialisation and
delivery internals are engine-owned (the ``flat`` engine in
:mod:`repro.net.flatnet` schedules deliveries without envelopes and returns
``None``/``[]`` from ``send``/``broadcast``).

Every dropped message emits one ``net.drop`` trace with a ``reason`` of
``"fault"``, ``"broadcast_omission"``, ``"partition"`` or ``"disconnected"``;
drops that happen at delivery time rather than send time additionally carry
``in_flight=True``.  Stats and traces therefore account for exactly the same
set of drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.common.errors import NetworkError
from repro.common.types import ServerId
from repro.net.faults import FaultInjector, NoFault
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.message import Envelope
from repro.net.partition import PartitionManager
from repro.sim.world import SimulationWorld

DeliveryCallback = Callable[[ServerId, Any], None]


@dataclass
class NetworkStats:
    """Counters describing what the network did during a run."""

    sent: int = 0
    delivered: int = 0
    dropped_by_fault: int = 0
    dropped_by_partition: int = 0
    dropped_disconnected: int = 0
    # How many of the partition/disconnected drops happened at *delivery*
    # time (the destination crashed or was cut off while the message was on
    # the wire).  A sub-category annotation, not a new drop reason: in-flight
    # drops are already counted above, so ``dropped`` must not add this in.
    dropped_in_flight: int = 0
    duplicated: int = 0
    broadcast_count: int = 0
    per_type_sent: dict[str, int] = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        """Total messages that never reached their destination."""
        return (
            self.dropped_by_fault
            + self.dropped_by_partition
            + self.dropped_disconnected
        )

    def record_sent(self, payload: Any) -> None:
        self.sent += 1
        name = type(payload).__name__
        self.per_type_sent[name] = self.per_type_sent.get(name, 0) + 1


class SimulatedNetwork:
    """Latency- and fault-injecting message fabric between servers.

    Args:
        world: the simulation world supplying the clock, scheduler and RNG.
        members: the full cluster membership.
        latency: per-message latency model (defaults to the paper's
            100-200 ms uniform latency).
        fault: fault injector (defaults to no faults).
    """

    def __init__(
        self,
        world: SimulationWorld,
        members: Iterable[ServerId],
        latency: LatencyModel | None = None,
        fault: FaultInjector | None = None,
    ) -> None:
        self._world = world
        self._members = tuple(members)
        if not self._members:
            raise NetworkError("network requires at least one member")
        self._latency = latency if latency is not None else UniformLatency(100.0, 200.0)
        self._fault = fault if fault is not None else NoFault()
        self._latency_rng = world.seeds.stream("net", "latency")
        self._fault_rng = world.seeds.stream("net", "fault")
        self._handlers: dict[ServerId, DeliveryCallback] = {}
        self._disconnected: set[ServerId] = set()
        self._partitions = PartitionManager(self._members)
        self._next_message_id = 1
        self.stats = NetworkStats()

    # ------------------------------------------------------------------ #
    # Registration and connectivity
    # ------------------------------------------------------------------ #
    @property
    def members(self) -> tuple[ServerId, ...]:
        """The full cluster membership."""
        return self._members

    @property
    def partitions(self) -> PartitionManager:
        """The partition manager controlling reachability between cells."""
        return self._partitions

    @property
    def fault(self) -> FaultInjector:
        """The installed fault injector."""
        return self._fault

    def set_fault(self, fault: FaultInjector) -> None:
        """Replace the fault injector (e.g. to start injecting message loss)."""
        self._fault = fault

    def register(self, server_id: ServerId, handler: DeliveryCallback) -> None:
        """Register the delivery callback for a server.

        The callback receives ``(src, payload)`` when a message is delivered.
        """
        if server_id not in self._members:
            raise NetworkError(f"S{server_id} is not a cluster member")
        self._handlers[server_id] = handler

    def disconnect(self, server_id: ServerId) -> None:
        """Detach a server: nothing is delivered to or accepted from it.

        Used by the harness to model a crashed server; messages already in
        flight toward the server are dropped at delivery time.
        """
        self._require_member(server_id)
        self._disconnected.add(server_id)

    def reconnect(self, server_id: ServerId) -> None:
        """Re-attach a previously disconnected server."""
        self._require_member(server_id)
        self._disconnected.discard(server_id)

    def is_connected(self, server_id: ServerId) -> bool:
        """Whether the server is currently attached to the network."""
        return server_id not in self._disconnected

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    def send(self, src: ServerId, dst: ServerId, payload: Any) -> Envelope | None:
        """Send one point-to-point message.

        Returns the in-flight envelope, or ``None`` if the message was dropped
        at send time (sender disconnected, or unicast fault).
        """
        self._require_member(src)
        self._require_member(dst)
        self.stats.record_sent(payload)
        if src in self._disconnected:
            self.stats.dropped_disconnected += 1
            self._world.trace("net.drop", node=src, dst=dst, reason="disconnected")
            return None
        if self._fault.drop_unicast(self._fault_rng, src, dst):
            self.stats.dropped_by_fault += 1
            self._world.trace("net.drop", node=src, dst=dst, reason="fault")
            return None
        return self._enqueue(src, dst, payload)

    def broadcast(
        self,
        src: ServerId,
        targets: Sequence[ServerId],
        payload_factory: Callable[[ServerId], Any],
    ) -> list[Envelope]:
        """Broadcast to *targets*, applying the broadcast-omission fault model.

        Args:
            src: sending server.
            targets: destination servers (normally every peer of *src*).
            payload_factory: called once per target to build that target's
                payload -- including targets the fault model omits or that a
                disconnected sender never reaches, whose payloads are counted
                as sent but not put in flight.  Leaders use this to piggyback
                per-follower data (log entries, ESCAPE configurations) on one
                broadcast; factories must therefore be pure reads of node
                state.

        Returns:
            The envelopes actually put in flight.
        """
        self._require_member(src)
        self.stats.broadcast_count += 1
        if src in self._disconnected:
            # Mirror the unicast path: every attempted message is counted as
            # sent *and* dropped, keeping ``sent == delivered + dropped +
            # in-flight`` intact (the payload factory is pure; see send()).
            for dst in targets:
                self.stats.record_sent(payload_factory(dst))
                self.stats.dropped_disconnected += 1
                self._world.trace(
                    "net.drop", node=src, dst=dst, reason="disconnected"
                )
            return []
        omitted = self._fault.omitted_broadcast_targets(
            self._fault_rng, src, list(targets)
        )
        envelopes: list[Envelope] = []
        for dst in targets:
            payload = payload_factory(dst)
            self.stats.record_sent(payload)
            if dst in omitted:
                self.stats.dropped_by_fault += 1
                self._world.trace("net.drop", node=src, dst=dst, reason="broadcast_omission")
                continue
            envelope = self._enqueue(src, dst, payload)
            if envelope is not None:
                envelopes.append(envelope)
        return envelopes

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _enqueue(self, src: ServerId, dst: ServerId, payload: Any) -> Envelope | None:
        if not self._partitions.can_communicate(src, dst):
            self.stats.dropped_by_partition += 1
            self._world.trace("net.drop", node=src, dst=dst, reason="partition")
            return None
        envelope = self._schedule_delivery(src, dst, payload)
        duplicator = getattr(self._fault, "should_duplicate", None)
        if duplicator is not None and duplicator(self._fault_rng, src, dst):
            self.stats.duplicated += 1
            self._schedule_delivery(src, dst, payload)
        return envelope

    def _schedule_delivery(self, src: ServerId, dst: ServerId, payload: Any) -> Envelope:
        latency = self._latency.sample(self._latency_rng, src, dst)
        now = self._world.now()
        envelope = Envelope(
            message_id=self._next_message_id,
            src=src,
            dst=dst,
            payload=payload,
            sent_at_ms=now,
            deliver_at_ms=now + latency,
        )
        self._next_message_id += 1
        self._world.scheduler.call_at(
            envelope.deliver_at_ms,
            lambda: self._deliver(envelope),
            label=f"deliver:{type(payload).__name__}:S{src}->S{dst}",
        )
        return envelope

    def _deliver(self, envelope: Envelope) -> None:
        dst = envelope.dst
        if dst in self._disconnected:
            # The destination crashed while the message was in flight.  Messages
            # already in flight from a server that crashes are still delivered,
            # matching a process kill on a real network (packets on the wire
            # are not recalled).
            self.stats.dropped_disconnected += 1
            self.stats.dropped_in_flight += 1
            self._world.trace(
                "net.drop",
                node=envelope.src,
                dst=dst,
                reason="disconnected",
                in_flight=True,
            )
            return
        if not self._partitions.can_communicate(envelope.src, dst):
            self.stats.dropped_by_partition += 1
            self.stats.dropped_in_flight += 1
            self._world.trace(
                "net.drop",
                node=envelope.src,
                dst=dst,
                reason="partition",
                in_flight=True,
            )
            return
        handler = self._handlers.get(dst)
        if handler is None:
            raise NetworkError(f"no handler registered for S{dst}")
        self.stats.delivered += 1
        handler(envelope.src, envelope.payload)

    def _require_member(self, server_id: ServerId) -> None:
        if server_id not in self._members:
            raise NetworkError(f"S{server_id} is not a cluster member")

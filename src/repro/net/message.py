"""Message envelopes carried by the simulated network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.types import Milliseconds, ServerId


@dataclass(frozen=True)
class Envelope:
    """A message in flight between two servers.

    Attributes:
        message_id: unique, monotonically increasing identifier assigned by
            the network (useful for tracing and deduplication in tests).
        src: sender server identifier.
        dst: destination server identifier.
        payload: the protocol message (a Raft or ESCAPE RPC dataclass).
        sent_at_ms: simulated time the sender handed the message to the
            network.
        deliver_at_ms: simulated time the network will deliver the message,
            i.e. ``sent_at_ms`` plus the sampled latency.
    """

    message_id: int
    src: ServerId
    dst: ServerId
    payload: Any
    sent_at_ms: Milliseconds
    deliver_at_ms: Milliseconds

    @property
    def latency_ms(self) -> Milliseconds:
        """The latency sampled for this message."""
        return self.deliver_at_ms - self.sent_at_ms

    def describe(self) -> str:
        """One-line human-readable rendering used in traces."""
        return (
            f"#{self.message_id} S{self.src}->S{self.dst} "
            f"{type(self.payload).__name__} "
            f"(sent {self.sent_at_ms:.1f} ms, +{self.latency_ms:.1f} ms)"
        )

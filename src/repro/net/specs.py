"""Declarative, picklable specifications for latency and fault conditions.

The :mod:`repro.net.latency` and :mod:`repro.net.faults` models are the
*mechanisms* of the simulated network; this module provides the matching
*descriptions*.  A spec is a frozen dataclass that captures one network
condition independently of any concrete cluster -- "two regions, 5-15 ms
inside, 150-250 ms across" rather than a server-by-server region map -- and
``resolve(server_ids)`` turns it into the corresponding runtime model for a
given membership.

Two properties make specs the unit the scenario layer stores and ships
around:

* **Picklable.**  Every spec is a frozen module-level dataclass with only
  plain values (floats, strings, tuples of specs), so a scenario carrying
  specs round-trips through the :mod:`multiprocessing` pool used by
  :func:`repro.experiments.runner.run_sweep` without losing anything.
* **Cluster-size independent.**  The same spec resolves against 5 or 500
  servers, which is what lets one catalog entry parameterise every
  experiment sweep (see :mod:`repro.cluster.catalog`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.common.errors import ConfigurationError
from repro.common.types import Milliseconds, ServerId
from repro.common.validation import (
    require_fraction,
    require_non_negative,
    require_ordered_pair,
    require_positive,
)
from repro.net.faults import (
    BroadcastOmissionFault,
    CompositeFault,
    FaultInjector,
    LinkFault,
    MessageDuplicationFault,
    NoFault,
    PacketLossFault,
)
from repro.net.latency import (
    ConstantLatency,
    GeoGroupLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)

__all__ = [
    "LatencySpec",
    "UniformLatencySpec",
    "ConstantLatencySpec",
    "LogNormalLatencySpec",
    "GeoLatencySpec",
    "FaultSpec",
    "NoFaultSpec",
    "BroadcastOmissionSpec",
    "PacketLossSpec",
    "LinkFaultSpec",
    "DuplicationSpec",
    "CompositeFaultSpec",
    "assign_regions",
]


# --------------------------------------------------------------------------- #
# Latency specs
# --------------------------------------------------------------------------- #
class LatencySpec:
    """Base class for declarative latency conditions.

    Subclasses are frozen dataclasses; ``resolve(server_ids)`` returns the
    :class:`~repro.net.latency.LatencyModel` the spec describes for the given
    membership.
    """

    def resolve(
        self, server_ids: Sequence[ServerId]
    ) -> LatencyModel:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class UniformLatencySpec(LatencySpec):
    """Uniform one-way latency in ``[low_ms, high_ms]`` (the paper's NetEm)."""

    low_ms: Milliseconds = 100.0
    high_ms: Milliseconds = 200.0

    def __post_init__(self) -> None:
        require_non_negative(self.low_ms, "low_ms")
        require_ordered_pair(self.low_ms, self.high_ms, "latency range")

    def resolve(self, server_ids: Sequence[ServerId]) -> LatencyModel:
        return UniformLatency(self.low_ms, self.high_ms)


@dataclass(frozen=True)
class ConstantLatencySpec(LatencySpec):
    """Every message takes exactly *latency_ms*."""

    latency_ms: Milliseconds = 100.0

    def __post_init__(self) -> None:
        require_non_negative(self.latency_ms, "latency_ms")

    def resolve(self, server_ids: Sequence[ServerId]) -> LatencyModel:
        return ConstantLatency(self.latency_ms)


@dataclass(frozen=True)
class LogNormalLatencySpec(LatencySpec):
    """Heavy-tailed latency (median/sigma), capped at *max_ms*."""

    median_ms: Milliseconds = 150.0
    sigma: float = 0.3
    max_ms: Milliseconds = 5_000.0

    def __post_init__(self) -> None:
        require_positive(self.median_ms, "median_ms")
        require_positive(self.sigma, "sigma")
        require_positive(self.max_ms, "max_ms")

    def resolve(self, server_ids: Sequence[ServerId]) -> LatencyModel:
        return LogNormalLatency(self.median_ms, self.sigma, self.max_ms)


def assign_regions(
    server_ids: Sequence[ServerId], region_count: int
) -> dict[ServerId, str]:
    """Split *server_ids* into *region_count* contiguous, balanced regions.

    The first ``n % region_count`` regions receive one extra server, so e.g.
    7 servers over 3 regions become blocks of 3/2/2.  Contiguous blocks (not
    round-robin) mirror how real deployments are provisioned: S1-S3 in one
    data centre, S4-S5 in the next.
    """
    require_positive(region_count, "region_count")
    if region_count > len(server_ids):
        raise ConfigurationError(
            f"region_count ({region_count}) exceeds the cluster size "
            f"({len(server_ids)})"
        )
    base, extra = divmod(len(server_ids), region_count)
    regions: dict[ServerId, str] = {}
    cursor = 0
    for index in range(region_count):
        size = base + (1 if index < extra else 0)
        for server_id in server_ids[cursor : cursor + size]:
            regions[server_id] = f"region-{index}"
        cursor += size
    return regions


@dataclass(frozen=True)
class GeoLatencySpec(LatencySpec):
    """Two-tier geo latency over *region_count* balanced regions.

    Resolution assigns the membership to contiguous regions via
    :func:`assign_regions` and builds a
    :class:`~repro.net.latency.GeoGroupLatency`; the spec itself never names
    concrete servers, so it applies to any cluster size (Section II-B's
    "low in-group, high between-group" setting).
    """

    region_count: int = 2
    intra_ms: tuple[Milliseconds, Milliseconds] = (5.0, 15.0)
    inter_ms: tuple[Milliseconds, Milliseconds] = (100.0, 200.0)

    def __post_init__(self) -> None:
        require_positive(self.region_count, "region_count")
        require_non_negative(self.intra_ms[0], "intra_ms low")
        require_non_negative(self.inter_ms[0], "inter_ms low")
        require_ordered_pair(self.intra_ms[0], self.intra_ms[1], "intra_ms")
        require_ordered_pair(self.inter_ms[0], self.inter_ms[1], "inter_ms")

    def resolve(self, server_ids: Sequence[ServerId]) -> LatencyModel:
        return GeoGroupLatency(
            regions=assign_regions(server_ids, self.region_count),
            intra_ms=self.intra_ms,
            inter_ms=self.inter_ms,
        )


# --------------------------------------------------------------------------- #
# Fault specs
# --------------------------------------------------------------------------- #
class FaultSpec:
    """Base class for declarative fault conditions.

    Subclasses are frozen dataclasses; ``resolve(server_ids)`` returns the
    :class:`~repro.net.faults.FaultInjector` the spec describes.
    """

    def resolve(
        self, server_ids: Sequence[ServerId]
    ) -> FaultInjector:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class NoFaultSpec(FaultSpec):
    """A healthy network (Δ = 0)."""

    def resolve(self, server_ids: Sequence[ServerId]) -> FaultInjector:
        return NoFault()


@dataclass(frozen=True)
class BroadcastOmissionSpec(FaultSpec):
    """The paper's broadcast loss model (Section VI-D) at rate Δ."""

    loss_rate: float = 0.0
    affect_unicast: bool = False

    def __post_init__(self) -> None:
        require_fraction(self.loss_rate, "loss_rate")

    def resolve(self, server_ids: Sequence[ServerId]) -> FaultInjector:
        return BroadcastOmissionFault(self.loss_rate, self.affect_unicast)


@dataclass(frozen=True)
class PacketLossSpec(FaultSpec):
    """i.i.d. per-message loss (NetEm ``loss``), unicast and broadcast alike."""

    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        require_fraction(self.loss_rate, "loss_rate")

    def resolve(self, server_ids: Sequence[ServerId]) -> FaultInjector:
        return PacketLossFault(self.loss_rate)


@dataclass(frozen=True)
class LinkFaultSpec(FaultSpec):
    """Cut an explicit set of directed links."""

    broken_links: frozenset[tuple[ServerId, ServerId]] = field(
        default_factory=frozenset
    )
    symmetric: bool = True

    def resolve(self, server_ids: Sequence[ServerId]) -> FaultInjector:
        members = set(server_ids)
        for src, dst in self.broken_links:
            if src not in members or dst not in members:
                raise ConfigurationError(
                    f"broken link ({src}, {dst}) names a server outside the "
                    f"cluster membership"
                )
        return LinkFault(broken_links=self.broken_links, symmetric=self.symmetric)


@dataclass(frozen=True)
class DuplicationSpec(FaultSpec):
    """Deliver some messages twice (UDP-style duplication) at *rate*."""

    rate: float = 0.0

    def __post_init__(self) -> None:
        require_fraction(self.rate, "rate")

    def resolve(self, server_ids: Sequence[ServerId]) -> FaultInjector:
        return MessageDuplicationFault(self.rate)


@dataclass(frozen=True)
class CompositeFaultSpec(FaultSpec):
    """Several fault conditions at once (loss, cuts and duplication compose)."""

    parts: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        for part in self.parts:
            if not isinstance(part, FaultSpec):
                raise ConfigurationError(
                    f"CompositeFaultSpec parts must be FaultSpec instances, "
                    f"got {part!r}"
                )

    def resolve(self, server_ids: Sequence[ServerId]) -> FaultInjector:
        return CompositeFault(
            injectors=tuple(part.resolve(server_ids) for part in self.parts)
        )

"""Per-message latency models.

The paper's testbed injects a uniform 100-200 ms latency with NetEm on top of
a <2 ms data-centre network (Section VI-A); :class:`UniformLatency` reproduces
that setting and is the default throughout the experiment harness.  The other
models support the geo-distributed discussion of Section II-B (low in-group,
high between-group latency) and general sensitivity analysis.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Mapping, Protocol, runtime_checkable

from repro.common.errors import ConfigurationError
from repro.common.types import Milliseconds, ServerId
from repro.common.validation import require_non_negative, require_ordered_pair, require_positive


@runtime_checkable
class LatencyModel(Protocol):
    """Samples the one-way latency for a single message."""

    def sample(
        self, rng: random.Random, src: ServerId, dst: ServerId
    ) -> Milliseconds:  # pragma: no cover - protocol signature
        """Return the latency in milliseconds for one message ``src -> dst``."""
        ...


@dataclass(frozen=True)
class ConstantLatency:
    """Every message takes exactly *latency_ms* milliseconds."""

    latency_ms: Milliseconds = 100.0

    def __post_init__(self) -> None:
        require_non_negative(self.latency_ms, "latency_ms")

    def sample(self, rng: random.Random, src: ServerId, dst: ServerId) -> Milliseconds:
        return self.latency_ms


@dataclass(frozen=True)
class UniformLatency:
    """Latency drawn uniformly from ``[low_ms, high_ms]``.

    ``UniformLatency(100, 200)`` reproduces the NetEm configuration used in
    every experiment of the paper.
    """

    low_ms: Milliseconds = 100.0
    high_ms: Milliseconds = 200.0

    def __post_init__(self) -> None:
        require_non_negative(self.low_ms, "low_ms")
        require_ordered_pair(self.low_ms, self.high_ms, "latency range")

    def sample(self, rng: random.Random, src: ServerId, dst: ServerId) -> Milliseconds:
        return rng.uniform(self.low_ms, self.high_ms)


@dataclass(frozen=True)
class LogNormalLatency:
    """Heavy-tailed latency, parameterised by median and sigma.

    Useful for sensitivity analysis: real wide-area paths exhibit occasional
    large delays that a uniform model cannot produce.
    """

    median_ms: Milliseconds = 150.0
    sigma: float = 0.3
    max_ms: Milliseconds = 5_000.0

    def __post_init__(self) -> None:
        require_positive(self.median_ms, "median_ms")
        require_positive(self.sigma, "sigma")
        require_positive(self.max_ms, "max_ms")

    def sample(self, rng: random.Random, src: ServerId, dst: ServerId) -> Milliseconds:
        mu = math.log(self.median_ms)
        return min(rng.lognormvariate(mu, self.sigma), self.max_ms)


@dataclass(frozen=True)
class GeoGroupLatency:
    """Two-tier latency: fast within a region, slow across regions.

    Section II-B observes that geo-distributed deployments, where in-group
    latency is much lower than between-group latency, are especially prone to
    split votes because candidates gather their local group's votes quickly
    and then starve remote candidates.  This model assigns every server to a
    named region and samples intra- or inter-region latency accordingly.

    Attributes:
        regions: mapping from server id to region name.
        intra_ms: ``(low, high)`` uniform range within a region.
        inter_ms: ``(low, high)`` uniform range across regions.
    """

    regions: Mapping[ServerId, str] = field(default_factory=dict)
    intra_ms: tuple[Milliseconds, Milliseconds] = (5.0, 15.0)
    inter_ms: tuple[Milliseconds, Milliseconds] = (100.0, 200.0)

    def __post_init__(self) -> None:
        if not self.regions:
            raise ConfigurationError("GeoGroupLatency requires a region assignment")
        require_ordered_pair(self.intra_ms[0], self.intra_ms[1], "intra_ms")
        require_ordered_pair(self.inter_ms[0], self.inter_ms[1], "inter_ms")

    def region_of(self, server_id: ServerId) -> str:
        """Region a server belongs to."""
        try:
            return self.regions[server_id]
        except KeyError as exc:
            raise ConfigurationError(f"S{server_id} has no region assigned") from exc

    def sample(self, rng: random.Random, src: ServerId, dst: ServerId) -> Milliseconds:
        if self.region_of(src) == self.region_of(dst):
            low, high = self.intra_ms
        else:
            low, high = self.inter_ms
        return rng.uniform(low, high)


def paper_latency() -> UniformLatency:
    """The latency model used by every experiment in the paper (100-200 ms)."""
    return UniformLatency(100.0, 200.0)

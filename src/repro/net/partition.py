"""Network partitions for the simulated network.

A partition groups the membership into disjoint cells; messages only flow
within a cell.  Partitions are used by the churn/ablation experiments and by
tests exercising Raft and ESCAPE safety under network splits (Section II-B
notes that network splits exacerbate split votes).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.common.errors import NetworkError
from repro.common.types import ServerId


class PartitionManager:
    """Tracks the current partitioning of the cluster.

    With no partition installed every pair of servers can communicate.
    """

    def __init__(self, members: Iterable[ServerId]) -> None:
        self._members = frozenset(members)
        if not self._members:
            raise NetworkError("partition manager requires at least one member")
        self._cell_of: dict[ServerId, int] | None = None

    @property
    def members(self) -> frozenset[ServerId]:
        """The full cluster membership this manager knows about."""
        return self._members

    @property
    def is_partitioned(self) -> bool:
        """Whether a partition is currently installed."""
        return self._cell_of is not None

    def partition(self, *groups: Sequence[ServerId]) -> None:
        """Install a partition consisting of the given disjoint groups.

        Members not named in any group form one extra implicit cell together.

        Raises:
            NetworkError: if a server appears in two groups or is unknown.
        """
        cell_of: dict[ServerId, int] = {}
        for cell_index, group in enumerate(groups):
            for server_id in group:
                if server_id not in self._members:
                    raise NetworkError(f"S{server_id} is not a cluster member")
                if server_id in cell_of:
                    raise NetworkError(f"S{server_id} appears in two partition groups")
                cell_of[server_id] = cell_index
        leftover_cell = len(groups)
        for server_id in sorted(self._members):
            cell_of.setdefault(server_id, leftover_cell)
        self._cell_of = cell_of

    def heal(self) -> None:
        """Remove the current partition; all servers can communicate again."""
        self._cell_of = None

    def can_communicate(self, src: ServerId, dst: ServerId) -> bool:
        """Whether a message from *src* can currently reach *dst*."""
        if src not in self._members or dst not in self._members:
            raise NetworkError(f"unknown servers S{src} or S{dst}")
        if self._cell_of is None:
            return True
        return self._cell_of[src] == self._cell_of[dst]

    def cell_members(self, server_id: ServerId) -> frozenset[ServerId]:
        """Servers currently reachable from *server_id* (including itself)."""
        if self._cell_of is None:
            return self._members
        cell = self._cell_of[server_id]
        return frozenset(
            other for other, other_cell in self._cell_of.items() if other_cell == cell
        )

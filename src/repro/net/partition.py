"""Network partitions for the simulated network.

A partition groups the membership into disjoint cells; messages only flow
within a cell.  Partitions are used by the churn/ablation experiments and by
tests exercising Raft and ESCAPE safety under network splits (Section II-B
notes that network splits exacerbate split votes).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.common.errors import NetworkError
from repro.common.types import ServerId


class PartitionManager:
    """Tracks the current partitioning of the cluster.

    With no partition installed every pair of servers can communicate.
    """

    def __init__(self, members: Iterable[ServerId]) -> None:
        self._members = frozenset(members)
        if not self._members:
            raise NetworkError("partition manager requires at least one member")
        # Mutated in place (never rebound) so engines can cache the dict:
        # empty means "no partition installed".
        self._cell_of: dict[ServerId, int] = {}
        self._version = 0

    @property
    def members(self) -> frozenset[ServerId]:
        """The full cluster membership this manager knows about."""
        return self._members

    @property
    def version(self) -> int:
        """Monotone counter bumped by every :meth:`partition`/:meth:`heal`.

        Engines cache the reachability table and use this to invalidate the
        cache instead of paying a :meth:`can_communicate` call per delivery.
        """
        return self._version

    @property
    def cell_map(self) -> dict[ServerId, int]:
        """The current server -> cell assignment (empty when healed).

        The returned dict's identity is stable for the manager's lifetime --
        :meth:`partition`/:meth:`heal` mutate it in place -- so engine fast
        paths may hold it and test ``if cells and cells[src] != cells[dst]``
        per message instead of calling :meth:`can_communicate`.  Treat it as
        read-only; :attr:`version` counts the mutations.
        """
        return self._cell_of

    @property
    def is_partitioned(self) -> bool:
        """Whether a partition is currently installed."""
        return bool(self._cell_of)

    def partition(self, *groups: Sequence[ServerId]) -> None:
        """Install a partition consisting of the given disjoint groups.

        Members not named in any group form one extra implicit cell together.

        Raises:
            NetworkError: if a server appears in two groups or is unknown.
        """
        cell_of: dict[ServerId, int] = {}
        for cell_index, group in enumerate(groups):
            for server_id in group:
                if server_id not in self._members:
                    raise NetworkError(f"S{server_id} is not a cluster member")
                if server_id in cell_of:
                    raise NetworkError(f"S{server_id} appears in two partition groups")
                cell_of[server_id] = cell_index
        leftover_cell = len(groups)
        for server_id in sorted(self._members):
            cell_of.setdefault(server_id, leftover_cell)
        self._cell_of.clear()
        self._cell_of.update(cell_of)
        self._version += 1

    def heal(self) -> None:
        """Remove the current partition; all servers can communicate again."""
        self._cell_of.clear()
        self._version += 1

    def can_communicate(self, src: ServerId, dst: ServerId) -> bool:
        """Whether a message from *src* can currently reach *dst*."""
        if src not in self._members or dst not in self._members:
            raise NetworkError(f"unknown servers S{src} or S{dst}")
        if not self._cell_of:
            return True
        return self._cell_of[src] == self._cell_of[dst]

    def cell_members(self, server_id: ServerId) -> frozenset[ServerId]:
        """Servers currently reachable from *server_id* (including itself)."""
        if not self._cell_of:
            return self._members
        cell = self._cell_of[server_id]
        return frozenset(
            other for other, other_cell in self._cell_of.items() if other_cell == cell
        )

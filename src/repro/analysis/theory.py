"""Closed-form models of detection time and split-vote probability.

These models capture the trade-off the paper analyses in Section III: widening
Raft's randomized timeout range reduces the chance of concurrent candidates
(and hence split votes) but lengthens the time until the first follower
notices the leader is gone.  ESCAPE's prioritized timeouts make detection a
constant (the base time) independent of cluster size.

The models deliberately ignore second-order effects (heartbeat phase at the
moment of the crash, vote-message latency variance) -- they are cross-checks
for the simulator, not replacements for it.
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigurationError
from repro.common.types import Milliseconds


def expected_minimum_uniform(low: float, high: float, n: int) -> float:
    """Expected minimum of *n* i.i.d. uniforms on ``[low, high]``.

    ``E[min] = low + (high - low) / (n + 1)``.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if high < low:
        raise ConfigurationError(f"invalid range [{low}, {high}]")
    return low + (high - low) / (n + 1)


def raft_expected_detection_ms(
    timeout_min_ms: Milliseconds,
    timeout_max_ms: Milliseconds,
    followers: int,
    heartbeat_interval_ms: Milliseconds = 0.0,
) -> Milliseconds:
    """Expected Raft detection period after a leader crash.

    Each of the *followers* holds a timer drawn uniformly from the timeout
    range; the first to expire detects the failure, so the expectation is the
    expected minimum of the draws, minus (on average) half a heartbeat
    interval because the crash lands uniformly inside the heartbeat period.
    """
    base = expected_minimum_uniform(timeout_min_ms, timeout_max_ms, followers)
    return max(0.0, base - heartbeat_interval_ms / 2.0)


def escape_expected_detection_ms(
    base_time_ms: Milliseconds,
    heartbeat_interval_ms: Milliseconds = 0.0,
) -> Milliseconds:
    """Expected ESCAPE detection period: the groomed future leader's timeout.

    The highest-priority follower always holds the ``baseTime`` timeout
    (Eq. 1 with ``P = n``), so detection does not depend on the cluster size.
    """
    return max(0.0, base_time_ms - heartbeat_interval_ms / 2.0)


def simultaneous_timeout_probability(
    timeout_min_ms: Milliseconds,
    timeout_max_ms: Milliseconds,
    followers: int,
    window_ms: Milliseconds,
) -> float:
    """Probability that at least two follower timers expire within *window_ms*.

    A split vote needs at least two candidates close enough in time that the
    first candidate's vote requests have not yet reached (and reset) the rest
    of the cluster; *window_ms* is therefore of the order of one network
    latency.  The computation conditions on the earliest timer and asks
    whether any of the remaining ``followers - 1`` timers lands inside the
    window -- a standard order-statistics bound rather than an exact split
    probability (votes may still aggregate even with two candidates), so the
    simulator is expected to produce split-vote rates *below* this value.
    """
    if followers < 2:
        return 0.0
    spread = timeout_max_ms - timeout_min_ms
    if spread <= 0:
        return 1.0
    window = min(window_ms, spread)
    per_follower_miss = 1.0 - window / spread
    return 1.0 - per_follower_miss ** (followers - 1)


def split_vote_probability_two_candidates(cluster_size: int) -> float:
    """Probability that two simultaneous candidates split the vote.

    Both candidates vote for themselves; each of the remaining
    ``cluster_size - 2`` voters (the crashed leader excluded) independently
    votes for whichever request arrives first (probability 1/2 each, latencies
    being i.i.d.).  The vote splits when neither candidate reaches the quorum
    ``floor(n/2) + 1``.
    """
    if cluster_size < 3:
        return 0.0
    voters = cluster_size - 1 - 2  # exclude the crashed leader and both candidates
    quorum = cluster_size // 2 + 1
    split_probability = 0.0
    for votes_for_first in range(voters + 1):
        probability = math.comb(voters, votes_for_first) * 0.5**voters
        first_total = 1 + votes_for_first
        second_total = 1 + (voters - votes_for_first)
        if first_total < quorum and second_total < quorum:
            split_probability += probability
    return split_probability

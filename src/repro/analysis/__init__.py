"""Analytical models backing the simulator's results.

The closed-form models in :mod:`repro.analysis.theory` predict the detection
period and the split-vote probability of Raft's randomized election timeouts,
and the detection period of ESCAPE's prioritized timeouts.  They are used by
tests as an independent cross-check of the simulator (the measured averages
must track the analytic predictions) and by the documentation to explain the
trade-off the paper's Section III describes.
"""

from repro.analysis.theory import (
    escape_expected_detection_ms,
    expected_minimum_uniform,
    raft_expected_detection_ms,
    split_vote_probability_two_candidates,
    simultaneous_timeout_probability,
)

__all__ = [
    "escape_expected_detection_ms",
    "expected_minimum_uniform",
    "raft_expected_detection_ms",
    "simultaneous_timeout_probability",
    "split_vote_probability_two_candidates",
]

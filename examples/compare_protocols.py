#!/usr/bin/env python3
"""Compare Raft, Z-Raft and ESCAPE leader-failover time at several scales.

A laptop-sized version of the paper's Figure 9 / Figure 11 comparisons: for
each protocol and cluster size the script runs a number of independent
leader-crash episodes and prints the average out-of-service time, the p95, and
how often Raft suffered split votes.

Run with::

    python examples/compare_protocols.py [--runs N] [--sizes 8,16,32] [--loss 0.2]
"""

from __future__ import annotations

import argparse

from repro.cluster import ElectionScenario
from repro.metrics import MeasurementSet, render_table, summarize


def compare(
    sizes: list[int], runs: int, loss: float, seed: int
) -> str:
    rows = []
    for size in sizes:
        cells: dict[str, MeasurementSet] = {}
        for protocol in ("raft", "zraft", "escape"):
            scenario = ElectionScenario(
                protocol=protocol,
                cluster_size=size,
                loss_rate=loss,
                workload_interval_ms=250.0 if loss > 0 else 0.0,
            )
            cells[protocol] = MeasurementSet(
                scenario.run_many(runs, base_seed=seed), label=protocol
            )
        raft_summary = summarize(cells["raft"].totals_ms())
        escape_summary = summarize(cells["escape"].totals_ms())
        zraft_summary = summarize(cells["zraft"].totals_ms())
        reduction = 100.0 * (raft_summary.mean - escape_summary.mean) / raft_summary.mean
        rows.append(
            [
                size,
                f"{raft_summary.mean:.0f} / {raft_summary.p95:.0f}",
                f"{zraft_summary.mean:.0f} / {zraft_summary.p95:.0f}",
                f"{escape_summary.mean:.0f} / {escape_summary.p95:.0f}",
                f"{100 * cells['raft'].split_vote_fraction():.0f}%",
                f"{100 * cells['escape'].split_vote_fraction():.0f}%",
                f"{reduction:.1f}%",
            ]
        )
    return render_table(
        headers=[
            "servers",
            "Raft mean/p95 (ms)",
            "Z-Raft mean/p95 (ms)",
            "ESCAPE mean/p95 (ms)",
            "Raft splits",
            "ESCAPE splits",
            "ESCAPE vs Raft",
        ],
        rows=rows,
        title=f"Leader failover comparison ({runs} runs per cell, loss={loss:.0%})",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=20)
    parser.add_argument("--sizes", type=str, default="8,16,32")
    parser.add_argument("--loss", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    sizes = [int(part) for part in args.sizes.split(",") if part]
    print(compare(sizes, args.runs, args.loss, args.seed))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compare Raft, Z-Raft and ESCAPE leader-failover time at several scales.

A laptop-sized version of the paper's Figure 9 / Figure 11 comparisons: for
each protocol and cluster size the script runs a number of independent
leader-crash episodes and prints the average out-of-service time, the p95, and
how often Raft suffered split votes.

Any protocol registered in ``repro.protocols`` can join the comparison
(``--protocols raft,raft-stagger,escape-noppf,escape``).

Run with::

    python examples/compare_protocols.py [--runs N] [--sizes 8,16,32] [--loss 0.2]
"""

from __future__ import annotations

import argparse

from repro import protocols as protocol_registry
from repro.cluster import ElectionScenario
from repro.metrics import MeasurementSet, render_table, summarize


def compare(
    sizes: list[int], runs: int, loss: float, seed: int, protocols: tuple[str, ...]
) -> str:
    rows = []
    for size in sizes:
        cells: dict[str, MeasurementSet] = {}
        for protocol in protocols:
            scenario = ElectionScenario(
                protocol=protocol,
                cluster_size=size,
                loss_rate=loss,
                workload_interval_ms=250.0 if loss > 0 else 0.0,
            )
            cells[protocol] = MeasurementSet(
                scenario.run_many(runs, base_seed=seed), label=protocol
            )
        summaries = {
            protocol: summarize(cells[protocol].totals_ms())
            for protocol in protocols
        }
        row: list[object] = [size]
        row += [
            f"{summaries[protocol].mean:.0f} / {summaries[protocol].p95:.0f}"
            for protocol in protocols
        ]
        row += [
            f"{100 * cells[protocol].split_vote_fraction():.0f}%"
            for protocol in protocols
        ]
        if {"raft", "escape"} <= set(protocols):
            reduction = (
                100.0
                * (summaries["raft"].mean - summaries["escape"].mean)
                / summaries["raft"].mean
            )
            row.append(f"{reduction:.1f}%")
        rows.append(row)
    headers = ["servers"]
    headers += [
        f"{protocol_registry.title(protocol)} mean/p95 (ms)"
        for protocol in protocols
    ]
    headers += [
        f"{protocol_registry.title(protocol)} splits" for protocol in protocols
    ]
    if {"raft", "escape"} <= set(protocols):
        headers.append("ESCAPE vs Raft")
    return render_table(
        headers=headers,
        rows=rows,
        title=f"Leader failover comparison ({runs} runs per cell, loss={loss:.0%})",
    )


def _protocol_list(value: str) -> tuple[str, ...]:
    names = [part.strip() for part in value.split(",") if part.strip()]
    for name in names:
        if not protocol_registry.is_registered(name):
            raise argparse.ArgumentTypeError(
                f"unknown protocol {name!r}; registered: "
                f"{', '.join(protocol_registry.names())}"
            )
        if not protocol_registry.get(name).guarantees_liveness:
            raise argparse.ArgumentTypeError(
                f"protocol {name!r} livelocks by design and never elects a "
                "leader; it cannot run in this comparison"
            )
    return tuple(names)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=20)
    parser.add_argument("--sizes", type=str, default="8,16,32")
    parser.add_argument("--loss", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--protocols",
        type=_protocol_list,
        default=protocol_registry.PAPER_PROTOCOLS,
        help=f"comma-separated registry names ({', '.join(protocol_registry.names())})",
    )
    args = parser.parse_args()
    sizes = [int(part) for part in args.sizes.split(",") if part]
    print(compare(sizes, args.runs, args.loss, args.seed, args.protocols))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Message-loss study: a laptop-sized version of the paper's Figure 11.

For each broadcast loss rate Δ the script measures the average leader-election
time of Raft, Z-Raft and ESCAPE in a 10-server cluster with an active client
workload (so lost heartbeats actually leave followers behind), and prints the
reduction each prioritized protocol achieves over Raft.

Run with::

    python examples/message_loss_study.py [--runs N] [--size 10]
"""

from __future__ import annotations

import argparse

from repro.experiments import fig11_message_loss, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=15)
    parser.add_argument("--size", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # One registry entry point runs any experiment programmatically; the
    # envelope carries the raw result, the rendered report and run metadata.
    run = run_experiment(
        "fig11",
        runs=args.runs,
        seed=args.seed,
        sizes=(args.size,),
        loss_rates=fig11_message_loss.PAPER_LOSS_RATES,
    )
    result = run.result
    print(run.report)
    print(f"\n({run.runs} runs in {run.elapsed_s:.1f} s, seed {run.seed})")

    print("\nTakeaway:")
    worst = max(fig11_message_loss.PAPER_LOSS_RATES)
    escape_gain = result.reduction_vs_raft("escape", args.size, worst)
    zraft_gain = result.reduction_vs_raft("zraft", args.size, worst)
    print(
        f"  at Δ={worst:.0%}, ESCAPE cuts the election time by {escape_gain:.1f}% vs Raft "
        f"(Z-Raft: {zraft_gain:.1f}%), because the probing patrol keeps the shortest "
        "timeout on a server that is still up to date."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: run one ESCAPE leader-failure episode and inspect it.

The script builds a 5-server ESCAPE cluster in the deterministic simulator,
lets it elect a leader, shows the configuration pool the Probing Patrol
Function has prepared (the "future leaders"), then crashes the leader and
prints the resulting failover timeline and measurement.

Run with::

    python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

from repro.cluster import ElectionScenario
from repro.escape.node import EscapeNode


def main(seed: int = 42) -> None:
    scenario = ElectionScenario(protocol="escape", cluster_size=5, trace=True)
    cluster, harness = scenario.build(seed)

    print("== starting a 5-server ESCAPE cluster ==")
    cluster.start_all()
    first_leader = harness.stabilize()
    print(f"initial leader: S{first_leader}\n")

    # Let a few heartbeat / PPF rounds run so the configuration pool settles.
    harness.run_for(1_000.0)

    print("== configuration pool groomed by the Probing Patrol Function ==")
    for node in cluster.nodes.values():
        assert isinstance(node, EscapeNode)
        marker = "(leader)" if node.node_id == first_leader else ""
        print(f"  {node.describe()} {marker}")
    leader_node = cluster.node(first_leader)
    assert isinstance(leader_node, EscapeNode) and leader_node.patrol is not None
    groomed = leader_node.patrol.groomed_future_leader()
    print(f"\ngroomed future leader: S{groomed}\n")

    print("== crashing the leader ==")
    measurement = harness.crash_leader_and_measure(seed=seed)
    print(f"detection period : {measurement.detection_ms:8.1f} ms")
    print(f"election period  : {measurement.election_ms:8.1f} ms")
    print(f"total OTS time   : {measurement.total_ms:8.1f} ms")
    print(f"campaigns        : {measurement.campaign_count}")
    print(f"split vote       : {measurement.split_vote}")
    print(f"new leader       : S{measurement.winner_id} (term {measurement.winner_term})\n")

    print("== election timeline (trace excerpt) ==")
    interesting = (
        "cluster.crash",
        "election.timeout",
        "election.start",
        "election.won",
        "role.change",
    )
    shown = 0
    for record in cluster.world.tracer:
        if record.category in interesting and record.time_ms >= measurement.crash_time_ms:
            print("  " + record.describe())
            shown += 1
            if shown >= 25:
                break

    harness.assert_at_most_one_leader_per_term()
    print("\nelection safety check passed: at most one leader per term.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)

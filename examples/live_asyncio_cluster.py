#!/usr/bin/env python3
"""Run a live ESCAPE cluster on localhost UDP and survive a leader crash.

Unlike the other examples (which use the deterministic simulator), this one
runs the same protocol nodes on real sockets and wall-clock timers through the
asyncio runtime: it starts a 5-server cluster, replicates a few key-value
commands, crashes the leader, waits for the automatically elected successor,
and keeps serving writes.

Run with::

    python examples/live_asyncio_cluster.py [--protocol escape|raft|zraft]
"""

from __future__ import annotations

import argparse
import asyncio

from repro.runtime import LocalAsyncCluster
from repro.statemachine.kvstore import GetCommand, PutCommand


async def run(protocol: str, base_port: int) -> None:
    cluster = LocalAsyncCluster(protocol=protocol, size=5, base_port=base_port, seed=11)
    await cluster.start()
    try:
        leader = await cluster.wait_for_leader(timeout_ms=10_000.0)
        print(f"initial leader: S{leader.node_id} (term {leader.current_term})")

        print("replicating a few key-value writes through the leader ...")
        for index in range(1, 4):
            await cluster.propose_and_wait(PutCommand(f"user:{index}", f"alice-{index}"))
        value = await cluster.propose_and_wait(GetCommand("user:2"))
        print(f"linearisable read of user:2 -> {value!r}")

        print("crashing the leader ...")
        crashed, new_leader, failover_ms = await cluster.crash_leader_and_wait(
            timeout_ms=15_000.0
        )
        print(
            f"S{crashed} crashed; S{new_leader.node_id} took over in {failover_ms:.0f} ms "
            f"(term {new_leader.current_term})"
        )

        print("writing through the new leader ...")
        await cluster.propose_and_wait(PutCommand("after-failover", True))
        value = await cluster.propose_and_wait(GetCommand("after-failover"))
        print(f"read back after failover -> {value!r}")
    finally:
        await cluster.shutdown()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--protocol", choices=("escape", "raft", "zraft"), default="escape"
    )
    parser.add_argument("--base-port", type=int, default=29400)
    args = parser.parse_args()
    asyncio.run(run(args.protocol, args.base_port))


if __name__ == "__main__":
    main()

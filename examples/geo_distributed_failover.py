#!/usr/bin/env python3
"""Geo-distributed failover: split votes across regions and how ESCAPE avoids them.

Section II-B of the paper observes that geo-distributed deployments -- fast
links inside a region, slow links between regions -- are especially prone to
split votes, because a candidate quickly gathers its local region's votes and
then starves candidates in other regions.  This example builds a 9-server
cluster spread over three regions with a two-tier latency model, repeatedly
crashes the leader, and compares Raft's and ESCAPE's failover behaviour.

It then runs the ``partition-flap`` chaos plan end-to-end on the same WAN
topology: the current leader is repeatedly cut off behind a partition and
healed again, while a client workload keeps proposing, and the steady-state
availability of each protocol is reported (see :mod:`repro.chaos`).

Run with::

    python examples/geo_distributed_failover.py [--runs N]
"""

from __future__ import annotations

import argparse

from repro.chaos import ChaosScenario, build_plan
from repro.cluster import ElectionHarness, ElectionObserver, build_cluster
from repro.common.config import ProtocolConfig
from repro.metrics import MeasurementSet, render_table, summarize
from repro.net.latency import GeoGroupLatency
from repro.net.specs import GeoLatencySpec

#: Three regions, three servers each.
REGIONS = {
    1: "us-east",
    2: "us-east",
    3: "us-east",
    4: "eu-west",
    5: "eu-west",
    6: "eu-west",
    7: "ap-south",
    8: "ap-south",
    9: "ap-south",
}


def run_protocol(protocol: str, runs: int, seed: int) -> MeasurementSet:
    measurements = MeasurementSet(label=protocol)
    for index in range(runs):
        run_seed = seed * 10_000 + index
        latency = GeoGroupLatency(
            regions=REGIONS, intra_ms=(5.0, 15.0), inter_ms=(120.0, 220.0)
        )
        observer = ElectionObserver()
        cluster = build_cluster(
            protocol=protocol,
            size=len(REGIONS),
            seed=run_seed,
            latency=latency,
            protocol_config=ProtocolConfig.paper_defaults(),
            listeners=(observer,),
            trace=False,
        )
        harness = ElectionHarness(cluster, observer)
        cluster.start_all()
        harness.stabilize()
        harness.run_for(1_000.0)
        measurements.add(harness.crash_leader_and_measure(seed=run_seed))
        harness.assert_at_most_one_leader_per_term()
    return measurements


def run_partition_flap_chaos(
    protocol: str, seed: int, horizon_ms: float
) -> "tuple[float, int, int]":
    """Run the partition-flap chaos plan on the 3-region WAN topology.

    Returns ``(availability, outages, dropped proposals)`` for one episode.
    """
    plan = build_plan("partition-flap", horizon_ms=horizon_ms, seed=seed)
    scenario = ChaosScenario(
        protocol=protocol,
        cluster_size=len(REGIONS),
        plan=plan,
        latency=GeoLatencySpec(
            region_count=3, intra_ms=(5.0, 15.0), inter_ms=(120.0, 220.0)
        ),
        workload_interval_ms=250.0,
    )
    measurement = scenario.run(seed)
    return (
        measurement.availability,
        measurement.outage_count,
        measurement.proposals_dropped,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=25)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--chaos-horizon-ms",
        type=float,
        default=60_000.0,
        help="simulated window for the partition-flap chaos phase",
    )
    args = parser.parse_args()

    rows = []
    for protocol in ("raft", "escape"):
        measurements = run_protocol(protocol, args.runs, args.seed)
        summary = summarize(measurements.totals_ms())
        rows.append(
            [
                protocol,
                f"{summary.mean:.0f}",
                f"{summary.p95:.0f}",
                f"{summary.maximum:.0f}",
                f"{100 * measurements.split_vote_fraction():.0f}%",
            ]
        )
    print(
        render_table(
            headers=["protocol", "mean (ms)", "p95 (ms)", "max (ms)", "split votes"],
            rows=rows,
            title=(
                "Geo-distributed failover: 9 servers in 3 regions, "
                f"{args.runs} leader crashes per protocol"
            ),
        )
    )

    print()
    chaos_rows = []
    for protocol in ("raft", "escape"):
        availability, outages, dropped = run_partition_flap_chaos(
            protocol, args.seed, args.chaos_horizon_ms
        )
        chaos_rows.append(
            [protocol, f"{100 * availability:.2f}%", outages, dropped]
        )
    print(
        render_table(
            headers=["protocol", "availability", "outages", "dropped proposals"],
            rows=chaos_rows,
            title=(
                "partition-flap chaos on the same WAN: leader isolated and "
                f"healed repeatedly over {args.chaos_horizon_ms / 1000.0:.0f} s"
            ),
        )
    )


if __name__ == "__main__":
    main()

"""Benchmark: sensitivity of ESCAPE to the priority-gap constant ``k`` (Eq. 1).

The paper recommends ``k`` at least twice the network latency; this sweep
shows why -- with a tiny ``k`` neighbouring priorities expire within one
round-trip of each other and extra campaigns appear, while a generous ``k``
keeps every election a single campaign.
"""

from __future__ import annotations

from repro.experiments import ablation_k_sweep


def test_ablation_k_sensitivity(benchmark, bench_runs, full_grids, bench_workers):
    k_values = ablation_k_sweep.DEFAULT_K_VALUES if full_grids else (50.0, 200.0, 500.0, 1000.0)

    def run_sweep():
        return ablation_k_sweep.run(
            runs=bench_runs,
            seed=6,
            cluster_size=16,
            k_values=k_values,
            workers=bench_workers,
        )

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(ablation_k_sweep.report(result))

    for k_ms in k_values:
        benchmark.extra_info[f"campaigns_at_k{int(k_ms)}"] = round(
            result.mean_campaigns_for(k_ms), 3
        )

    # With the paper's recommended gap (k >= 2x latency, here >= 400 ms) the
    # election should essentially always finish in a single campaign, and the
    # tiny-k settings must never need more campaigns than that on average ...
    generous = [k for k in k_values if k >= 400.0]
    tight = [k for k in k_values if k < 200.0]
    for k_ms in generous:
        assert result.mean_campaigns_for(k_ms) <= 1.5
    # ... while every configuration still converges on a leader.
    for k_ms in k_values:
        assert result.measurements_for(k_ms).convergence_fraction() == 1.0
    assert tight  # the sweep actually exercises the risky regime

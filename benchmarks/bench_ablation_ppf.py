"""Benchmark: PPF ablation (SCA-only / Z-Raft vs full ESCAPE under loss).

This is the design-choice ablation called out in DESIGN.md: it isolates how
much of ESCAPE's gain under message loss comes from the Probing Patrol
Function, by comparing Z-Raft (static priorities, no PPF) with full ESCAPE.
"""

from __future__ import annotations

from repro.experiments import ablation_ppf


def test_ablation_ppf_contribution(benchmark, bench_runs, full_grids, bench_workers):
    loss_rates = (0.0, 0.2, 0.4)
    cluster_size = 20 if not full_grids else 50

    def run_sweep():
        return ablation_ppf.run(
            runs=bench_runs,
            seed=5,
            cluster_size=cluster_size,
            loss_rates=loss_rates,
            # Pin the historical Z-Raft-vs-ESCAPE pair: the experiment's
            # default grid now also sweeps escape-noppf, which would change
            # both this benchmark's workload and what ppf_benefit measures,
            # breaking comparability of recorded numbers.
            protocols=("zraft", "escape"),
            workers=bench_workers,
        )

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(ablation_ppf.report(result))

    for loss in loss_rates:
        benchmark.extra_info[f"ppf_benefit_at_loss{int(loss * 100)}"] = round(
            result.ppf_benefit_percent(loss), 2
        )

    # Without faults the two protocols are close (the PPF has nothing to fix);
    # under heavy loss the PPF must not hurt, and the gap should not invert
    # badly in its absence.
    healthy_gap = abs(result.ppf_benefit_percent(0.0))
    assert healthy_gap < 35.0
    assert result.average_for("escape", 0.4) < result.average_for("zraft", 0.4) * 1.3

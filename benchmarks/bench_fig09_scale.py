"""Benchmark: regenerate Figure 9 (ESCAPE vs Raft at increasing cluster sizes).

The timed region runs the paired sweep; the report prints the per-scale CDF
summary and the average-reduction series the paper's right panel shows.
"""

from __future__ import annotations

from repro.experiments import fig09_scale, run_experiment


def test_fig09_scale_sweep(benchmark, bench_runs, full_grids, bench_workers):
    sizes = fig09_scale.PAPER_SIZES if full_grids else (8, 16, 32)

    def run_sweep():
        return run_experiment(
            "fig9", runs=bench_runs, seed=2, sizes=sizes, workers=bench_workers
        )

    run = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    result = run.result
    print()
    print(run.report)

    for size in sizes:
        benchmark.extra_info[f"reduction_at_{size}"] = round(result.reduction_for(size), 2)
        benchmark.extra_info[f"escape_max_ms_at_{size}"] = round(
            max(result.measurements_for("escape", size).totals_ms()), 1
        )

    # Paper shape: ESCAPE wins overall (and clearly at the largest scale where
    # Raft's split votes bite), finishes elections in well under the Raft
    # timeout ceiling, and never splits votes.  Per-size reductions at the
    # reduced run count are allowed a small noise margin.
    reductions = [result.reduction_for(size) for size in sizes]
    assert sum(reductions) / len(reductions) > 0.0
    assert result.reduction_for(max(sizes)) > -2.0
    for size in sizes:
        assert result.reduction_for(size) > -10.0
        escape = result.measurements_for("escape", size)
        assert escape.split_vote_fraction() == 0.0
        assert max(escape.totals_ms()) < 2_200.0

"""Benchmark: the steady-state availability experiment (chaos plans).

Runs the ``avail`` sweep of :mod:`repro.experiments.exp_availability` -- the
paper's implied but never-measured end-to-end claim that faster elections buy
uptime -- under the repeated-leader-kill plan, and prints the per-protocol
availability table.  With ``REPRO_BENCH_FULL=1`` every catalog chaos plan is
swept over the full two-minute horizon, exercising the whole chaos subsystem
through the parallel sweep engine.
"""

from __future__ import annotations

from repro.chaos.plans import plan_names
from repro.experiments import exp_availability, run_experiment


def test_availability_chaos_sweep(benchmark, bench_runs, full_grids, bench_workers):
    plans = plan_names() if full_grids else (exp_availability.DEFAULT_PLAN,)
    horizon_ms = 120_000.0 if full_grids else 45_000.0

    def run_sweep():
        return [
            run_experiment(
                "avail",
                runs=bench_runs,
                seed=13,
                plan=plan,
                horizon_ms=horizon_ms,
                workers=bench_workers,
            )
            for plan in plans
        ]

    runs = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    results = [run.result for run in runs]
    print()
    for run in runs:
        print(run.report)
        print()

    for result in results:
        benchmark.extra_info[f"downtime_saved_{result.plan.name}"] = round(
            result.downtime_saved_vs_raft("escape"), 2
        )

    # Aggregated over the plans, with one stray run of slack so a reduced-run
    # sample cannot fail by chance: ESCAPE never spends more of the horizon
    # leaderless than Raft -- steady-state availability is the end-to-end
    # quantity its faster elections are supposed to buy.
    raft_down = sum(
        result.set_for("raft").mean_unavailability() for result in results
    )
    escape_down = sum(
        result.set_for("escape").mean_unavailability() for result in results
    )
    assert escape_down <= raft_down + 1.0 / bench_runs

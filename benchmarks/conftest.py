"""Shared configuration for the benchmark harness.

Every benchmark regenerates one figure of the paper's evaluation on a reduced
budget (fewer runs / smaller cluster-size grid than the paper's 1000-run
sweeps) so the whole suite stays laptop-friendly.  The knobs below can be
raised through environment variables for a full-fidelity reproduction:

* ``REPRO_BENCH_RUNS``    -- independent runs per data point (default 10)
* ``REPRO_BENCH_FULL``    -- set to ``1`` to use the paper's full cluster-size
  and parameter grids instead of the reduced ones.
* ``REPRO_BENCH_WORKERS`` -- worker processes for the sweep engine (default 1;
  ``0`` uses one worker per CPU).  Results are seed-identical at any count.
"""

from __future__ import annotations

import os

import pytest

DEFAULT_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "10"))
FULL_GRIDS = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
DEFAULT_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


@pytest.fixture(scope="session")
def bench_runs() -> int:
    """Number of measured runs per data point."""
    return DEFAULT_RUNS


@pytest.fixture(scope="session")
def full_grids() -> bool:
    """Whether to sweep the paper's full parameter grids."""
    return FULL_GRIDS


@pytest.fixture(scope="session")
def bench_workers() -> int | None:
    """Sweep-engine worker count (``None`` means one per CPU)."""
    return None if DEFAULT_WORKERS == 0 else DEFAULT_WORKERS

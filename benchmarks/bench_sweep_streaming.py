"""Measure the streaming sweep engine: throughput, parent memory, IPC weight.

Subprocess-runnable on purpose: ``resource.getrusage`` reports a process-wide
*high-water* RSS, so the only clean way to compare the raw and streaming
sweep paths is to run each one in a fresh interpreter and read its own
high-water mark at exit.  ``benchmarks/ledger.py record experiments`` invokes
this script once per (config, path) and folds the JSON it prints into the
committed ``BENCH_experiments.json``.

Modes::

    # One sweep through one data path; prints episodes/sec + parent max RSS.
    python benchmarks/bench_sweep_streaming.py measure \
        --path streaming --sizes 256 --runs 2 --workers 1 --engine flat

    # Task-queue pickle weight of the lean (label, index, seed) work items
    # vs embedding the scenario in every item (what the engine used to ship).
    python benchmarks/bench_sweep_streaming.py pickle-bytes --sizes 8,16,1024
"""

from __future__ import annotations

import argparse
import json
import pickle
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))


def _parse_sizes(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part)


def _max_rss_mb() -> float:
    """This process's high-water RSS in MiB (Linux reports KiB)."""
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 if sys.platform != "darwin" else 1024.0 * 1024.0
    return peak_kb / divisor


def measure(args: argparse.Namespace) -> dict:
    """Run one fig9-xl-shaped sweep through one data path and time it."""
    from repro.experiments.fig09_scale import build_scenarios
    from repro.experiments.runner import run_sweep
    from repro.sim import engines

    engines.set_default_engine(args.engine)
    scenarios = build_scenarios(_parse_sizes(args.sizes), args.protocols.split(","))
    episodes = args.runs * len(scenarios)

    started = time.perf_counter()
    run_sweep(
        scenarios,
        runs=args.runs,
        seed=args.seed,
        workers=args.workers,
        streaming=args.path == "streaming",
        checkpoint=args.checkpoint,
    )
    elapsed = time.perf_counter() - started
    return {
        "path": args.path,
        "sizes": list(_parse_sizes(args.sizes)),
        "runs": args.runs,
        "workers": args.workers,
        "engine": args.engine,
        "episodes": episodes,
        "elapsed_s": round(elapsed, 4),
        "episodes_per_s": round(episodes / elapsed, 4),
        "parent_max_rss_mb": round(_max_rss_mb(), 2),
    }


def pickle_bytes(args: argparse.Namespace) -> dict:
    """Task-queue bytes per episode: lean work items vs embedded scenarios."""
    from repro.experiments.fig09_scale import build_scenarios
    from repro.experiments.runner import build_work_items

    scenarios = build_scenarios(_parse_sizes(args.sizes), args.protocols.split(","))
    items = build_work_items(scenarios, runs=args.runs, seed=0)
    lean = sum(len(pickle.dumps(item)) for item in items)
    # What each item would weigh if it still carried its scenario (the
    # pre-streaming engine pickled one scenario per episode into the queue).
    embedded = sum(
        len(pickle.dumps((item.label, scenarios[item.label], item.index, item.seed)))
        for item in items
    )
    return {
        "items": len(items),
        "lean_bytes_per_item": round(lean / len(items), 1),
        "embedded_bytes_per_item": round(embedded / len(items), 1),
        "reduction_x": round(embedded / lean, 2),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="benchmarks/bench_sweep_streaming.py",
        description="Streaming sweep engine micro-benchmarks (JSON to stdout).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("measure", help="time one sweep through one path")
    run.add_argument("--path", choices=("raw", "streaming"), required=True)
    run.add_argument("--sizes", default="256", help="comma-separated cluster sizes")
    run.add_argument("--runs", type=int, default=2)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--workers", type=int, default=1)
    run.add_argument("--engine", default="flat", choices=("classic", "flat"))
    run.add_argument("--protocols", default="raft,escape")
    run.add_argument("--checkpoint", default=None, metavar="DIR")

    weigh = commands.add_parser("pickle-bytes", help="work-item queue weight")
    weigh.add_argument("--sizes", default="8,16,32,64,128,256,512,1024")
    weigh.add_argument("--runs", type=int, default=4)
    weigh.add_argument("--protocols", default="raft,escape")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    result = measure(args) if args.command == "measure" else pickle_bytes(args)
    print(json.dumps(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())

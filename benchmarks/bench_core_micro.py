"""Micro-benchmarks for the core substrates and a single failover episode.

These are not paper figures; they track the cost of the building blocks the
figure-level sweeps are made of (event scheduling, log appends, one full
leader-failure episode per protocol), so performance regressions in the
simulator itself are visible separately from protocol-level changes.
"""

from __future__ import annotations

import pytest

from repro.cluster import ElectionScenario
from repro.sim.scheduler import EventScheduler
from repro.statemachine.kvstore import KeyValueStore, PutCommand
from repro.storage.log import ReplicatedLog


def test_scheduler_throughput(benchmark):
    def schedule_and_drain():
        scheduler = EventScheduler()
        for index in range(2_000):
            scheduler.call_after(float(index % 97), lambda: None)
        scheduler.run_until_idle()
        return scheduler.executed_count

    executed = benchmark(schedule_and_drain)
    assert executed == 2_000


def test_scheduler_cancel_churn_keeps_heap_bounded(benchmark):
    """Heartbeat-style timer churn: cancel + re-arm must not grow the heap.

    This is the hot path of every long election sweep; before heap compaction
    the cancelled entries accumulated for the whole run.
    """

    def churn():
        scheduler = EventScheduler()
        state = {"timer": None, "beats": 0}

        def heartbeat():
            if state["timer"] is not None:
                state["timer"].cancel()
            state["timer"] = scheduler.call_after(60_000.0, lambda: None)
            state["beats"] += 1
            if state["beats"] < 20_000:
                scheduler.call_after(1.0, heartbeat)

        scheduler.call_after(1.0, heartbeat)
        scheduler.run_until(25_000.0)
        return scheduler

    scheduler = benchmark(churn)
    benchmark.extra_info["final_heap_size"] = scheduler.heap_size
    benchmark.extra_info["compactions"] = scheduler.compaction_count
    assert scheduler.heap_size <= 128
    assert scheduler.compaction_count > 0


def test_log_append_and_merge_throughput(benchmark):
    def append_and_replay():
        log = ReplicatedLog()
        for _ in range(1_000):
            log.append_command(term=1, command="payload")
        replica = ReplicatedLog()
        replica.merge_entries(0, list(log))
        return replica.last_index

    assert benchmark(append_and_replay) == 1_000


def test_state_machine_apply_throughput(benchmark):
    commands = [PutCommand(f"key-{index % 32}", index) for index in range(2_000)]

    def apply_all():
        machine = KeyValueStore()
        for command in commands:
            machine.apply(command)
        return machine.applied_count

    assert benchmark(apply_all) == 2_000


@pytest.mark.parametrize("protocol", ["raft", "escape", "zraft"])
def test_single_failover_episode(benchmark, protocol):
    scenario = ElectionScenario(protocol=protocol, cluster_size=16)

    def run_episode():
        return scenario.run(seed=42)

    measurement = benchmark.pedantic(run_episode, rounds=3, iterations=1)
    benchmark.extra_info["total_ms"] = round(measurement.total_ms, 1)
    assert measurement.converged

"""Benchmark: regenerate Figure 11 (Raft / Z-Raft / ESCAPE under message loss).

Runs the three-protocol sweep over the paper's loss rates with an active
client workload and prints the per-cell averages plus the reductions relative
to Raft.
"""

from __future__ import annotations

from repro.experiments import fig11_message_loss


def test_fig11_message_loss_sweep(benchmark, bench_runs, full_grids, bench_workers):
    sizes = fig11_message_loss.PAPER_SIZES if full_grids else (10, 20)
    loss_rates = fig11_message_loss.PAPER_LOSS_RATES

    def run_sweep():
        return fig11_message_loss.run(
            runs=bench_runs, seed=4, sizes=sizes, loss_rates=loss_rates, workers=bench_workers
        )

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(fig11_message_loss.report(result))

    heaviest = max(loss_rates)
    for size in sizes:
        benchmark.extra_info[f"escape_reduction_at_{size}_loss40"] = round(
            result.reduction_vs_raft("escape", size, heaviest), 2
        )

    # Paper shape: ESCAPE beats Raft under heavy loss at every size, and --
    # aggregated over the sizes to keep the reduced-run benchmark stable --
    # the loss penalty hits Raft harder than ESCAPE.
    for size in sizes:
        assert result.average_for("escape", size, heaviest) < result.average_for(
            "raft", size, heaviest
        )
    raft_penalty = sum(
        result.average_for("raft", size, heaviest) - result.average_for("raft", size, 0.0)
        for size in sizes
    )
    escape_penalty = sum(
        result.average_for("escape", size, heaviest)
        - result.average_for("escape", size, 0.0)
        for size in sizes
    )
    assert raft_penalty > 0.0
    assert escape_penalty < raft_penalty

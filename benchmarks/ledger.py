"""The committed benchmark ledger: record and compare simulator performance.

The ledger makes the repo's performance trajectory *visible*: a recording run
measures episodes/sec on the single-failover micro-benchmark (per cluster
size, per engine, plus the flat/classic speedup) and per-experiment wall
time, and writes them to a JSON file that is committed next to the code
(``BENCH_core.json`` / ``BENCH_experiments.json``).  A compare run diffs two
ledgers and exits non-zero when any shared metric regressed by more than the
threshold (25% by default), so CI and future PRs can see their perf delta::

    PYTHONPATH=src python benchmarks/ledger.py record core --bench-json BENCH_core.json
    PYTHONPATH=src python benchmarks/ledger.py record experiments --bench-json BENCH_experiments.json
    PYTHONPATH=src python benchmarks/ledger.py compare BENCH_core.json candidate.json

Measurement methodology (the hard-won parts):

* engines are measured *interleaved* (classic rep, flat rep, classic rep, ...)
  so thermal throttling and background load bias neither side;
* each metric is the **second-highest** rate of ``--reps`` repetitions -- the
  maximum is noise-prone, the mean punishes one slow outlier;
* episodes run with ``trace=False`` (the sweep default); benchmarking with
  tracing on understates the flat engine by a large margin.

Absolute numbers are machine-specific -- comparing a laptop's candidate
against a CI baseline says nothing.  The committed ledgers document *this
repo's* trajectory on the machine that recorded them; the compare gate is for
same-machine before/after runs (and CI compares a ledger against itself as a
self-check).  The flat/classic *speedup* entries are the
machine-portable part.

Env knobs: ``REPRO_BENCH_LEDGER_REPS`` overrides ``--reps``;
``--quick`` shrinks the size grid and episode counts for smoke runs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

SCHEMA_VERSION = 1
DEFAULT_THRESHOLD = 0.25
DEFAULT_REPS = int(os.environ.get("REPRO_BENCH_LEDGER_REPS", "6"))

#: Cluster sizes of the single-failover micro-benchmark (``--quick`` uses the
#: reduced grid).  The flat engine's advantage grows with size and plateaus
#: around 4.3-4.5x, so the grid spans the curve rather than one point.
CORE_SIZES = (16, 64, 128, 256)
QUICK_CORE_SIZES = (8, 16)

ENGINES = ("classic", "flat")


# --------------------------------------------------------------------------- #
# Recording
# --------------------------------------------------------------------------- #
def _entry(name: str, metric: str, value: float, unit: str, higher_is_better: bool) -> dict:
    return {
        "name": name,
        "metric": metric,
        "value": round(value, 4),
        "unit": unit,
        "higher_is_better": higher_is_better,
    }


def _episodes_for(size: int, quick: bool) -> int:
    """Episodes per repetition: enough at small sizes to beat timer noise."""
    if quick:
        return 2
    return max(2, 256 // size)


def _measure_rate(scenario, episodes: int) -> float:
    """Episodes per second for *scenario* over *episodes* fresh seeds."""
    started = time.perf_counter()
    for seed in range(episodes):
        scenario.run(seed)
    elapsed = time.perf_counter() - started
    return episodes / elapsed


def _second_highest(rates: list[float]) -> float:
    ordered = sorted(rates)
    return ordered[-2] if len(ordered) >= 2 else ordered[-1]


def record_core(reps: int, quick: bool) -> dict:
    """Episodes/sec per (size, engine) on the single-failover micro."""
    from repro.cluster.scenarios import ElectionScenario

    sizes = QUICK_CORE_SIZES if quick else CORE_SIZES
    entries: list[dict] = []
    for size in sizes:
        base = ElectionScenario(protocol="raft", cluster_size=size)
        episodes = _episodes_for(size, quick)
        rates: dict[str, list[float]] = {engine: [] for engine in ENGINES}
        # Interleave engines inside every repetition so machine-load drift
        # hits both sides equally.
        for _ in range(reps):
            for engine in ENGINES:
                rates[engine].append(
                    _measure_rate(base.with_engine(engine), episodes)
                )
        best = {engine: _second_highest(rates[engine]) for engine in ENGINES}
        for engine in ENGINES:
            entries.append(
                _entry(
                    f"single-failover/size={size}/engine={engine}",
                    "episodes_per_s",
                    best[engine],
                    "1/s",
                    higher_is_better=True,
                )
            )
            print(
                f"  size={size:>4} engine={engine:<7} "
                f"{best[engine]:8.2f} episodes/s",
                flush=True,
            )
        speedup = best["flat"] / best["classic"]
        entries.append(
            _entry(
                f"single-failover/size={size}/speedup",
                "flat_over_classic",
                speedup,
                "x",
                higher_is_better=True,
            )
        )
        print(f"  size={size:>4} speedup {speedup:18.2f}x", flush=True)
    entries.extend(_record_obs_overhead(reps, quick))
    return _ledger("core", quick, reps, entries)


def _record_obs_overhead(reps: int, quick: bool) -> list[dict]:
    """Telemetry cost on a fig9 slice: episodes/sec with telemetry off vs on.

    The off/on scenarios are interleaved inside every repetition (same
    methodology as the engine comparison) and the ratio entry pins the
    contract that the *disabled* path is free: telemetry-off episodes must
    not regress against the committed baseline, and the on/off ratio
    documents what opting in costs (harvest + live node listener).
    """
    from repro.cluster.scenarios import ElectionScenario

    size = 8 if quick else 16
    episodes = _episodes_for(size, quick)
    entries: list[dict] = []
    for engine in ENGINES:
        base = ElectionScenario(
            protocol="escape", cluster_size=size
        ).with_engine(engine)
        variants = {"off": base, "on": base.with_telemetry()}
        rates: dict[str, list[float]] = {variant: [] for variant in variants}
        for _ in range(reps):
            for variant, scenario in variants.items():
                rates[variant].append(_measure_rate(scenario, episodes))
        best = {variant: _second_highest(rates[variant]) for variant in variants}
        for variant in variants:
            entries.append(
                _entry(
                    f"obs-overhead/size={size}/engine={engine}/telemetry={variant}",
                    "episodes_per_s",
                    best[variant],
                    "1/s",
                    higher_is_better=True,
                )
            )
        ratio = best["on"] / best["off"]
        entries.append(
            _entry(
                f"obs-overhead/size={size}/engine={engine}/ratio",
                "telemetry_on_over_off",
                ratio,
                "x",
                higher_is_better=True,
            )
        )
        print(
            f"  obs  size={size:>4} engine={engine:<7} "
            f"off {best['off']:8.2f}  on {best['on']:8.2f} episodes/s "
            f"({ratio:.2f}x)",
            flush=True,
        )
    return entries


def record_experiments(reps: int, quick: bool) -> dict:
    """Quick-mode wall time per registered experiment, per engine."""
    from repro.experiments import registry

    runs = 1 if quick else 2
    entries: list[dict] = []
    for name in registry.names():
        for engine in ENGINES:
            elapsed: list[float] = []
            profiles: list[dict] = []
            for _ in range(max(1, reps // 3)):
                run = registry.run_experiment(
                    name, runs=runs, seed=0, quick=True, workers=1, engine=engine
                )
                elapsed.append(run.elapsed_s)
                profiles.append(dict(run.profile))
            best = min(elapsed)
            entries.append(
                _entry(
                    f"experiment/{name}/engine={engine}",
                    "quick_wall_s",
                    best,
                    "s",
                    higher_is_better=False,
                )
            )
            # The envelope's phase profile rides along: where did the best
            # repetition's wall time go (parameter build, the sweep itself,
            # report rendering)?  Sub-millisecond phases sit below timer
            # noise and would make the relative regression gate flap, so
            # they are left out.
            best_profile = profiles[elapsed.index(best)]
            for phase, seconds in best_profile.items():
                if seconds < 0.001:
                    continue
                entries.append(
                    _entry(
                        f"experiment/{name}/engine={engine}/phase={phase}",
                        "quick_wall_s",
                        seconds,
                        "s",
                        higher_is_better=False,
                    )
                )
            print(f"  {name:<14} engine={engine:<7} {best:8.3f} s", flush=True)
    entries.extend(_record_workload_entries(quick))
    entries.extend(_record_sweep_entries(quick))
    return _ledger("experiments", quick, reps, entries)


def _record_workload_entries(quick: bool) -> list[dict]:
    """Simulated serving throughput: closed- vs open-loop ops/sec at s=16.

    Unlike every other ledger metric these are *simulated* quantities --
    committed ops per simulated second under the default chaos plan -- so
    they are deterministic per seed and machine-portable.  They document the
    client-side throughput the workload subsystem sustains and gate against
    semantic regressions (a scheduling or commit-tracking change that alters
    serving behaviour moves them; a slower laptop does not).
    """
    from repro.chaos.plans import build_plan
    from repro.workload.scenario import ThroughputScenario

    horizon_ms = 30_000.0 if quick else 60_000.0
    plan = build_plan("repeated-leader-kill", horizon_ms, seed=0)
    entries: list[dict] = []
    for label, workload in (("closed-loop", "closed-loop"), ("open-loop", "open-poisson")):
        scenario = ThroughputScenario(
            protocol="escape", cluster_size=16, plan=plan, workload=workload
        )
        measurement = scenario.run(seed=0)
        entries.append(
            _entry(
                f"workload/{label}/s=16",
                "ops_per_s",
                measurement.ops_per_s,
                "1/s",
                higher_is_better=True,
            )
        )
        print(
            f"  workload {label:<12} s=16 {measurement.ops_per_s:8.2f} ops/s "
            f"(simulated, deterministic)",
            flush=True,
        )
    return entries


def _sweep_bench(argv: list[str]) -> dict:
    """Run benchmarks/bench_sweep_streaming.py in a fresh interpreter.

    A subprocess per measurement because the parent-memory metric is a
    process-wide RSS *high-water* mark: only a fresh interpreter can attribute
    it to one sweep through one data path.
    """
    import subprocess

    script = Path(__file__).resolve().parent / "bench_sweep_streaming.py"
    completed = subprocess.run(
        [sys.executable, str(script), *argv],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(completed.stdout)


def _record_sweep_entries(quick: bool) -> list[dict]:
    """Streaming-engine metrics: scale throughput, parent RSS, IPC weight.

    Three stories, each one subprocess per data path:

    * ``sweep/scale`` -- episodes/sec on the fig9-xl tail (s=1024; the quick
      grid substitutes s=64), pinning that the streaming default costs no
      throughput at data-center scale;
    * ``sweep/memory`` -- parent high-water RSS over a many-episode sweep,
      where the raw path's O(runs) measurement list grows and the streaming
      path's O(labels) aggregates do not;
    * ``sweep/work-item`` -- task-queue pickle bytes per episode for the lean
      (label, index, seed) items vs embedding the scenario in every item.
    """
    entries: list[dict] = []
    scale_sizes = "64" if quick else "1024"
    memory_runs = "200" if quick else "3000"

    for path in ("raw", "streaming"):
        scale = _sweep_bench(
            ["measure", "--path", path, "--sizes", scale_sizes, "--runs", "2",
             "--workers", "1", "--engine", "flat"]
        )
        entries.append(
            _entry(
                f"sweep/scale/s={scale_sizes}/path={path}",
                "episodes_per_s",
                scale["episodes_per_s"],
                "1/s",
                higher_is_better=True,
            )
        )
        print(
            f"  sweep scale   s={scale_sizes:<4} path={path:<9} "
            f"{scale['episodes_per_s']:8.2f} episodes/s",
            flush=True,
        )
        memory = _sweep_bench(
            ["measure", "--path", path, "--sizes", "16", "--runs", memory_runs,
             "--workers", "1", "--engine", "flat"]
        )
        entries.append(
            _entry(
                f"sweep/memory/s=16/runs={memory_runs}/path={path}",
                "parent_max_rss_mb",
                memory["parent_max_rss_mb"],
                "MiB",
                higher_is_better=False,
            )
        )
        print(
            f"  sweep memory  runs={memory_runs:<5} path={path:<9} "
            f"{memory['parent_max_rss_mb']:8.2f} MiB high-water",
            flush=True,
        )

    weight = _sweep_bench(["pickle-bytes"])
    entries.append(
        _entry(
            "sweep/work-item/lean",
            "pickle_bytes_per_item",
            weight["lean_bytes_per_item"],
            "B",
            higher_is_better=False,
        )
    )
    entries.append(
        _entry(
            "sweep/work-item/embedded-scenario",
            "pickle_bytes_per_item",
            weight["embedded_bytes_per_item"],
            "B",
            higher_is_better=False,
        )
    )
    entries.append(
        _entry(
            "sweep/work-item/reduction",
            "embedded_over_lean",
            weight["reduction_x"],
            "x",
            higher_is_better=True,
        )
    )
    print(
        f"  sweep work-item {weight['lean_bytes_per_item']:.1f} B lean vs "
        f"{weight['embedded_bytes_per_item']:.1f} B embedded "
        f"({weight['reduction_x']:.2f}x lighter)",
        flush=True,
    )
    return entries


def _ledger(suite: str, quick: bool, reps: int, entries: list[dict]) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "quick": quick,
        "reps": reps,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "entries": entries,
    }


# --------------------------------------------------------------------------- #
# Comparing
# --------------------------------------------------------------------------- #
def compare(baseline: dict, candidate: dict, threshold: float) -> int:
    """Report per-metric deltas; return the number of >threshold regressions."""
    baseline_by_key = {
        (entry["name"], entry["metric"]): entry for entry in baseline["entries"]
    }
    regressions = 0
    for entry in candidate["entries"]:
        key = (entry["name"], entry["metric"])
        before = baseline_by_key.pop(key, None)
        if before is None:
            print(f"  NEW        {entry['name']} ({entry['metric']})")
            continue
        old, new = before["value"], entry["value"]
        if old == 0:
            delta = 0.0
        elif entry["higher_is_better"]:
            delta = (new - old) / old
        else:
            delta = (old - new) / old  # positive == faster (improvement)
        regressed = delta < -threshold
        regressions += regressed
        marker = "REGRESSION" if regressed else ("improved" if delta > threshold else "ok")
        print(
            f"  {marker:<10} {entry['name']} ({entry['metric']}): "
            f"{old:g} -> {new:g} ({delta:+.1%})"
        )
    for name, metric in sorted(baseline_by_key):
        print(f"  MISSING    {name} ({metric}) -- present in baseline only")
    return regressions


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="benchmarks/ledger.py",
        description="Record or compare the committed benchmark ledger.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser("record", help="measure and write a ledger")
    record.add_argument("suite", choices=("core", "experiments"))
    record.add_argument(
        "--bench-json",
        metavar="PATH",
        required=True,
        help="ledger file to write (e.g. BENCH_core.json)",
    )
    record.add_argument(
        "--reps",
        type=int,
        default=DEFAULT_REPS,
        help=f"repetitions per metric (default {DEFAULT_REPS}; "
        "also REPRO_BENCH_LEDGER_REPS)",
    )
    record.add_argument(
        "--quick",
        action="store_true",
        help="reduced grid for smoke runs (CI); do not commit quick ledgers",
    )

    diff = commands.add_parser(
        "compare", help="diff two ledgers; exit 1 on >threshold regressions"
    )
    diff.add_argument("baseline", metavar="BASELINE_JSON")
    diff.add_argument("candidate", metavar="CANDIDATE_JSON")
    diff.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"relative regression tolerance (default {DEFAULT_THRESHOLD})",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "record":
        print(f"recording {args.suite} ledger (reps={args.reps}, quick={args.quick})")
        recorder = record_core if args.suite == "core" else record_experiments
        ledger = recorder(args.reps, args.quick)
        Path(args.bench_json).write_text(json.dumps(ledger, indent=2) + "\n")
        print(f"wrote {args.bench_json} ({len(ledger['entries'])} entries)")
        return 0

    baseline = json.loads(Path(args.baseline).read_text())
    candidate = json.loads(Path(args.candidate).read_text())
    if baseline.get("suite") != candidate.get("suite"):
        print(
            f"cannot compare suites {baseline.get('suite')!r} and "
            f"{candidate.get('suite')!r}"
        )
        return 2
    print(
        f"comparing {args.candidate} against {args.baseline} "
        f"(threshold {args.threshold:.0%})"
    )
    regressions = compare(baseline, candidate, args.threshold)
    if regressions:
        print(f"{regressions} metric(s) regressed by more than {args.threshold:.0%}")
        return 1
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

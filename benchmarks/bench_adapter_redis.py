"""Benchmark: the Section IV-C extension (ESCAPE applied to Redis failover).

Regenerates the adapter comparison table: stock Redis replica election vs the
ESCAPE-groomed variant as the replicas' rank information degrades.
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_adapter_redis_failover(benchmark, bench_runs, full_grids):
    runs = max(200, bench_runs * 20)

    def run_sweep():
        return run_experiment("adapter-redis", runs=runs, seed=7)

    run = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    result = run.result
    print()
    print(run.report)

    for confusion in result.confusion_levels:
        benchmark.extra_info[f"reduction_at_confusion{int(confusion * 100)}"] = round(
            result.escape_reduction_for(confusion), 2
        )

    # The groomed variant never collides and never loses to the stock
    # mechanism; its advantage grows as rank information degrades.
    for confusion in result.confusion_levels:
        groomed = result.summary_for(confusion, "escape-redis")
        assert groomed["collision_rate"] == 0.0
        assert result.escape_reduction_for(confusion) >= 0.0
    worst = max(result.confusion_levels)
    best = min(result.confusion_levels)
    assert result.escape_reduction_for(worst) >= result.escape_reduction_for(best) - 5.0

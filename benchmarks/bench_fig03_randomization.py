"""Benchmark: regenerate Figure 3 (Raft election-time CDF vs timeout randomness).

The timed region executes the full sweep (5-server Raft cluster, every timeout
range of Section III); the resulting series is printed in the same layout the
paper plots and key points are attached to the benchmark's ``extra_info``.

A second benchmark runs the identical sweep sequentially and through the
parallel engine, records the wall-clock speedup, and asserts the two paths
return byte-identical measurements.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from repro.experiments import fig03_randomization
from repro.metrics.stats import fraction_at_or_below


def test_fig03_randomization_sweep(benchmark, bench_runs, full_grids, bench_workers):
    ranges = (
        fig03_randomization.PAPER_TIMEOUT_RANGES
        if full_grids
        else fig03_randomization.PAPER_TIMEOUT_RANGES[:4]
    )

    def run_sweep():
        return fig03_randomization.run(
            runs=bench_runs, seed=0, timeout_ranges=ranges, workers=bench_workers
        )

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(fig03_randomization.report(result))

    narrow = result.measurements_for(ranges[0]).totals_ms()
    wide = result.measurements_for(ranges[-1]).totals_ms()
    benchmark.extra_info["narrow_range_split_fraction"] = result.measurements_for(
        ranges[0]
    ).split_vote_fraction()
    benchmark.extra_info["narrow_over_3500ms"] = 1 - fraction_at_or_below(narrow, 3_500.0)
    benchmark.extra_info["wide_over_3500ms"] = 1 - fraction_at_or_below(wide, 3_500.0)
    # Paper shape: with little randomness a visible fraction of elections
    # drags past 3.5 s; wide randomization removes that tail.
    assert benchmark.extra_info["wide_over_3500ms"] <= benchmark.extra_info[
        "narrow_over_3500ms"
    ] + 0.2


def test_fig03_parallel_sweep_speedup(benchmark, bench_runs):
    """Same sweep, sequential vs parallel: identical results, less wall clock."""
    ranges = fig03_randomization.PAPER_TIMEOUT_RANGES[:4]
    workers = min(4, os.cpu_count() or 1)
    runs = max(bench_runs, 10)

    started = time.perf_counter()
    sequential = fig03_randomization.run(
        runs=runs, seed=0, timeout_ranges=ranges, workers=1
    )
    sequential_s = time.perf_counter() - started

    def run_parallel():
        return fig03_randomization.run(
            runs=runs, seed=0, timeout_ranges=ranges, workers=workers
        )

    parallel = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    parallel_s = benchmark.stats.stats.mean

    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["sequential_s"] = round(sequential_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 3)
    benchmark.extra_info["speedup"] = round(sequential_s / parallel_s, 2)
    print(
        f"\nsequential {sequential_s:.2f}s vs parallel({workers}) {parallel_s:.2f}s "
        f"-> speedup {sequential_s / parallel_s:.2f}x"
    )

    # Determinism is a hard guarantee; speedup is hardware-dependent, so it
    # is only asserted loosely (parallel must not collapse), and only where
    # compute can dominate pool start-up: multiple CPUs and cheap fork
    # workers (spawn pays a per-worker interpreter boot that swamps a
    # 10-run sweep).
    for timeout_range in ranges:
        assert (
            parallel.measurements_for(timeout_range).measurements
            == sequential.measurements_for(timeout_range).measurements
        )
    if workers > 1 and "fork" in multiprocessing.get_all_start_methods():
        # 2.0x tolerates CPU contention on loaded or low-core runners; the
        # real signal is the speedup recorded in extra_info above.
        assert parallel_s < sequential_s * 2.0

"""Benchmark: regenerate Figure 3 (Raft election-time CDF vs timeout randomness).

The timed region executes the full sweep (5-server Raft cluster, every timeout
range of Section III); the resulting series is printed in the same layout the
paper plots and key points are attached to the benchmark's ``extra_info``.
"""

from __future__ import annotations

from repro.experiments import fig03_randomization
from repro.metrics.stats import fraction_at_or_below


def test_fig03_randomization_sweep(benchmark, bench_runs, full_grids):
    ranges = (
        fig03_randomization.PAPER_TIMEOUT_RANGES
        if full_grids
        else fig03_randomization.PAPER_TIMEOUT_RANGES[:4]
    )

    def run_sweep():
        return fig03_randomization.run(
            runs=bench_runs, seed=0, timeout_ranges=ranges
        )

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(fig03_randomization.report(result))

    narrow = result.measurements_for(ranges[0]).totals_ms()
    wide = result.measurements_for(ranges[-1]).totals_ms()
    benchmark.extra_info["narrow_range_split_fraction"] = result.measurements_for(
        ranges[0]
    ).split_vote_fraction()
    benchmark.extra_info["narrow_over_3500ms"] = 1 - fraction_at_or_below(narrow, 3_500.0)
    benchmark.extra_info["wide_over_3500ms"] = 1 - fraction_at_or_below(wide, 3_500.0)
    # Paper shape: with little randomness a visible fraction of elections
    # drags past 3.5 s; wide randomization removes that tail.
    assert benchmark.extra_info["wide_over_3500ms"] <= benchmark.extra_info[
        "narrow_over_3500ms"
    ] + 0.2

"""Benchmark: regenerate Figure 4 (average Raft election time vs randomness).

Prints the averaged series of Figure 4 (including the detection/election
decomposition that explains the trade-off of Section III).
"""

from __future__ import annotations

from repro.experiments import fig04_randomization_average


def test_fig04_average_vs_randomness(benchmark, bench_runs, full_grids, bench_workers):
    ranges = (
        fig04_randomization_average.PAPER_TIMEOUT_RANGES
        if full_grids
        else fig04_randomization_average.PAPER_TIMEOUT_RANGES[:4]
    )

    def run_sweep():
        return fig04_randomization_average.run(
            runs=bench_runs, seed=1, timeout_ranges=ranges, workers=bench_workers
        )

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(fig04_randomization_average.report(result))

    benchmark.extra_info["averages_ms"] = dict(result.as_series())
    # The detection component must grow monotonically with the randomness,
    # which is the cost side of the paper's trade-off.
    detections = list(result.average_detection_ms)
    assert all(b >= a - 100.0 for a, b in zip(detections, detections[1:]))

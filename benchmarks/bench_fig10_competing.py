"""Benchmark: regenerate Figure 10 (election time vs competing-candidate phases).

Prints the detection/election decomposition for every (cluster size, phases)
cell and records ESCAPE's reduction at the heaviest contention level.
"""

from __future__ import annotations

from repro.experiments import fig10_competing_candidates


def test_fig10_competing_candidate_phases(benchmark, bench_runs, full_grids, bench_workers):
    sizes = fig10_competing_candidates.PAPER_SIZES if full_grids else (8, 16)
    phases = fig10_competing_candidates.PAPER_PHASES

    def run_sweep():
        return fig10_competing_candidates.run(
            runs=bench_runs, seed=3, sizes=sizes, phases=phases, workers=bench_workers
        )

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(fig10_competing_candidates.report(result))

    for size in sizes:
        benchmark.extra_info[f"reduction_3cc_at_{size}"] = round(
            result.reduction_for(size, 3), 2
        )

    # Paper shape: Raft's time grows with the number of phases (roughly one
    # election timeout per phase) while ESCAPE stays flat, so the reduction at
    # three phases is large (paper: 44.9-74.3 %).
    for size in sizes:
        raft_flat = result.average_for("raft", size, 0)
        raft_contended = result.average_for("raft", size, 3)
        escape_contended = result.average_for("escape", size, 3)
        assert raft_contended > raft_flat + 2_000.0
        assert result.reduction_for(size, 3) > 30.0
        assert escape_contended < 4_000.0

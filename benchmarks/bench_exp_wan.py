"""Benchmark: the WAN experiment (catalog conditions, three protocols).

Runs the region-split sweep of :mod:`repro.experiments.exp_wan` -- the
Section II-B geo-distributed setting the paper describes but never measures --
and prints the per-condition averages.  With ``REPRO_BENCH_FULL=1`` the grid
expands to every catalog condition, exercising the whole scenario catalog
through the parallel sweep engine.
"""

from __future__ import annotations

from repro.cluster.catalog import condition_names
from repro.experiments import exp_wan, run_experiment


def test_wan_catalog_sweep(benchmark, bench_runs, full_grids, bench_workers):
    conditions = condition_names() if full_grids else exp_wan.WAN_CONDITIONS
    cluster_size = exp_wan.DEFAULT_CLUSTER_SIZE if full_grids else 6

    def run_sweep():
        return run_experiment(
            "wan",
            runs=bench_runs,
            seed=11,
            conditions=conditions,
            cluster_size=cluster_size,
            workers=bench_workers,
        )

    run = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    result = run.result
    print()
    print(run.report)

    for condition in conditions:
        benchmark.extra_info[f"escape_reduction_{condition}"] = round(
            result.reduction_vs_raft("escape", condition), 2
        )

    # Every episode converged, and -- aggregated over the conditions, with
    # one stray episode of slack so a reduced-run sample cannot fail by
    # chance -- ESCAPE splits votes no more often than Raft: under WAN
    # splits, split votes are exactly what ESCAPE's priority-driven
    # elections are designed to avoid (Section II-B).
    for condition in conditions:
        for protocol in exp_wan.PROTOCOLS:
            measurements = result.measurements_for(protocol, condition)
            assert all(m.converged for m in measurements)
    raft_splits = sum(
        result.split_vote_fraction_for("raft", condition) for condition in conditions
    )
    escape_splits = sum(
        result.split_vote_fraction_for("escape", condition)
        for condition in conditions
    )
    assert escape_splits <= raft_splits + 1.0 / bench_runs

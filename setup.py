"""Compatibility shim for legacy editable installs.

All metadata lives in ``pyproject.toml``; modern pip uses it directly via
PEP 660.  This shim only exists so ``pip install -e . --no-use-pep517``
still works on toolchains too old to build editable wheels (setuptools
without the ``wheel`` package).
"""

from setuptools import setup

setup()

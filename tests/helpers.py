"""Shared test helpers: a fake node environment and small builders."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.common.config import ClusterConfig, ProtocolConfig, RaftTimeoutConfig, ScaParameters
from repro.common.types import Milliseconds, ServerId


@dataclass
class SentMessage:
    """A message a node handed to its (fake) environment."""

    dst: ServerId
    payload: Any


@dataclass
class FakeTimer:
    """A timer armed through the fake environment; tests fire it explicitly."""

    delay_ms: Milliseconds
    callback: Callable[[], None]
    label: str
    armed_at_ms: Milliseconds
    cancelled: bool = False

    @property
    def due_at_ms(self) -> Milliseconds:
        return self.armed_at_ms + self.delay_ms

    def cancel(self) -> None:
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback (tests decide when a timer 'expires')."""
        if not self.cancelled:
            self.callback()


@dataclass
class FakeEnvironment:
    """Hand-driven environment for unit-testing protocol nodes.

    Messages are collected in :attr:`sent`; timers are collected in
    :attr:`timers` and only fire when the test calls :meth:`fire_next_timer`
    (or fires a specific timer).  Time advances only via :meth:`advance`.
    """

    node_id: ServerId = 1
    time_ms: Milliseconds = 0.0
    sent: list[SentMessage] = field(default_factory=list)
    timers: list[FakeTimer] = field(default_factory=list)
    traces: list[tuple[str, dict[str, Any]]] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # --- Environment protocol -------------------------------------------------
    @property
    def rng(self) -> random.Random:
        return self._rng

    def now(self) -> Milliseconds:
        return self.time_ms

    def send(self, dst: ServerId, message: Any) -> None:
        self.sent.append(SentMessage(dst, message))

    def broadcast(
        self, targets: Sequence[ServerId], payload_factory: Callable[[ServerId], Any]
    ) -> None:
        for dst in targets:
            self.sent.append(SentMessage(dst, payload_factory(dst)))

    def set_timer(
        self, delay_ms: Milliseconds, callback: Callable[[], None], label: str = ""
    ) -> FakeTimer:
        # Mirror SimNodeEnvironment's labelling so tests read the same way
        # against either environment.
        timer = FakeTimer(
            delay_ms=delay_ms,
            callback=callback,
            label=f"S{self.node_id}:{label}",
            armed_at_ms=self.time_ms,
        )
        self.timers.append(timer)
        return timer

    def cancel_timer(self, handle: FakeTimer) -> None:
        handle.cancel()

    def trace(self, category: str, **detail: Any) -> None:
        self.traces.append((category, detail))

    # --- test conveniences -----------------------------------------------------
    def advance(self, delta_ms: Milliseconds) -> None:
        """Advance the fake clock (does not fire timers)."""
        self.time_ms += delta_ms

    def pending_timers(self) -> list[FakeTimer]:
        """Timers that are armed and not cancelled."""
        return [timer for timer in self.timers if not timer.cancelled]

    def pending_timer_labels(self) -> list[str]:
        return [timer.label for timer in self.pending_timers()]

    def fire_next_timer(self, label_prefix: str | None = None) -> FakeTimer:
        """Fire the earliest pending timer (optionally filtered by label)."""
        candidates = [
            timer
            for timer in self.pending_timers()
            if label_prefix is None or timer.label.startswith(label_prefix)
        ]
        if not candidates:
            raise AssertionError(f"no pending timer matching {label_prefix!r}")
        timer = min(candidates, key=lambda item: item.due_at_ms)
        self.time_ms = max(self.time_ms, timer.due_at_ms)
        timer.cancel()  # a fired one-shot timer cannot fire again
        timer.callback()
        return timer

    def sent_to(self, dst: ServerId) -> list[Any]:
        """Payloads sent to one destination."""
        return [item.payload for item in self.sent if item.dst == dst]

    def sent_payloads(self, payload_type: type | None = None) -> list[Any]:
        """All sent payloads, optionally filtered by type."""
        payloads = [item.payload for item in self.sent]
        if payload_type is None:
            return payloads
        return [payload for payload in payloads if isinstance(payload, payload_type)]

    def clear_sent(self) -> None:
        self.sent.clear()


def small_cluster(n: int = 3) -> ClusterConfig:
    """A small cluster config used across node unit tests."""
    return ClusterConfig.of_size(n)


def fast_protocol_config(**overrides: Any) -> ProtocolConfig:
    """A protocol configuration with short, test-friendly timings."""
    defaults: dict[str, Any] = dict(
        heartbeat_interval_ms=10.0,
        vote_retry_interval_ms=20.0,
        raft_timeouts=RaftTimeoutConfig(100.0, 200.0),
        sca=ScaParameters(base_time_ms=100.0, k_ms=20.0),
    )
    defaults.update(overrides)
    return ProtocolConfig(**defaults)

"""Unit tests for the virtual clock and the discrete-event scheduler."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import EventScheduler


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now() == 0.0

    def test_advance_to_moves_forward(self):
        clock = VirtualClock()
        clock.advance_to(125.5)
        assert clock.now() == 125.5

    def test_advance_by_accumulates(self):
        clock = VirtualClock(10.0)
        clock.advance_by(5.0)
        clock.advance_by(2.5)
        assert clock.now() == 17.5

    def test_cannot_move_backwards(self):
        clock = VirtualClock(100.0)
        with pytest.raises(SimulationError):
            clock.advance_to(50.0)
        with pytest.raises(SimulationError):
            clock.advance_by(-1.0)

    def test_cannot_start_negative(self):
        with pytest.raises(SimulationError):
            VirtualClock(-1.0)


class TestSchedulerOrdering:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.call_after(30.0, lambda: order.append("c"))
        scheduler.call_after(10.0, lambda: order.append("a"))
        scheduler.call_after(20.0, lambda: order.append("b"))
        scheduler.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_insertion_order(self):
        scheduler = EventScheduler()
        order = []
        for name in ("first", "second", "third"):
            scheduler.call_at(50.0, lambda name=name: order.append(name))
        scheduler.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_clock_reflects_last_executed_event(self):
        scheduler = EventScheduler()
        scheduler.call_after(40.0, lambda: None)
        scheduler.run_until_idle()
        assert scheduler.now() == 40.0

    def test_events_scheduled_during_execution_run(self):
        scheduler = EventScheduler()
        seen = []

        def outer():
            seen.append("outer")
            scheduler.call_after(5.0, lambda: seen.append("inner"))

        scheduler.call_after(10.0, outer)
        scheduler.run_until_idle()
        assert seen == ["outer", "inner"]
        assert scheduler.now() == 15.0


class TestSchedulerCancellation:
    def test_cancelled_events_do_not_run(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.call_after(10.0, lambda: fired.append(1))
        handle.cancel()
        scheduler.run_until_idle()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        scheduler = EventScheduler()
        handle = scheduler.call_after(10.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert scheduler.pending_count == 0

    def test_pending_count_ignores_cancelled(self):
        scheduler = EventScheduler()
        keep = scheduler.call_after(5.0, lambda: None)
        drop = scheduler.call_after(6.0, lambda: None)
        drop.cancel()
        assert scheduler.pending_count == 1
        assert not keep.cancelled


class TestSchedulerRunModes:
    def test_run_until_executes_only_due_events(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.call_after(10.0, lambda: fired.append("early"))
        scheduler.call_after(100.0, lambda: fired.append("late"))
        scheduler.run_until(50.0)
        assert fired == ["early"]
        assert scheduler.now() == 50.0
        scheduler.run_until_idle()
        assert fired == ["early", "late"]

    def test_run_until_condition_stops_when_condition_holds(self):
        scheduler = EventScheduler()
        state = {"count": 0}
        for _ in range(10):
            scheduler.call_after(10.0 * (_ + 1), lambda: state.update(count=state["count"] + 1))
        satisfied = scheduler.run_until_condition(
            lambda: state["count"] >= 3, max_time_ms=1_000.0
        )
        assert satisfied
        assert state["count"] == 3

    def test_run_until_condition_times_out(self):
        scheduler = EventScheduler()
        scheduler.call_after(500.0, lambda: None)
        satisfied = scheduler.run_until_condition(lambda: False, max_time_ms=100.0)
        assert not satisfied
        assert scheduler.now() == 100.0

    def test_run_until_condition_true_immediately(self):
        scheduler = EventScheduler()
        assert scheduler.run_until_condition(lambda: True, max_time_ms=10.0)

    def test_step_returns_false_when_empty(self):
        assert EventScheduler().step() is False


class TestSchedulerSafety:
    def test_cannot_schedule_in_the_past(self):
        scheduler = EventScheduler()
        scheduler.call_after(10.0, lambda: None)
        scheduler.run_until_idle()
        with pytest.raises(SimulationError):
            scheduler.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().call_after(-1.0, lambda: None)

    def test_event_budget_stops_runaway_simulations(self):
        scheduler = EventScheduler(max_events=50)

        def reschedule():
            scheduler.call_after(1.0, reschedule)

        scheduler.call_after(1.0, reschedule)
        with pytest.raises(SimulationError, match="budget"):
            scheduler.run_until_idle()

    def test_executed_count_tracks_events(self):
        scheduler = EventScheduler()
        for _ in range(5):
            scheduler.call_after(1.0, lambda: None)
        scheduler.run_until_idle()
        assert scheduler.executed_count == 5

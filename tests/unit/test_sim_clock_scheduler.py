"""Unit tests for the virtual clock and the discrete-event scheduler."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import EventScheduler


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now() == 0.0

    def test_advance_to_moves_forward(self):
        clock = VirtualClock()
        clock.advance_to(125.5)
        assert clock.now() == 125.5

    def test_advance_by_accumulates(self):
        clock = VirtualClock(10.0)
        clock.advance_by(5.0)
        clock.advance_by(2.5)
        assert clock.now() == 17.5

    def test_cannot_move_backwards(self):
        clock = VirtualClock(100.0)
        with pytest.raises(SimulationError):
            clock.advance_to(50.0)
        with pytest.raises(SimulationError):
            clock.advance_by(-1.0)

    def test_cannot_start_negative(self):
        with pytest.raises(SimulationError):
            VirtualClock(-1.0)


class TestSchedulerOrdering:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.call_after(30.0, lambda: order.append("c"))
        scheduler.call_after(10.0, lambda: order.append("a"))
        scheduler.call_after(20.0, lambda: order.append("b"))
        scheduler.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_insertion_order(self):
        scheduler = EventScheduler()
        order = []
        for name in ("first", "second", "third"):
            scheduler.call_at(50.0, lambda name=name: order.append(name))
        scheduler.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_clock_reflects_last_executed_event(self):
        scheduler = EventScheduler()
        scheduler.call_after(40.0, lambda: None)
        scheduler.run_until_idle()
        assert scheduler.now() == 40.0

    def test_events_scheduled_during_execution_run(self):
        scheduler = EventScheduler()
        seen = []

        def outer():
            seen.append("outer")
            scheduler.call_after(5.0, lambda: seen.append("inner"))

        scheduler.call_after(10.0, outer)
        scheduler.run_until_idle()
        assert seen == ["outer", "inner"]
        assert scheduler.now() == 15.0


class TestSchedulerCancellation:
    def test_cancelled_events_do_not_run(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.call_after(10.0, lambda: fired.append(1))
        handle.cancel()
        scheduler.run_until_idle()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        scheduler = EventScheduler()
        handle = scheduler.call_after(10.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert scheduler.pending_count == 0

    def test_pending_count_ignores_cancelled(self):
        scheduler = EventScheduler()
        keep = scheduler.call_after(5.0, lambda: None)
        drop = scheduler.call_after(6.0, lambda: None)
        drop.cancel()
        assert scheduler.pending_count == 1
        assert not keep.cancelled


class TestSchedulerRunModes:
    def test_run_until_executes_only_due_events(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.call_after(10.0, lambda: fired.append("early"))
        scheduler.call_after(100.0, lambda: fired.append("late"))
        scheduler.run_until(50.0)
        assert fired == ["early"]
        assert scheduler.now() == 50.0
        scheduler.run_until_idle()
        assert fired == ["early", "late"]

    def test_run_until_condition_stops_when_condition_holds(self):
        scheduler = EventScheduler()
        state = {"count": 0}
        for _ in range(10):
            scheduler.call_after(10.0 * (_ + 1), lambda: state.update(count=state["count"] + 1))
        satisfied = scheduler.run_until_condition(
            lambda: state["count"] >= 3, max_time_ms=1_000.0
        )
        assert satisfied
        assert state["count"] == 3

    def test_run_until_condition_times_out(self):
        scheduler = EventScheduler()
        scheduler.call_after(500.0, lambda: None)
        satisfied = scheduler.run_until_condition(lambda: False, max_time_ms=100.0)
        assert not satisfied
        assert scheduler.now() == 100.0

    def test_run_until_condition_true_immediately(self):
        scheduler = EventScheduler()
        assert scheduler.run_until_condition(lambda: True, max_time_ms=10.0)

    def test_step_returns_false_when_empty(self):
        assert EventScheduler().step() is False


class TestSchedulerCompaction:
    def test_heap_stays_bounded_under_reschedule_churn(self):
        """The cancelled-event leak: re-arming a timer must not grow the heap.

        This is exactly the election-timer pattern -- every heartbeat cancels
        the previous timeout and schedules a new one.  Before compaction the
        heap held every cancelled entry until its (far-future) deadline
        reached the head, i.e. it grew linearly with simulated time.
        """
        scheduler = EventScheduler()
        state = {"timer": None, "beats": 0}

        def heartbeat():
            if state["timer"] is not None:
                state["timer"].cancel()
            # Far-future timeout: the lazy head-pop alone would never reach it.
            state["timer"] = scheduler.call_after(10_000.0, lambda: None)
            state["beats"] += 1
            if state["beats"] < 5_000:
                scheduler.call_after(1.0, heartbeat)

        scheduler.call_after(1.0, heartbeat)
        scheduler.run_until(6_000.0)
        assert state["beats"] == 5_000
        # One live timeout + one live heartbeat chain entry at most, and the
        # heap never retains more than ~2x the live entries after compaction.
        assert scheduler.pending_count <= 2
        assert scheduler.heap_size <= 128
        assert scheduler.compaction_count > 0

    def test_small_heaps_are_not_compacted(self):
        scheduler = EventScheduler(compact_min_size=64)
        handles = [scheduler.call_after(10.0, lambda: None) for _ in range(10)]
        for handle in handles:
            handle.cancel()
        assert scheduler.compaction_count == 0
        assert scheduler.pending_count == 0

    def test_pending_count_is_exact_through_compaction(self):
        scheduler = EventScheduler(compact_min_size=8)
        keep = [scheduler.call_after(float(i + 1), lambda: None) for i in range(50)]
        drop = [scheduler.call_after(float(i + 100), lambda: None) for i in range(51)]
        for handle in drop:
            handle.cancel()
        # Cancelled entries (51) outnumber live ones (50) -> compacted.
        assert scheduler.compaction_count >= 1
        assert scheduler.pending_count == 50
        assert scheduler.heap_size == 50
        for handle in keep[:20]:
            handle.cancel()
        assert scheduler.pending_count == 30

    def test_compaction_preserves_execution_order(self):
        """Same schedule-and-cancel pattern, compacting vs not: same order."""

        def run(compact_min_size):
            scheduler = EventScheduler(compact_min_size=compact_min_size)
            order = []
            handles = []
            for index in range(200):
                handles.append(
                    scheduler.call_after(
                        float(index % 17) + 1.0,
                        lambda index=index: order.append(index),
                    )
                )
            for index, handle in enumerate(handles):
                if index % 3 != 0:
                    handle.cancel()
            scheduler.run_until_idle()
            return order

        assert run(compact_min_size=8) == run(compact_min_size=10**9)

    def test_cancelling_an_executed_event_does_not_corrupt_accounting(self):
        scheduler = EventScheduler()
        handles = []

        def fire():
            pass

        for _ in range(5):
            handles.append(scheduler.call_after(1.0, fire))
        scheduler.run_until_idle()
        for handle in handles:
            handle.cancel()  # cancelling after execution must be a no-op
        assert scheduler.pending_count == 0
        assert scheduler.heap_size == 0

    def test_callback_cancelling_itself_is_harmless(self):
        scheduler = EventScheduler()
        state = {}

        def fire():
            state["handle"].cancel()

        state["handle"] = scheduler.call_after(1.0, fire)
        scheduler.call_after(2.0, lambda: None)
        scheduler.run_until_idle()
        assert scheduler.pending_count == 0


class TestSchedulerSafety:
    def test_cannot_schedule_in_the_past(self):
        scheduler = EventScheduler()
        scheduler.call_after(10.0, lambda: None)
        scheduler.run_until_idle()
        with pytest.raises(SimulationError):
            scheduler.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().call_after(-1.0, lambda: None)

    def test_event_budget_stops_runaway_simulations(self):
        scheduler = EventScheduler(max_events=50)

        def reschedule():
            scheduler.call_after(1.0, reschedule)

        scheduler.call_after(1.0, reschedule)
        with pytest.raises(SimulationError, match="budget"):
            scheduler.run_until_idle()

    def test_executed_count_tracks_events(self):
        scheduler = EventScheduler()
        for _ in range(5):
            scheduler.call_after(1.0, lambda: None)
        scheduler.run_until_idle()
        assert scheduler.executed_count == 5

"""Unit tests for ESCAPE configurations and the stochastic configuration assignment."""

import pytest

from repro.common.config import ScaParameters
from repro.common.errors import ConfigurationError
from repro.escape.configuration import ConfigStatus, Configuration
from repro.escape.sca import (
    assign_initial_configurations,
    follower_priority_ladder,
    validate_assignment,
)


class TestConfiguration:
    def test_fields_are_validated(self):
        with pytest.raises(ConfigurationError):
            Configuration(priority=0, timer_period_ms=100.0)
        with pytest.raises(ConfigurationError):
            Configuration(priority=1, timer_period_ms=0.0)
        with pytest.raises(ConfigurationError):
            Configuration(priority=1, timer_period_ms=100.0, conf_clock=-1)

    def test_with_clock_restamps_forward_only(self):
        config = Configuration(priority=3, timer_period_ms=2_000.0, conf_clock=4)
        fresher = config.with_clock(7)
        assert fresher.conf_clock == 7
        assert fresher.priority == 3
        with pytest.raises(ConfigurationError):
            config.with_clock(2)

    def test_is_fresher_than_compares_clocks(self):
        older = Configuration(priority=1, timer_period_ms=100.0, conf_clock=1)
        newer = Configuration(priority=2, timer_period_ms=100.0, conf_clock=5)
        assert newer.is_fresher_than(older)
        assert not older.is_fresher_than(newer)

    def test_describe_uses_paper_notation(self):
        config = Configuration(priority=3, timer_period_ms=2_000.0, conf_clock=17)
        assert config.describe() == "π(P=3, k=17, timeout=2000ms)"

    def test_config_status_validation(self):
        with pytest.raises(ConfigurationError):
            ConfigStatus(log_index=-1, timer_period_ms=100.0, conf_clock=0)
        status = ConfigStatus(log_index=3, timer_period_ms=100.0, conf_clock=2)
        assert status.log_index == 3


class TestInitialAssignment:
    def test_priority_equals_server_id(self):
        configs = assign_initial_configurations([1, 2, 3, 4, 5], ScaParameters(100.0, 10.0))
        assert {sid: config.priority for sid, config in configs.items()} == {
            1: 1, 2: 2, 3: 3, 4: 4, 5: 5,
        }

    def test_timeouts_follow_equation_one(self):
        # Paper example: n=10, baseTime=100, k=10 -> S2: 180ms, S10: 100ms.
        configs = assign_initial_configurations(
            list(range(1, 11)), ScaParameters(100.0, 10.0)
        )
        assert configs[2].timer_period_ms == 180.0
        assert configs[10].timer_period_ms == 100.0

    def test_all_initial_clocks_are_zero(self):
        configs = assign_initial_configurations([1, 2, 3], ScaParameters(100.0, 10.0))
        assert all(config.conf_clock == 0 for config in configs.values())

    def test_no_two_servers_share_a_configuration(self):
        configs = assign_initial_configurations(
            list(range(1, 33)), ScaParameters(1500.0, 500.0)
        )
        priorities = [config.priority for config in configs.values()]
        timeouts = [config.timer_period_ms for config in configs.values()]
        assert len(set(priorities)) == 32
        assert len(set(timeouts)) == 32
        validate_assignment(configs)

    def test_rejects_duplicate_or_out_of_range_ids(self):
        with pytest.raises(ConfigurationError):
            assign_initial_configurations([1, 1, 2], ScaParameters())
        with pytest.raises(ConfigurationError):
            assign_initial_configurations([1, 2, 7], ScaParameters())
        with pytest.raises(ConfigurationError):
            assign_initial_configurations([], ScaParameters())


class TestPriorityLadder:
    def test_ladder_covers_priorities_n_down_to_two(self):
        assert follower_priority_ladder(5) == [5, 4, 3, 2]

    def test_ladder_length_matches_follower_count(self):
        for n in (2, 8, 128):
            assert len(follower_priority_ladder(n)) == n - 1

    def test_single_server_cluster_has_no_ladder(self):
        with pytest.raises(ConfigurationError):
            follower_priority_ladder(1)


class TestValidateAssignment:
    def test_accepts_unique_configurations(self):
        validate_assignment(
            {
                1: Configuration(priority=2, timer_period_ms=100.0, conf_clock=3),
                2: Configuration(priority=3, timer_period_ms=90.0, conf_clock=3),
            }
        )

    def test_rejects_duplicate_priority_at_same_clock(self):
        # Lemma 3: two servers must never share a configuration at one clock.
        with pytest.raises(ConfigurationError):
            validate_assignment(
                {
                    1: Configuration(priority=2, timer_period_ms=100.0, conf_clock=3),
                    2: Configuration(priority=2, timer_period_ms=100.0, conf_clock=3),
                }
            )

    def test_same_priority_at_different_clocks_is_allowed(self):
        # Lemma 4: duplicates may exist only across different clocks.
        validate_assignment(
            {
                1: Configuration(priority=2, timer_period_ms=100.0, conf_clock=3),
                2: Configuration(priority=2, timer_period_ms=100.0, conf_clock=4),
            }
        )

"""The tier-1 lint gate and the CLI surface.

``test_src_tree_is_lint_clean`` is the point of the whole subsystem: the
shipped tree has zero findings, so any new determinism hazard fails the test
suite (and CI's dedicated lint job) the moment it is introduced.
"""

import json
from pathlib import Path

import pytest

from repro.lint import ALL_RULE_IDS, RULES, get_rule, lint_paths
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = str(REPO_ROOT / "src")


class TestTreeGate:
    def test_src_tree_is_lint_clean(self):
        report = lint_paths([SRC])
        assert report.rule_ids == ALL_RULE_IDS
        assert report.checked_files > 90
        assert report.findings == (), "\n".join(
            finding.render() for finding in report.findings
        )
        assert report.clean

    def test_single_rule_selection_runs_only_that_rule(self):
        report = lint_paths([SRC], rule_ids=["D3"])
        assert report.rule_ids == ("D3",)
        assert report.clean


class TestRuleTable:
    def test_rule_ids_are_unique_and_documented(self):
        assert len(set(ALL_RULE_IDS)) == len(ALL_RULE_IDS)
        for rule in RULES:
            assert rule.description
            assert rule.kind in ("file", "registry", "meta")

    def test_get_rule_rejects_unknown_ids(self):
        assert get_rule("D1").name == "wall-clock"
        with pytest.raises(KeyError, match="unknown lint rule 'Z9'"):
            get_rule("Z9")


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([SRC]) == 0
        out = capsys.readouterr().out
        assert "repro.lint: clean" in out

    def test_json_report_shape(self, capsys):
        assert main([SRC, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["rules"] == list(ALL_RULE_IDS)
        assert payload["checked_files"] > 90

    def test_findings_exit_one_and_render(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nstamp = time.time()\n", encoding="utf-8")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:2: [D1]" in out
        assert "1 finding(s)" in out

    def test_output_file_is_written_even_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nstamp = time.time()\n", encoding="utf-8")
        report_path = tmp_path / "report.json"
        assert main([str(bad), "--json", "--output", str(report_path)]) == 1
        capsys.readouterr()
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "D1"

    def test_rule_filter_limits_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\nimport time\n"
            "rng = random.Random(time.time())\n",
            encoding="utf-8",
        )
        assert main([str(bad), "--rule", "D2", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in payload["findings"]] == ["D2"]

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.txt")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_list_rules_prints_the_table(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

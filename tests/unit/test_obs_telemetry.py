"""Unit tests for the telemetry registry, handles and snapshots."""

import json
import pickle

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.telemetry import (
    DEFAULT_HISTOGRAM_BOUNDS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    TelemetrySnapshot,
    merge_snapshots,
    sweep_telemetry,
)


class TestHandles:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        handle = registry.counter("sim.events")
        handle.inc()
        handle.inc(4)
        assert registry.counter("sim.events").value == 5
        assert registry.counter("sim.events") is handle

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("heap.size")
        gauge.set(3)
        gauge.set(7.5)
        assert registry.gauge("heap.size").value == 7.5

    def test_histogram_buckets_and_overflow(self):
        histogram = Histogram(bounds=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 2.0, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.total == pytest.approx(106.5)

    @pytest.mark.parametrize("bounds", [(), (2.0, 1.0), (1.0, 1.0)])
    def test_invalid_histogram_bounds_rejected(self, bounds):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            Histogram(bounds=bounds)

    def test_histogram_bounds_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("attempts", bounds=(1.0, 2.0))
        registry.histogram("attempts", bounds=(1.0, 2.0))  # same bounds fine
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.histogram("attempts", bounds=(1.0, 3.0))

    def test_null_metrics_is_a_shared_noop(self):
        assert NULL_METRICS.enabled is False
        assert MetricsRegistry().enabled is True
        NULL_METRICS.counter("anything").inc(100)
        NULL_METRICS.gauge("anything").set(1.0)
        NULL_METRICS.histogram("anything").observe(1.0)
        # Handles are shared singletons and the registry stays empty.
        assert NULL_METRICS.counter("a") is NULL_METRICS.counter("b")
        assert NULL_METRICS.snapshot() == TelemetrySnapshot()


class TestSnapshot:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("net.sent").inc(10)
        registry.counter("net.dropped").inc(2)
        registry.gauge("heap.size").set(8)
        hist = registry.histogram("attempts", bounds=(1.0, 2.0))
        hist.observe(1)
        hist.observe(5)
        return registry.snapshot()

    def test_snapshot_is_frozen_hashable_and_picklable(self):
        snapshot = self._populated()
        assert hash(snapshot) == hash(self._populated())
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        with pytest.raises(AttributeError):
            snapshot.counters = {}

    def test_snapshot_decouples_from_the_registry(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        counter.inc()
        snapshot = registry.snapshot()
        counter.inc(10)
        assert snapshot.counters["n"] == 1
        assert registry.snapshot().counters["n"] == 11

    def test_state_round_trips_through_json(self):
        snapshot = self._populated()
        state = json.loads(json.dumps(snapshot.to_state()))
        assert TelemetrySnapshot.from_state(state) == snapshot

    def test_from_state_accepts_tuples_like_the_export_layer(self):
        # export._tuplify restores JSON arrays as tuples; both must decode.
        snapshot = self._populated()
        state = snapshot.to_state()
        state["histograms"]["attempts"]["bounds"] = tuple(
            state["histograms"]["attempts"]["bounds"]
        )
        state["histograms"]["attempts"]["counts"] = tuple(
            state["histograms"]["attempts"]["counts"]
        )
        assert TelemetrySnapshot.from_state(state) == snapshot

    def test_merge_sums_counters_and_histograms_maxes_gauges(self):
        a = MetricsRegistry()
        a.counter("n").inc(3)
        a.gauge("g").set(5)
        a.histogram("h", bounds=(1.0, 2.0)).observe(1)
        b = MetricsRegistry()
        b.counter("n").inc(4)
        b.counter("only-b").inc(1)
        b.gauge("g").set(2)
        b.histogram("h", bounds=(1.0, 2.0)).observe(9)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counters == {"n": 7, "only-b": 1}
        assert merged.gauges == {"g": 5.0}
        bounds, counts, count, total = merged.histograms["h"]
        assert bounds == (1.0, 2.0)
        assert counts == (1, 0, 1)
        assert count == 2 and total == pytest.approx(10.0)

    def test_merge_is_associative_and_order_independent_here(self):
        snapshots = []
        for value in (1, 2, 3):
            registry = MetricsRegistry()
            registry.counter("n").inc(value)
            registry.gauge("g").set(value)
            snapshots.append(registry.snapshot())
        forward = merge_snapshots(snapshots)
        backward = merge_snapshots(reversed(snapshots))
        assert forward == backward
        assert forward.counters["n"] == 6 and forward.gauges["g"] == 3.0

    def test_merge_rejects_mismatched_histogram_bounds(self):
        a = MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(1)
        b = MetricsRegistry()
        b.histogram("h", bounds=(1.0, 3.0)).observe(1)
        with pytest.raises(ConfigurationError, match="bounds differ"):
            a.snapshot().merge(b.snapshot())

    def test_merge_with_empty_is_identity(self):
        snapshot = self._populated()
        assert TelemetrySnapshot().merge(snapshot) == snapshot
        assert snapshot.merge(TelemetrySnapshot()) == snapshot
        assert merge_snapshots([]) == TelemetrySnapshot()

    def test_default_bounds_are_strictly_increasing(self):
        assert list(DEFAULT_HISTOGRAM_BOUNDS) == sorted(set(DEFAULT_HISTOGRAM_BOUNDS))


class _FakeMeasurement:
    def __init__(self, extra):
        self.extra = extra


class TestSweepTelemetry:
    def test_folds_per_label_and_skips_bare_measurements(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(2)
        state = registry.snapshot().to_state()
        results = {
            "with": [_FakeMeasurement({"telemetry": state})] * 3,
            "without": [_FakeMeasurement({})],
        }
        tables = sweep_telemetry(results)
        assert set(tables) == {"with"}
        assert tables["with"].counters["n"] == 6

    def test_telemetry_extra_survives_the_json_export(self, tmp_path):
        from repro.cluster.scenarios import ElectionScenario
        from repro.experiments.export import (
            read_measurements_json,
            write_measurements_json,
        )
        from repro.metrics.records import MeasurementSet

        measurement = ElectionScenario(
            protocol="raft", cluster_size=3, telemetry=True
        ).run(0)
        path = tmp_path / "out.json"
        write_measurements_json(path, {"raft@3": MeasurementSet([measurement])})
        restored = read_measurements_json(path)["raft@3"].measurements[0]
        # The export layer restores arrays as tuples; from_state normalises
        # both spellings to the same snapshot.
        assert TelemetrySnapshot.from_state(
            restored.extra["telemetry"]
        ) == TelemetrySnapshot.from_state(measurement.extra["telemetry"])

"""Unit tests for timeout policies, vote tallying and replication progress."""

import random

import pytest

from repro.common.config import RaftTimeoutConfig
from repro.common.errors import ConfigurationError, ProtocolError
from repro.raft.election import VoteTally
from repro.raft.replication import ReplicationProgress
from repro.raft.timers import (
    FixedTimeoutPolicy,
    OffsetTimeoutPolicy,
    RandomizedTimeoutPolicy,
    ScriptOnlyPolicy,
    ScriptedTimeoutPolicy,
    scripted_then_random,
)
from repro.storage.log import LogEntry, ReplicatedLog


class TestTimeoutPolicies:
    def test_randomized_policy_stays_in_range(self):
        policy = RandomizedTimeoutPolicy(1500.0, 3000.0)
        rng = random.Random(0)
        draws = [policy.next_timeout_ms(rng, attempt=0) for _ in range(200)]
        assert all(1500.0 <= draw <= 3000.0 for draw in draws)
        assert len(set(draws)) > 100

    def test_randomized_policy_from_config(self):
        policy = RandomizedTimeoutPolicy.from_config(RaftTimeoutConfig(1500.0, 1800.0))
        assert (policy.low_ms, policy.high_ms) == (1500.0, 1800.0)

    def test_fixed_policy_always_returns_value(self):
        policy = FixedTimeoutPolicy(1500.0)
        rng = random.Random(0)
        assert policy.next_timeout_ms(rng, 0) == 1500.0
        assert policy.next_timeout_ms(rng, 5) == 1500.0

    def test_scripted_policy_replays_then_falls_back(self):
        policy = ScriptedTimeoutPolicy(
            script=(100.0, 200.0), fallback=FixedTimeoutPolicy(999.0)
        )
        rng = random.Random(0)
        assert policy.next_timeout_ms(rng, 0) == 100.0
        assert policy.next_timeout_ms(rng, 1) == 200.0
        assert policy.next_timeout_ms(rng, 2) == 999.0

    def test_script_only_policy_opts_out_after_script(self):
        policy = ScriptOnlyPolicy(script=(100.0,))
        rng = random.Random(0)
        assert policy.next_timeout_ms(rng, 0) == 100.0
        assert policy.next_timeout_ms(rng, 1) == 0.0

    def test_offset_policy_adds_constant(self):
        policy = OffsetTimeoutPolicy(base=FixedTimeoutPolicy(100.0), offset_ms=25.0)
        assert policy.next_timeout_ms(random.Random(0), 0) == 125.0

    def test_scripted_then_random_helper(self):
        policy = scripted_then_random([50.0], 100.0, 200.0)
        rng = random.Random(0)
        assert policy.next_timeout_ms(rng, 0) == 50.0
        assert 100.0 <= policy.next_timeout_ms(rng, 1) <= 200.0

    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomizedTimeoutPolicy(300.0, 200.0)
        with pytest.raises(ConfigurationError):
            FixedTimeoutPolicy(0.0)
        with pytest.raises(ConfigurationError):
            ScriptOnlyPolicy(script=(0.0,))


class TestVoteTally:
    def test_candidate_needs_quorum(self):
        tally = VoteTally(quorum_size=3)
        tally.start_campaign(term=5)
        tally.record_vote(5, 1)
        tally.record_vote(5, 2)
        assert not tally.has_quorum()
        assert tally.votes_needed() == 1
        tally.record_vote(5, 3)
        assert tally.has_quorum()

    def test_duplicate_votes_do_not_count_twice(self):
        tally = VoteTally(quorum_size=2)
        tally.start_campaign(1)
        assert tally.record_vote(1, 4)
        assert not tally.record_vote(1, 4)
        assert tally.count == 1

    def test_votes_from_other_terms_are_ignored(self):
        tally = VoteTally(quorum_size=2)
        tally.start_campaign(3)
        assert not tally.record_vote(2, 1)
        assert not tally.record_vote(4, 1)
        assert tally.count == 0

    def test_new_campaign_resets_votes(self):
        tally = VoteTally(quorum_size=2)
        tally.start_campaign(1)
        tally.record_vote(1, 1)
        tally.start_campaign(2)
        assert tally.count == 0
        assert tally.term == 2

    def test_campaign_terms_must_increase(self):
        tally = VoteTally(quorum_size=2)
        tally.start_campaign(5)
        with pytest.raises(ProtocolError):
            tally.start_campaign(5)

    def test_votes_property_is_a_copy(self):
        tally = VoteTally(quorum_size=2)
        tally.start_campaign(1)
        tally.record_vote(1, 9)
        assert tally.votes == frozenset({9})


def log_with(terms):
    log = ReplicatedLog()
    for index, term in enumerate(terms, start=1):
        log.append_entry(LogEntry(term=term, index=index))
    return log


class TestReplicationProgress:
    def test_initial_next_index_is_after_leader_log(self):
        progress = ReplicationProgress(leader_id=1, peers=[2, 3], last_log_index=4)
        assert progress.next_index(2) == 5
        assert progress.match_index(2) == 0

    def test_success_advances_match_and_next(self):
        progress = ReplicationProgress(1, [2], last_log_index=4)
        progress.record_success(2, match_index=4)
        assert progress.match_index(2) == 4
        assert progress.next_index(2) == 5

    def test_success_never_moves_match_backwards(self):
        progress = ReplicationProgress(1, [2], last_log_index=4)
        progress.record_success(2, 4)
        progress.record_success(2, 2)  # stale duplicate reply
        assert progress.match_index(2) == 4

    def test_failure_rewinds_next_index_using_follower_hint(self):
        progress = ReplicationProgress(1, [2], last_log_index=10)
        progress.record_failure(2, follower_last_index=3)
        assert progress.next_index(2) == 4

    def test_failure_never_goes_below_one(self):
        progress = ReplicationProgress(1, [2], last_log_index=0)
        progress.record_failure(2, follower_last_index=0)
        assert progress.next_index(2) == 1

    def test_unknown_peer_rejected(self):
        progress = ReplicationProgress(1, [2], last_log_index=0)
        with pytest.raises(ProtocolError):
            progress.record_success(9, 1)

    def test_commit_index_requires_quorum_in_current_term(self):
        log = log_with([1, 1, 2])
        progress = ReplicationProgress(1, [2, 3, 4, 5], last_log_index=3)
        progress.record_local_append(3)
        # Leader + one follower hold index 3: that is 2 replicas, below the
        # quorum of 3 in a 5-server cluster, so nothing commits yet.
        progress.record_success(2, 3)
        assert progress.commit_index_for_quorum(3, log, current_term=2) == 0
        # With a second follower the term-2 entry reaches a quorum.
        progress.record_success(3, 3)
        assert progress.commit_index_for_quorum(3, log, current_term=2) == 3

    def test_commit_index_ignores_entries_from_older_terms(self):
        # Raft never commits an older-term entry by counting replicas.
        log = log_with([1, 1])
        progress = ReplicationProgress(1, [2, 3], last_log_index=2)
        progress.record_local_append(2)
        progress.record_success(2, 2)
        progress.record_success(3, 2)
        assert progress.commit_index_for_quorum(2, log, current_term=3) == 0

    def test_quorum_on_stale_prefix_falls_back_to_a_current_term_entry(self):
        # The quorum index lands on a term-1 entry, but a *lower* index holds
        # a current-term entry replicated at least as widely -- the walk-down
        # must find it rather than give up at the stale candidate.
        log = log_with([1, 2, 2])
        progress = ReplicationProgress(1, [2, 3, 4, 5], last_log_index=3)
        progress.record_local_append(3)
        progress.record_success(2, 3)
        progress.record_success(3, 2)  # quorum index is 2 (term 2): commits
        assert progress.commit_index_for_quorum(3, log, current_term=2) == 2

    def test_committing_a_current_term_entry_commits_the_stale_prefix(self):
        # Implicit commitment: once a term-2 entry reaches a quorum, the
        # term-1 entries beneath it are committed with it (the commit index
        # jumps straight to 3, never pausing at the stale entries).
        log = log_with([1, 1, 2])
        progress = ReplicationProgress(1, [2, 3, 4, 5], last_log_index=3)
        progress.record_local_append(3)
        progress.record_success(2, 3)
        progress.record_success(3, 3)
        assert progress.commit_index_for_quorum(3, log, current_term=2) == 3

    def test_minority_replication_of_newer_entries_commits_nothing(self):
        # One follower racing ahead on term-2 entries does not move the
        # commit index while the quorum still sits on the term-1 prefix.
        log = log_with([1, 2, 2])
        progress = ReplicationProgress(1, [2, 3, 4, 5], last_log_index=3)
        progress.record_local_append(3)
        progress.record_success(2, 1)
        progress.record_success(3, 1)  # quorum at index 1, term 1: stale
        assert progress.commit_index_for_quorum(3, log, current_term=2) == 0

    def test_quorum_larger_than_cluster_commits_nothing(self):
        log = log_with([1])
        progress = ReplicationProgress(1, [2], last_log_index=1)
        progress.record_local_append(1)
        progress.record_success(2, 1)
        assert progress.commit_index_for_quorum(5, log, current_term=1) == 0

    def test_stale_followers_lists_lagging_peers(self):
        progress = ReplicationProgress(1, [2, 3], last_log_index=5)
        progress.record_success(2, 5)
        assert progress.stale_followers(5) == [3]

    def test_peers_view_is_a_copy(self):
        progress = ReplicationProgress(1, [2], last_log_index=0)
        view = progress.peers
        assert set(view) == {2}
